"""Tests for peptide mass and fragment-ion computation."""

import numpy as np
import pytest

from repro.constants import PROTON_MASS, WATER_MASS
from repro.ms.elements import RESIDUE_MASSES, is_valid_sequence, residue_mass
from repro.ms.modifications import Modification
from repro.ms.peptide import Peptide, neutral_mass_from_mz


class TestResidues:
    def test_twenty_canonical_residues(self):
        assert len(RESIDUE_MASSES) == 20

    def test_known_residue_masses(self):
        assert residue_mass("G") == pytest.approx(57.02146, abs=1e-4)
        assert residue_mass("W") == pytest.approx(186.07931, abs=1e-4)

    def test_leucine_isoleucine_isobaric(self):
        assert residue_mass("L") == residue_mass("I")

    def test_unknown_residue_raises(self):
        with pytest.raises(KeyError, match="unknown amino-acid"):
            residue_mass("B")

    def test_sequence_validation(self):
        assert is_valid_sequence("PEPTIDEK")
        assert not is_valid_sequence("PEPTIDEX")
        assert not is_valid_sequence("")


class TestPeptideMass:
    def test_single_glycine(self):
        assert Peptide("G").neutral_mass == pytest.approx(
            57.02146 + WATER_MASS, abs=1e-4
        )

    def test_known_peptide_mass(self):
        # PEPTIDEK residues sum to 909.44438; plus water.
        assert Peptide("PEPTIDEK").neutral_mass == pytest.approx(
            927.4549, abs=1e-3
        )

    def test_mass_is_order_invariant(self):
        assert Peptide("ACDEF").neutral_mass == pytest.approx(
            Peptide("FEDCA").neutral_mass, abs=1e-9
        )

    def test_precursor_mz_charge_relation(self):
        peptide = Peptide("ELVISLIVESK")
        mass = peptide.neutral_mass
        for charge in (1, 2, 3):
            expected = (mass + charge * PROTON_MASS) / charge
            assert peptide.precursor_mz(charge) == pytest.approx(expected)

    def test_neutral_mass_from_mz_inverts(self):
        peptide = Peptide("SAMPLER")
        for charge in (1, 2, 3):
            assert neutral_mass_from_mz(
                peptide.precursor_mz(charge), charge
            ) == pytest.approx(peptide.neutral_mass, abs=1e-9)

    def test_invalid_charge_raises(self):
        with pytest.raises(ValueError):
            Peptide("PEPTIDEK").precursor_mz(0)

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            Peptide("")


class TestModifiedPeptide:
    def test_modification_shifts_neutral_mass(self):
        base = Peptide("PEPTIDEK")
        modified = base.with_modification(Modification("Phospho", 3, 79.966331))
        assert modified.neutral_mass == pytest.approx(
            base.neutral_mass + 79.966331, abs=1e-6
        )

    def test_modification_outside_sequence_raises(self):
        with pytest.raises(ValueError, match="outside peptide"):
            Peptide("AK", (Modification("Phospho", 5, 79.97),))

    def test_unmodified_strips_modifications(self):
        modified = Peptide("PEPTIDEK").with_modification(
            Modification("Methyl", 0, 14.01565)
        )
        assert modified.is_modified
        assert not modified.unmodified().is_modified
        assert modified.unmodified().sequence == "PEPTIDEK"

    def test_proforma_rendering(self):
        modified = Peptide("ACK").with_modification(
            Modification("Oxidation", 1, 15.994915)
        )
        assert modified.proforma() == "AC[Oxidation]K"
        assert Peptide("ACK").proforma() == "ACK"


class TestFragments:
    def test_fragment_count_singly_charged(self):
        # b1..b(n-1) and y1..y(n-1).
        peptide = Peptide("PEPTIDEK")
        assert len(peptide.fragment_mzs()) == 2 * (len(peptide) - 1)

    def test_fragment_count_doubly_charged(self):
        peptide = Peptide("PEPTIDEK")
        assert len(peptide.fragment_mzs(max_fragment_charge=2)) == 4 * (
            len(peptide) - 1
        )

    def test_b1_ion_mass(self):
        # b1 of "GK" is the glycine residue plus a proton.
        ions = dict(
            ((series, index), mz)
            for series, index, charge, mz in Peptide("GK").fragment_ions()
        )
        assert ions[("b", 1)] == pytest.approx(
            57.02146 + PROTON_MASS, abs=1e-4
        )

    def test_y1_ion_mass(self):
        # y1 of "GK" is lysine + water + proton.
        ions = dict(
            ((series, index), mz)
            for series, index, charge, mz in Peptide("GK").fragment_ions()
        )
        assert ions[("y", 1)] == pytest.approx(
            128.09496 + WATER_MASS + PROTON_MASS, abs=1e-4
        )

    def test_b_y_complementarity(self):
        # b_i + y_(n-i) neutral masses sum to the peptide mass + water...
        # in m/z terms (charge 1): b_i + y_{n-i} = M + water? Verify via
        # neutral relation: (b_i - H) + (y_{n-i} - H) == M.
        peptide = Peptide("ELVISK")
        ions = dict(
            ((series, index), mz)
            for series, index, charge, mz in peptide.fragment_ions()
        )
        n = len(peptide)
        for i in range(1, n):
            total = (ions[("b", i)] - PROTON_MASS) + (
                ions[("y", n - i)] - PROTON_MASS
            )
            assert total == pytest.approx(peptide.neutral_mass, abs=1e-6)

    def test_modified_fragments_shift_correctly(self):
        """Fragments containing the modified residue shift; others don't."""
        base = Peptide("PEPTIDEK")
        delta = 79.966331
        position = 3  # the T
        modified = base.with_modification(Modification("Phospho", position, delta))
        base_ions = {
            (series, index): mz
            for series, index, _, mz in base.fragment_ions()
        }
        modified_ions = {
            (series, index): mz
            for series, index, _, mz in modified.fragment_ions()
        }
        n = len(base)
        for i in range(1, n):
            # b_i covers residues 0..i-1: shifted iff position < i.
            expected_b = base_ions[("b", i)] + (delta if position < i else 0.0)
            assert modified_ions[("b", i)] == pytest.approx(expected_b, abs=1e-6)
            # y_i covers residues n-i..n-1: shifted iff position >= n-i.
            expected_y = base_ions[("y", i)] + (
                delta if position >= n - i else 0.0
            )
            assert modified_ions[("y", i)] == pytest.approx(expected_y, abs=1e-6)

    def test_fragments_sorted(self):
        mzs = Peptide("ELVISLIVESK").fragment_mzs(max_fragment_charge=2)
        assert np.all(np.diff(mzs) >= 0)

    def test_invalid_fragment_charge_raises(self):
        with pytest.raises(ValueError):
            Peptide("PEPTIDEK").fragment_mzs(max_fragment_charge=0)
