"""Tests for repro.service.metrics and the /metrics endpoint.

Includes a small Prometheus text-format parser/validator
(:func:`parse_prometheus`) that the concurrency suite reuses to
reconcile server-side counters with client-observed tallies.
"""

import re
import threading

import pytest

from repro.hdc.spaces import HDSpaceConfig
from repro.index import LibraryIndex
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.service import (
    Counter,
    Histogram,
    MetricsRegistry,
    SearchClient,
    SearchService,
    ServiceConfig,
    ServiceMetrics,
    start_server,
)

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    # A left-to-right scanner, not chained str.replace: the input
    # "backslash backslash n" must decode to "backslash n", never to
    # "backslash newline".
    return re.sub(
        r"\\(.)",
        lambda match: {"n": "\n"}.get(match.group(1), match.group(1)),
        value,
    )


def parse_prometheus(text):
    """Parse Prometheus text format into ``(samples, types)``.

    ``samples`` maps ``(metric_name, (sorted (label, value) pairs))`` to
    the float sample value; ``types`` maps family name to its declared
    type.  Raises AssertionError on malformed lines, duplicate samples,
    or samples without a declared family — i.e. parsing *is* the
    validity check.
    """
    samples = {}
    types = {}
    helps = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "summary")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, label_blob, raw_value = match.groups()
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert family in types or name in types, (
            f"sample {name!r} has no TYPE declaration"
        )
        labels = tuple(
            sorted(
                (key, _unescape(value))
                for key, value in _LABEL.findall(label_blob or "")
            )
        )
        value = float("inf") if raw_value == "+Inf" else float(raw_value)
        key = (name, labels)
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = value
    return samples, types


def sample_value(samples, /, *args, **labels):
    """The sample for a metric with exactly these labels (0.0 absent).

    Positional-only plumbing so any label name — including ``name`` —
    stays usable as a keyword.
    """
    (metric,) = args
    key = (metric, tuple(sorted(labels.items())))
    return samples.get(key, 0.0)


def assert_histograms_consistent(samples, types):
    """Every histogram: buckets cumulative, +Inf bucket == _count."""
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series = {}
        for (name, labels), value in samples.items():
            if name == f"{family}_bucket":
                plain = tuple(kv for kv in labels if kv[0] != "le")
                le = dict(labels)["le"]
                bound = float("inf") if le == "+Inf" else float(le)
                series.setdefault(plain, []).append((bound, value))
        for plain, buckets in series.items():
            buckets.sort()
            counts = [count for _bound, count in buckets]
            assert counts == sorted(counts), (
                f"{family}{plain}: buckets not cumulative: {counts}"
            )
            assert buckets[-1][0] == float("inf")
            total = sample_value(samples, f"{family}_count", **dict(plain))
            assert buckets[-1][1] == total, (
                f"{family}{plain}: +Inf bucket != _count"
            )


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help", ("route",))
        counter.inc(route="a")
        counter.inc(2.5, route="a")
        counter.inc(route="b")
        assert counter.value(route="a") == 3.5
        assert counter.value(route="b") == 1
        assert counter.value(route="absent") == 0

    def test_rejects_negative_increment(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_rejects_wrong_labels(self):
        counter = Counter("c_total", "help", ("route",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(endpoint="x")
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="metric name"):
            Counter("0bad", "help")
        with pytest.raises(ValueError, match="label name"):
            Counter("ok_total", "help", ("bad-label",))
        with pytest.raises(ValueError, match="label name"):
            Counter("ok_total", "help", ("__reserved",))

    def test_render(self):
        counter = Counter("c_total", "requests", ("route",))
        counter.inc(3, route="a")
        lines = counter.render()
        assert lines[0] == "# HELP c_total requests"
        assert lines[1] == "# TYPE c_total counter"
        assert 'c_total{route="a"} 3' in lines

    def test_render_escapes_label_values(self):
        counter = Counter("c_total", "help", ("name",))
        counter.inc(name='we"ird\\nam\ne')
        (line,) = [
            line for line in counter.render() if not line.startswith("#")
        ]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        samples, _types = parse_prometheus("\n".join(counter.render()))
        assert sample_value(samples, "c_total", name='we"ird\\nam\ne') == 1

    def test_unlabelled_counter_renders_bare_name(self):
        counter = Counter("c_total", "help")
        counter.inc()
        assert "c_total 1" in counter.render()


class TestHistogram:
    def test_observe_buckets_boundaries(self):
        histogram = Histogram("h", "help", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            histogram.observe(value)
        samples, types = parse_prometheus("\n".join(histogram.render()))
        assert types["h"] == "histogram"
        assert sample_value(samples, "h_bucket", le="1.0") == 2  # <= 1.0
        assert sample_value(samples, "h_bucket", le="2.0") == 4
        assert sample_value(samples, "h_bucket", le="+Inf") == 5
        assert sample_value(samples, "h_count") == 5
        assert sample_value(samples, "h_sum") == pytest.approx(104.0)

    def test_snapshot(self):
        histogram = Histogram("h", "help", ("route",), buckets=(1.0,))
        assert histogram.snapshot(route="a") == {"count": 0, "sum": 0.0}
        histogram.observe(0.5, route="a")
        histogram.observe(3.0, route="a")
        assert histogram.snapshot(route="a") == {"count": 2, "sum": 3.5}

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="implicit"):
            Histogram("h", "help", buckets=(1.0, float("inf")))

    def test_render_is_valid_and_cumulative(self):
        histogram = Histogram("h", "help", ("route",))
        for route in ("a", "b"):
            for value in (0.002, 0.03, 7.0, 100.0):
                histogram.observe(value, route=route)
        samples, types = parse_prometheus("\n".join(histogram.render()))
        assert_histograms_consistent(samples, types)

    def test_concurrent_observers_lose_nothing(self):
        histogram = Histogram("h", "help", buckets=(0.5,))
        threads = [
            threading.Thread(
                target=lambda: [histogram.observe(0.1) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.snapshot()["count"] == 4000


class TestMetricsRegistry:
    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c_total", "help")

    def test_render_concatenates_families(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a").inc()
        registry.histogram("b_seconds", "help b", buckets=(1.0,)).observe(0.5)
        text = registry.render()
        assert text.endswith("\n")
        samples, types = parse_prometheus(text)
        assert types == {"a_total": "counter", "b_seconds": "histogram"}
        assert sample_value(samples, "a_total") == 1


class TestServiceMetrics:
    def test_routes_share_families(self):
        metrics = ServiceMetrics()
        metrics.for_route("a").observe_request("search")
        metrics.for_route("b").observe_request("search")
        samples, types = parse_prometheus(metrics.render())
        assert_histograms_consistent(samples, types)
        name = "hdoms_service_requests_total"
        assert sample_value(samples, name, route="a", endpoint="search") == 1
        assert sample_value(samples, name, route="b", endpoint="search") == 1
        # One family, declared once, however many routes observe it.
        assert metrics.render().count(f"# TYPE {name} ") == 1

    def test_flush_event_observes_mean_wait(self):
        metrics = ServiceMetrics()
        metrics.for_route("a").flush_event(4, "timeout", 0.4)
        assert metrics.batch_wait.snapshot(route="a") == {
            "count": 1,
            "sum": pytest.approx(0.1),
        }
        assert metrics.batch_flushes.value(route="a", reason="timeout") == 1

    def test_cache_event_splits_lookups_and_evictions(self):
        metrics = ServiceMetrics()
        route = metrics.for_route("a")
        route.cache_event("hit")
        route.cache_event("miss")
        route.cache_event("eviction")
        assert metrics.cache_lookups.value(route="a", outcome="hit") == 1
        assert metrics.cache_lookups.value(route="a", outcome="miss") == 1
        assert metrics.cache_evictions.value(route="a") == 1


# ----------------------------------------------------------------------
# /metrics endpoint
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def metrics_index(binning, tmp_path_factory):
    workload = build_workload(
        WorkloadConfig(
            name="metrics-test", num_references=80, num_queries=6, seed=5
        )
    )
    index = LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        source="metrics-test",
    )
    path = index.save(tmp_path_factory.mktemp("metrics") / "library.npz")
    return path, workload


class TestMetricsEndpoint:
    @pytest.fixture
    def served(self, metrics_index):
        path, workload = metrics_index
        service = SearchService(
            path, ServiceConfig(max_batch=4, max_wait_ms=5.0)
        )
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield workload, SearchClient(f"http://{host}:{port}")
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()

    def test_metrics_content_type_and_validity(self, served):
        import urllib.request

        workload, client = served
        client.search(workload.queries[0])
        with urllib.request.urlopen(
            client.base_url + "/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        samples, types = parse_prometheus(text)
        assert_histograms_consistent(samples, types)

    def test_counters_track_requests_and_cache(self, served):
        workload, client = served
        query = workload.queries[0]
        client.search(query)
        client.search(query)  # second one is a cache hit
        client.search_batch(workload.queries[:3])
        samples, _types = parse_prometheus(client.metrics())
        requests = "hdoms_service_requests_total"
        lookups = "hdoms_service_cache_lookups_total"
        assert sample_value(
            samples, requests, route="default", endpoint="search"
        ) == 2
        assert sample_value(
            samples, requests, route="default", endpoint="search_batch"
        ) == 1
        # 2 single lookups + 3 batch lookups; exactly 2 hits (the
        # repeated single + the batch's re-encounter of query 0).
        assert (
            sample_value(samples, lookups, route="default", outcome="hit")
            + sample_value(samples, lookups, route="default", outcome="miss")
            == 5
        )
        latency = "hdoms_service_request_latency_seconds_count"
        assert sample_value(samples, latency, route="default") == 3

    def test_batch_histograms_populate(self, served):
        workload, client = served
        client.search_batch(workload.queries[:4])
        samples, types = parse_prometheus(client.metrics())
        assert_histograms_consistent(samples, types)
        size = "hdoms_service_batch_size_spectra_count"
        assert sample_value(samples, size, route="default") >= 1
