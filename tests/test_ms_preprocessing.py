"""Tests for spectrum preprocessing (paper Section 3.1)."""

import numpy as np
import pytest

from repro.ms.preprocessing import (
    PreprocessingConfig,
    filter_intensity,
    is_high_quality,
    normalize_intensity,
    preprocess,
    remove_precursor_peaks,
    restrict_mz_range,
    scale_intensity,
)
from repro.ms.spectrum import Spectrum


def spectrum_with(mz, intensity, **kw):
    defaults = dict(identifier="p", precursor_mz=600.0, precursor_charge=2)
    defaults.update(kw)
    return Spectrum(mz=np.asarray(mz, float), intensity=np.asarray(intensity, float), **defaults)


class TestRangeAndPrecursor:
    def test_restrict_mz_range(self):
        spectrum = spectrum_with([50, 150, 1600], [1, 2, 3])
        out = restrict_mz_range(spectrum, 100, 1500)
        assert np.array_equal(out.mz, [150.0])

    def test_remove_precursor_peaks(self):
        spectrum = spectrum_with([599.0, 600.5, 800.0], [1, 5, 2])
        out = remove_precursor_peaks(spectrum, tolerance=1.5)
        assert np.array_equal(out.mz, [800.0])


class TestIntensityFilter:
    def test_threshold_relative_to_base_peak(self):
        spectrum = spectrum_with([100, 200, 300], [100.0, 0.5, 50.0])
        out = filter_intensity(spectrum, min_intensity_fraction=0.01)
        assert 200.0 not in out.mz  # 0.5 < 1% of 100
        assert len(out) == 2

    def test_max_peaks_keeps_most_intense(self):
        mz = np.arange(100, 200, dtype=float)
        intensity = np.arange(100, dtype=float) + 1
        spectrum = spectrum_with(mz, intensity)
        out = filter_intensity(spectrum, 0.0, max_peaks=10)
        assert len(out) == 10
        assert out.intensity.min() >= 91

    def test_result_remains_sorted_by_mz(self):
        mz = np.arange(100, 160, dtype=float)
        intensity = np.linspace(60, 1, 60)
        out = filter_intensity(spectrum_with(mz, intensity), 0.0, max_peaks=20)
        assert np.all(np.diff(out.mz) > 0)

    def test_empty_spectrum_passthrough(self):
        spectrum = spectrum_with([], [])
        assert len(filter_intensity(spectrum)) == 0


class TestScaling:
    def test_sqrt_scaling(self):
        spectrum = spectrum_with([100, 200], [4.0, 16.0])
        out = scale_intensity(spectrum, "sqrt")
        assert out.intensity == pytest.approx([2.0, 4.0])

    def test_rank_scaling(self):
        spectrum = spectrum_with([100, 200, 300], [5.0, 1.0, 3.0])
        out = scale_intensity(spectrum, "rank")
        assert out.intensity == pytest.approx([3.0, 1.0, 2.0])

    def test_none_scaling_is_identity(self):
        spectrum = spectrum_with([100], [7.0])
        out = scale_intensity(spectrum, "none")
        assert out.intensity == pytest.approx([7.0])

    def test_unknown_scaling_raises(self):
        with pytest.raises(ValueError):
            scale_intensity(spectrum_with([100], [1.0]), "log")

    def test_normalize_unit_norm(self):
        spectrum = spectrum_with([100, 200], [3.0, 4.0])
        out = normalize_intensity(spectrum)
        assert np.linalg.norm(out.intensity) == pytest.approx(1.0)

    def test_normalize_zero_spectrum_safe(self):
        spectrum = spectrum_with([100], [0.0])
        out = normalize_intensity(spectrum)
        assert out.intensity == pytest.approx([0.0])


class TestFullChain:
    def test_preprocess_returns_none_for_sparse_spectra(self):
        spectrum = spectrum_with([150, 250], [1.0, 2.0])
        assert preprocess(spectrum) is None

    def test_preprocess_full_chain(self, small_workload):
        out = preprocess(small_workload.queries[0])
        assert out is not None
        assert len(out) >= 5
        assert np.linalg.norm(out.intensity) == pytest.approx(1.0, abs=1e-5)
        assert out.mz.min() >= 100.0
        assert out.mz.max() <= 1500.0

    def test_preprocess_is_deterministic(self, small_workload):
        a = preprocess(small_workload.queries[1])
        b = preprocess(small_workload.queries[1])
        assert np.array_equal(a.mz, b.mz)
        assert np.array_equal(a.intensity, b.intensity)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PreprocessingConfig(min_mz=1500, max_mz=100)
        with pytest.raises(ValueError):
            PreprocessingConfig(min_intensity_fraction=1.5)
        with pytest.raises(ValueError):
            PreprocessingConfig(scaling="cube")

    def test_quality_gate(self):
        good = spectrum_with(
            np.linspace(100, 800, 20), np.ones(20)
        )
        assert is_high_quality(good)
        narrow = spectrum_with(
            np.linspace(100, 150, 20), np.ones(20)
        )
        assert not is_high_quality(narrow)
