"""Tests for the ANN-SoLo-like, HyperOMS-like, and brute-force baselines."""

import numpy as np
import pytest

from repro.baselines.annsolo import AnnSoloSearcher, shifted_dot_product
from repro.baselines.brute_force import BruteForceSearcher
from repro.baselines.hyperoms import HyperOmsSearcher
from repro.ms.vectorize import SparseVector


def sparse(indices, values, num_bins=100):
    return SparseVector(
        np.asarray(indices, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
        num_bins,
    )


class TestShiftedDotProduct:
    def test_zero_shift_equals_cosine_for_identical(self):
        vector = sparse([3, 10, 40], [1.0, 2.0, 3.0])
        assert shifted_dot_product(vector, vector, 0) == pytest.approx(1.0)

    def test_shift_recovers_displaced_peaks(self):
        reference = sparse([10, 20, 30], [1.0, 1.0, 1.0])
        # All query peaks displaced +5 bins: a plain cosine sees nothing,
        # the SDP with shift 5 sees everything.
        query = sparse([15, 25, 35], [1.0, 1.0, 1.0])
        assert shifted_dot_product(query, reference, 0) == pytest.approx(0.0)
        assert shifted_dot_product(query, reference, 5) == pytest.approx(1.0)

    def test_partial_shift_mixture(self):
        """Half the fragments shifted (the realistic OMS case)."""
        reference = sparse([10, 20, 30, 40], [1.0, 1.0, 1.0, 1.0])
        query = sparse([10, 20, 35, 45], [1.0, 1.0, 1.0, 1.0])
        direct_only = shifted_dot_product(query, reference, 0)
        with_shift = shifted_dot_product(query, reference, 5)
        assert direct_only == pytest.approx(0.5)
        assert with_shift == pytest.approx(1.0)

    def test_negative_shift(self):
        reference = sparse([15], [1.0])
        query = sparse([10], [1.0])
        assert shifted_dot_product(query, reference, -5) == pytest.approx(1.0)

    def test_out_of_range_shift_ignored(self):
        reference = sparse([98], [1.0])
        query = sparse([1], [1.0])
        assert shifted_dot_product(query, reference, 50) == pytest.approx(0.0)

    def test_empty_inputs(self):
        empty = sparse([], [])
        assert shifted_dot_product(empty, sparse([1], [1.0]), 0) == 0.0
        assert shifted_dot_product(sparse([1], [1.0]), empty, 0) == 0.0


@pytest.fixture(scope="module")
def library_and_queries():
    from repro.ms.decoy import append_decoys
    from repro.ms.synthetic import WorkloadConfig, build_workload
    from repro.oms.pipeline import decoy_factory_for

    workload = build_workload(
        WorkloadConfig(name="bl", num_references=120, num_queries=30, seed=77)
    )
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=5
    )
    return workload, library


class TestSearchers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda lib: AnnSoloSearcher(lib),
            lambda lib: HyperOmsSearcher(lib, dim=1024),
            lambda lib: BruteForceSearcher(lib),
        ],
        ids=["annsolo", "hyperoms", "bruteforce"],
    )
    def test_searcher_finds_unmodified_truth(self, library_and_queries, factory):
        workload, library = library_and_queries
        searcher = factory(library)
        correct = 0
        total = 0
        for query in workload.queries:
            truth = workload.truth[query.identifier]
            if truth is None or (
                query.peptide is not None and query.peptide.is_modified
            ):
                continue
            total += 1
            psm = searcher.search_one(query)
            if psm is not None and psm.peptide_key == truth:
                correct += 1
        assert total > 0
        assert correct >= 0.85 * total

    def test_annsolo_beats_bruteforce_on_modified(self, library_and_queries):
        """The SDP recovers shifted fragments a plain cosine cannot."""
        workload, library = library_and_queries
        annsolo = AnnSoloSearcher(library, mode="open")
        brute = BruteForceSearcher(library, mode="open")
        annsolo_correct = 0
        brute_correct = 0
        modified = [
            q
            for q in workload.queries
            if q.peptide is not None and q.peptide.is_modified
        ]
        assert modified
        for query in modified:
            truth = workload.truth[query.identifier]
            psm_a = annsolo.search_one(query)
            psm_b = brute.search_one(query)
            annsolo_correct += bool(psm_a and psm_a.peptide_key == truth)
            brute_correct += bool(psm_b and psm_b.peptide_key == truth)
        assert annsolo_correct >= brute_correct

    def test_cascade_mode_annotated(self, library_and_queries):
        workload, library = library_and_queries
        searcher = AnnSoloSearcher(library, mode="cascade")
        result = searcher.search(workload.queries)
        assert {psm.mode for psm in result.psms} <= {"standard", "open"}
        assert result.backend_name == "ann-solo"

    def test_hyperoms_deterministic(self, library_and_queries):
        workload, library = library_and_queries
        a = HyperOmsSearcher(library, dim=512, seed=3).search(workload.queries)
        b = HyperOmsSearcher(library, dim=512, seed=3).search(workload.queries)
        assert a.score_by_query() == b.score_by_query()

    def test_hyperoms_seed_changes_scores(self, library_and_queries):
        workload, library = library_and_queries
        a = HyperOmsSearcher(library, dim=512, seed=3).search(workload.queries)
        b = HyperOmsSearcher(library, dim=512, seed=4).search(workload.queries)
        assert a.score_by_query() != b.score_by_query()

    def test_empty_library_raises(self):
        with pytest.raises(ValueError):
            BruteForceSearcher([])

    def test_invalid_mode_raises(self, library_and_queries):
        _, library = library_and_queries
        with pytest.raises(ValueError):
            BruteForceSearcher(library, mode="wide")
