"""Shared test fixtures: small, fast, deterministic objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig


@pytest.fixture(scope="session")
def small_workload():
    """A tiny deterministic workload shared by read-only tests."""
    return build_workload(
        WorkloadConfig(
            name="test", num_references=60, num_queries=24, seed=123
        )
    )


@pytest.fixture(scope="session")
def binning():
    return BinningConfig()


@pytest.fixture(scope="session")
def small_space(binning):
    """A small chunked HD space matching the default binning."""
    return HDSpace(
        HDSpaceConfig(
            dim=512,
            num_bins=binning.num_bins,
            num_levels=8,
            id_precision_bits=3,
            chunked=True,
            seed=42,
        )
    )


@pytest.fixture
def rng():
    return np.random.default_rng(7)
