"""Tests for the persistent library index and the sharded searcher."""

import numpy as np
import pytest

from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.index import (
    IndexCompatibilityError,
    LibraryIndex,
    ReferenceRecord,
    ShardedSearcher,
)
from repro.ms.preprocessing import PreprocessingConfig
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.oms.batch import BatchedHDOmsSearcher
from repro.oms.candidates import WindowConfig
from repro.oms.pipeline import OmsPipeline, PipelineConfig
from repro.oms.search import HDOmsSearcher, HDSearchConfig, PackedBackend


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(
            name="index-test", num_references=180, num_queries=36, seed=41
        )
    )


@pytest.fixture(scope="module")
def space_config(binning):
    return HDSpaceConfig(
        dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
    )


@pytest.fixture(scope="module")
def encoder(space_config, binning):
    return SpectrumEncoder(HDSpace(space_config), binning)


@pytest.fixture(scope="module")
def index(workload, space_config, binning):
    return LibraryIndex.build(
        workload.references,
        space_config=space_config,
        binning=binning,
        chunk_size=48,
        source="unit-test",
    )


@pytest.fixture(scope="module")
def baseline_result(workload, encoder):
    return HDOmsSearcher(encoder, workload.references).search(workload.queries)


class TestBuild:
    def test_matches_searcher_encoding(self, workload, encoder, index):
        searcher = HDOmsSearcher(encoder, workload.references)
        assert np.array_equal(index.hypervectors(), searcher.reference_hvs)

    def test_chunk_size_invariant(self, workload, space_config, binning, index):
        small_chunks = LibraryIndex.build(
            workload.references,
            space_config=space_config,
            binning=binning,
            chunk_size=7,
        )
        assert np.array_equal(small_chunks.packed, index.packed)
        assert small_chunks.identifiers == index.identifiers

    def test_metadata_preserves_library_order(self, workload, index):
        # References that survive preprocessing keep their input order.
        identifiers = [ref.identifier for ref in workload.references]
        positions = [identifiers.index(name) for name in index.identifiers]
        assert positions == sorted(positions)

    def test_records_quack_like_spectra(self, index):
        record = index.records()[0]
        assert isinstance(record, ReferenceRecord)
        assert isinstance(record.identifier, str)
        assert record.precursor_charge >= 1
        assert record.peptide_key() == record.peptide

    def test_rejects_bad_chunk_size(self, workload, space_config, binning):
        with pytest.raises(ValueError, match="chunk_size"):
            LibraryIndex.build(
                workload.references,
                space_config=space_config,
                binning=binning,
                chunk_size=0,
            )


class TestRoundtrip:
    def test_save_load_bit_exact(self, index, tmp_path):
        path = index.save(tmp_path / "library.npz")
        loaded = LibraryIndex.load(path)
        assert np.array_equal(np.asarray(loaded.packed), np.asarray(index.packed))
        assert np.array_equal(loaded.hypervectors(), index.hypervectors())
        assert loaded.identifiers == index.identifiers
        assert loaded.peptide_keys == index.peptide_keys
        assert np.array_equal(loaded.is_decoy, index.is_decoy)
        assert np.array_equal(loaded.neutral_masses, index.neutral_masses)
        assert np.array_equal(loaded.charges, index.charges)

    def test_roundtrip_preserves_configs(self, index, tmp_path):
        loaded = LibraryIndex.load(index.save(tmp_path / "library.npz"))
        assert loaded.space_config == index.space_config
        assert loaded.binning == index.binning
        assert loaded.preprocessing == index.preprocessing
        assert loaded.source == "unit-test"

    def test_load_memory_maps_packed_matrix(self, index, tmp_path):
        loaded = LibraryIndex.load(index.save(tmp_path / "library.npz"))
        assert isinstance(loaded.packed, np.memmap)

    def test_load_without_mmap(self, index, tmp_path):
        loaded = LibraryIndex.load(
            index.save(tmp_path / "library.npz"), mmap=False
        )
        assert not isinstance(loaded.packed, np.memmap)
        assert np.array_equal(np.asarray(loaded.packed), np.asarray(index.packed))

    def test_save_appends_npz_suffix(self, index, tmp_path):
        path = index.save(tmp_path / "bare-name")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, values=np.arange(4))
        with pytest.raises(IndexCompatibilityError):
            LibraryIndex.load(path)


class TestValidation:
    def test_matching_configs_pass(self, index, space_config, binning):
        index.validate(space_config, binning, index.preprocessing)

    def test_space_mismatch_raises(self, index, binning):
        other = HDSpaceConfig(
            dim=1024, num_bins=binning.num_bins, num_levels=8, seed=13
        )
        with pytest.raises(IndexCompatibilityError, match="space"):
            index.validate(space_config=other)

    def test_binning_mismatch_raises(self, index):
        with pytest.raises(IndexCompatibilityError, match="binning"):
            index.validate(binning=BinningConfig(bin_width=0.5))

    def test_preprocessing_mismatch_raises(self, index):
        with pytest.raises(IndexCompatibilityError, match="preprocessing"):
            index.validate(preprocessing=PreprocessingConfig(max_peaks=10))

    def test_from_index_rejects_foreign_encoder(self, index, binning):
        other = SpectrumEncoder(
            HDSpace(
                HDSpaceConfig(
                    dim=1024, num_bins=binning.num_bins, num_levels=8, seed=13
                )
            ),
            binning,
        )
        with pytest.raises(IndexCompatibilityError):
            HDOmsSearcher.from_index(index, encoder=other)


class TestFromIndex:
    def test_searcher_psms_identical(self, index, workload, baseline_result):
        result = HDOmsSearcher.from_index(index).search(workload.queries)
        assert result.psms == baseline_result.psms
        assert result.num_unmatched == baseline_result.num_unmatched

    def test_searcher_from_loaded_file(
        self, index, workload, baseline_result, tmp_path
    ):
        loaded = LibraryIndex.load(index.save(tmp_path / "library.npz"))
        result = HDOmsSearcher.from_index(loaded).search(workload.queries)
        assert result.psms == baseline_result.psms

    def test_packed_backend(self, index, workload, encoder):
        expected = HDOmsSearcher(
            encoder, workload.references, backend=PackedBackend()
        ).search(workload.queries)
        result = HDOmsSearcher.from_index(
            index, backend=PackedBackend()
        ).search(workload.queries)
        assert result.psms == expected.psms

    def test_cascade_mode(self, index, workload, encoder):
        config = HDSearchConfig(mode="cascade")
        expected = HDOmsSearcher(
            encoder, workload.references, config=config
        ).search(workload.queries)
        result = HDOmsSearcher.from_index(index, config=config).search(
            workload.queries
        )
        assert result.psms == expected.psms

    def test_batched_searcher_identical(self, index, workload, encoder):
        expected = BatchedHDOmsSearcher(encoder, workload.references).search(
            workload.queries
        )
        result = BatchedHDOmsSearcher.from_index(index).search(workload.queries)
        assert result.psms == expected.psms

    def test_charge_agnostic_windows_identical(self, index, workload, encoder):
        # Regression: charge_aware=False used to crash the batched
        # searcher (queries keyed to bucket 0, references to real charge).
        windows = WindowConfig(charge_aware=False)
        expected = HDOmsSearcher(
            encoder, workload.references, windows=windows
        ).search(workload.queries)
        batched = BatchedHDOmsSearcher.from_index(
            index, windows=windows
        ).search(workload.queries)
        assert batched.psms == expected.psms
        sharded = ShardedSearcher(
            index, num_shards=2, windows=windows, num_workers=0
        ).search(workload.queries)
        assert sharded.psms == expected.psms

    def test_pipeline_from_index(self, index, workload, encoder):
        # The index already holds the library as-is (no decoys here, so
        # FDR accepts nothing — the point is wiring, not identifications).
        pipeline = OmsPipeline.from_index(index, config=PipelineConfig())
        result = pipeline.run(workload.queries, workload.truth)
        direct = HDOmsSearcher.from_index(index).search(workload.queries)
        # The FDR stage annotates q-values in place; compare identities.
        def key(psm):
            return (psm.query_id, psm.reference_id, psm.score, psm.mode)

        assert list(map(key, result.search_result.psms)) == list(
            map(key, direct.psms)
        )
        assert "index_load" in result.timings


class TestShardedSearcher:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_psms_identical_serial(
        self, index, workload, baseline_result, num_shards
    ):
        searcher = ShardedSearcher(index, num_shards=num_shards, num_workers=0)
        result = searcher.search(workload.queries)
        assert result.psms == baseline_result.psms
        assert result.num_unmatched == baseline_result.num_unmatched
        assert result.num_queries == baseline_result.num_queries

    def test_psms_identical_process_pool(
        self, index, workload, baseline_result
    ):
        with ShardedSearcher(index, num_shards=3, num_workers=2) as searcher:
            first = searcher.search(workload.queries)
            second = searcher.search(workload.queries)
        assert first.psms == baseline_result.psms
        assert second.psms == baseline_result.psms

    def test_packed_backend_identical(
        self, index, workload, encoder
    ):
        expected = HDOmsSearcher(
            encoder, workload.references, backend=PackedBackend()
        ).search(workload.queries)
        searcher = ShardedSearcher(
            index, num_shards=2, backend="packed", num_workers=0
        )
        assert searcher.search(workload.queries).psms == expected.psms

    @pytest.mark.parametrize("mode", ["standard", "cascade"])
    def test_modes_identical(self, index, workload, encoder, mode):
        config = HDSearchConfig(mode=mode)
        expected = HDOmsSearcher(
            encoder, workload.references, config=config
        ).search(workload.queries)
        searcher = ShardedSearcher(
            index, num_shards=2, config=config, num_workers=0
        )
        result = searcher.search(workload.queries)
        assert result.psms == expected.psms
        assert result.num_unmatched == expected.num_unmatched

    def test_bit_error_injection_identical(self, index, workload, encoder):
        config = HDSearchConfig(
            query_ber=0.02, reference_ber=0.01, noise_seed=314
        )
        expected = HDOmsSearcher(
            encoder, workload.references, config=config
        ).search(workload.queries)
        searcher = ShardedSearcher(
            index, num_shards=2, config=config, num_workers=0
        )
        assert searcher.search(workload.queries).psms == expected.psms

    def test_backend_name_reports_shards(self, index):
        searcher = ShardedSearcher(index, num_shards=2, num_workers=0)
        assert searcher.backend_name == "sharded-densex2"

    def test_rejects_bad_shard_counts(self, index):
        with pytest.raises(ValueError):
            ShardedSearcher(index, num_shards=0)
        with pytest.raises(ValueError):
            ShardedSearcher(index, num_shards=index.num_references + 1)

    def test_rejects_unknown_backend(self, index):
        with pytest.raises(ValueError, match="unknown backend"):
            ShardedSearcher(index, num_shards=2, backend="gpu")


class TestIndexCli:
    def test_build_then_search(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "workload",
                    "--preset",
                    "custom",
                    "--references",
                    "80",
                    "--queries",
                    "15",
                    "--seed",
                    "3",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        index_path = tmp_path / "library.npz"
        assert (
            main(
                [
                    "index",
                    "build",
                    "--library",
                    str(tmp_path / "library.msp"),
                    "--output",
                    str(index_path),
                    "--dim",
                    "512",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        assert index_path.exists()
        output = tmp_path / "psms.tsv"
        assert (
            main(
                [
                    "index",
                    "search",
                    "--index",
                    str(index_path),
                    "--queries",
                    str(tmp_path / "queries.mgf"),
                    "--shards",
                    "2",
                    "--workers",
                    "0",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "encoding skipped" in out
        lines = output.read_text().splitlines()
        assert lines[0].startswith("query_id\treference_id")
        assert len(lines) > 1

    def test_index_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["index", "search", "--index", "i.npz", "--queries", "q.mgf"]
        )
        assert args.shards == 1
        assert args.workers is None
        assert args.backend == "dense"
