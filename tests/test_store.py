"""Tests for the segmented out-of-core library store (repro.store).

The invariant everything here leans on: a per-row hypervector is a pure
function of (spectrum, config), and segments are contiguous global row
ranges in ingestion order — so a store built by streaming, appending, or
merging must search bit-identically to one monolithic
:class:`LibraryIndex` over the same spectra.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ann import AnnConfig
from repro.engine import EngineConfig
from repro.hdc.spaces import HDSpaceConfig
from repro.index.library import LibraryIndex
from repro.oms.candidates import WindowConfig
from repro.oms.search import HDOmsSearcher, HDSearchConfig
from repro.store import (
    MANIFEST_NAME,
    SegmentedSearcher,
    SegmentedStore,
    StoreCompatibilityError,
    StoreManifest,
    append_store,
    build_store,
    merge_store,
    open_search_source,
)


@pytest.fixture(scope="module")
def space_config(binning):
    return HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=17)


@pytest.fixture(scope="module")
def references(small_workload):
    return small_workload.references


@pytest.fixture(scope="module")
def queries(small_workload):
    return small_workload.queries[:10]


@pytest.fixture(scope="module")
def monolithic(references, space_config, binning):
    return LibraryIndex.build(
        references, space_config=space_config, binning=binning
    )


def _psm_key(psm):
    return None if psm is None else (psm.reference_id, psm.score, psm.is_decoy)


def _search_pairs(searcher_a, searcher_b, queries):
    result_a = searcher_a.search(queries)
    result_b = searcher_b.search(queries)
    assert [_psm_key(p) for p in result_a.psms] == [
        _psm_key(p) for p in result_b.psms
    ]
    assert result_a.num_unmatched == result_b.num_unmatched


class TestManifest:
    def test_roundtrip(self, tmp_path, references, space_config, binning):
        store = build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=25,
        )
        manifest = StoreManifest.load(tmp_path / "store")
        assert manifest.num_references == store.num_references
        assert len(manifest.segments) == store.num_segments
        for meta in manifest.segments:
            assert meta.mass_min <= meta.mass_max
        assert manifest.configs()[0] == space_config
        store.close()

    def test_manifest_is_json(self, tmp_path, references, space_config, binning):
        build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
        ).close()
        payload = json.loads((tmp_path / "store" / MANIFEST_NAME).read_text())
        assert payload["format_version"] == 1
        assert payload["segments"]

    def test_load_rejects_non_store(self, tmp_path):
        with pytest.raises(StoreCompatibilityError, match="not a segmented"):
            StoreManifest.load(tmp_path)

    def test_provenance_covers_segments(
        self, tmp_path, references, space_config, binning
    ):
        store = build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=25,
        )
        before = store.provenance()
        store.close()
        append_store(tmp_path / "store", references[:5]).close()
        after = SegmentedStore.open(tmp_path / "store").provenance()
        assert before != after  # fingerprints must roll over on append


class TestBuildParity:
    def test_rows_bit_identical(
        self, tmp_path, references, space_config, binning, monolithic
    ):
        store = build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=13,
        )
        merged = store.to_index()
        np.testing.assert_array_equal(merged.packed, monolithic.packed)
        np.testing.assert_array_equal(
            merged.neutral_masses, monolithic.neutral_masses
        )
        assert list(merged.identifiers) == list(monolithic.identifiers)
        store.close()

    def test_search_parity_serial_and_threaded(
        self, tmp_path, references, queries, space_config, binning, monolithic
    ):
        store = build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=13,
        )
        baseline = HDOmsSearcher.from_index(monolithic)
        for workers in (0, 3):
            with SegmentedSearcher(
                store, engine=EngineConfig(num_workers=workers)
            ) as searcher:
                _search_pairs(searcher, baseline, queries)
        store.close()

    def test_empty_store_rejected(self, tmp_path, space_config, binning):
        with pytest.raises(ValueError, match="survived preprocessing"):
            build_store(
                [],
                tmp_path / "store",
                space_config=space_config,
                binning=binning,
            )

    def test_existing_store_rejected(
        self, tmp_path, references, space_config, binning
    ):
        build_store(
            references[:5],
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
        ).close()
        with pytest.raises(FileExistsError):
            build_store(
                references[:5],
                tmp_path / "store",
                space_config=space_config,
                binning=binning,
            )


class TestAppendAndMerge:
    def test_append_bit_identical_to_rebuild(
        self, tmp_path, references, queries, space_config, binning, monolithic
    ):
        root = tmp_path / "store"
        build_store(
            references[:20],
            root,
            space_config=space_config,
            binning=binning,
            segment_rows=9,
        ).close()
        store = append_store(root, references[20:], segment_rows=9)
        np.testing.assert_array_equal(
            store.to_index().packed, monolithic.packed
        )
        with SegmentedSearcher(store) as searcher:
            _search_pairs(
                searcher, HDOmsSearcher.from_index(monolithic), queries
            )
        store.close()

    def test_append_rejects_provenance_mismatch(
        self, tmp_path, references, space_config, binning
    ):
        root = tmp_path / "store"
        build_store(
            references[:10], root, space_config=space_config, binning=binning
        ).close()
        with pytest.raises(StoreCompatibilityError, match="provenance mismatch"):
            append_store(
                root,
                references[10:],
                space_config=HDSpaceConfig(
                    dim=128, num_bins=binning.num_bins, seed=17
                ),
            )

    def test_merge_compacts_and_keeps_results(
        self, tmp_path, references, queries, space_config, binning, monolithic
    ):
        root = tmp_path / "store"
        build_store(
            references,
            root,
            space_config=space_config,
            binning=binning,
            segment_rows=9,
        ).close()
        segments_before = len(StoreManifest.load(root).segments)
        files_before = set(p.name for p in (root / "segments").iterdir())
        store = merge_store(root, target_rows=30)
        manifest = StoreManifest.load(root)
        assert len(manifest.segments) < segments_before
        assert max(meta.tier for meta in manifest.segments) == 1
        # compaction replaces files: stale segments must be unlinked
        files_after = set(p.name for p in (root / "segments").iterdir())
        assert files_after == {
            Path(meta.file).name for meta in manifest.segments
        }
        assert files_after != files_before
        with SegmentedSearcher(store) as searcher:
            _search_pairs(
                searcher, HDOmsSearcher.from_index(monolithic), queries
            )
        store.close()

    def test_full_merge_single_segment(
        self, tmp_path, references, space_config, binning, monolithic
    ):
        root = tmp_path / "store"
        build_store(
            references,
            root,
            space_config=space_config,
            binning=binning,
            segment_rows=9,
        ).close()
        store = merge_store(root)
        assert store.num_segments == 1
        np.testing.assert_array_equal(
            store.to_index().packed, monolithic.packed
        )
        store.close()


class TestLazySegmentOpening:
    @pytest.fixture()
    def sorted_store(self, tmp_path, references, space_config, binning):
        ordered = sorted(references, key=lambda s: s.neutral_mass)
        store = build_store(
            ordered,
            tmp_path / "sorted-store",
            space_config=space_config,
            binning=binning,
            segment_rows=15,
        )
        yield store
        store.close()

    def test_narrow_window_opens_subset(self, sorted_store, references):
        assert sorted_store.num_segments >= 3
        lightest = min(references, key=lambda s: s.neutral_mass)
        windows = WindowConfig(standard_tolerance_da=0.1)
        with SegmentedSearcher(
            sorted_store,
            windows=windows,
            config=HDSearchConfig(mode="standard"),
        ) as searcher:
            searcher.search([lightest])
            assert searcher.segments_opened == 1
        assert sum(1 for c in sorted_store.open_counts if c) == 1

    def test_wide_window_opens_all(self, sorted_store, references):
        with SegmentedSearcher(
            sorted_store, windows=WindowConfig(open_window_da=10_000.0)
        ) as searcher:
            searcher.search(references[:2])
            assert searcher.segments_opened == sorted_store.num_segments

    def test_skipping_never_changes_results(
        self, sorted_store, queries, monolithic, references, space_config, binning
    ):
        # Same spectra, different row order: rebuild the baseline in the
        # sorted order so PSM positions agree.
        ordered = sorted(references, key=lambda s: s.neutral_mass)
        baseline = HDOmsSearcher.from_index(
            LibraryIndex.build(
                ordered, space_config=space_config, binning=binning
            ),
            config=HDSearchConfig(mode="standard"),
        )
        with SegmentedSearcher(
            sorted_store, config=HDSearchConfig(mode="standard")
        ) as searcher:
            _search_pairs(searcher, baseline, queries)


class TestThreadedCounterStorm:
    def test_storm_counts_exactly(
        self, tmp_path, references, queries, space_config, binning
    ):
        # Twelve threads hammer ONE threaded-mode searcher.  The
        # counters are observability surface (stats/metrics); unlocked
        # ``dict[k] = dict.get(k) + 1`` bumps would silently lose
        # increments under this storm, so the counts must be EXACT,
        # not approximately right.
        import threading

        store = build_store(
            references,
            tmp_path / "storm-store",
            space_config=space_config,
            binning=binning,
            segment_rows=13,
        )
        try:
            # Measure the per-run batch total on a fresh serial searcher.
            with SegmentedSearcher(store) as probe:
                expected = {
                    psm.query_id: _psm_key(psm)
                    for psm in probe.search(queries).psms
                }
                per_run = sum(probe.segment_batches.values())
            assert per_run > 0

            num_threads = 12
            results = [None] * num_threads
            errors = []
            with SegmentedSearcher(
                store, engine=EngineConfig(num_workers=3)
            ) as searcher:
                barrier = threading.Barrier(num_threads)

                def storm(slot):
                    try:
                        barrier.wait()
                        results[slot] = searcher.search(queries)
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

                threads = [
                    threading.Thread(target=storm, args=(slot,))
                    for slot in range(num_threads)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert not errors
                # Every segment materialized exactly once...
                assert searcher.segments_opened == store.num_segments
                batches = searcher.segment_batches
                # ...and every scored batch counted exactly once.
                assert sum(batches.values()) == num_threads * per_run
            assert all(count == 1 for count in store.open_counts)
            for result in results:
                assert result is not None
                assert {
                    psm.query_id: _psm_key(psm) for psm in result.psms
                } == expected
        finally:
            store.close()


class TestAnnOnStore:
    def test_persisted_tables_reused_and_parity(
        self, tmp_path, references, queries, space_config, binning
    ):
        ann = AnnConfig(ann_threshold=1)
        store = build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=20,
            ann=ann,
        )
        monolithic = LibraryIndex.build(
            references, space_config=space_config, binning=binning, ann=ann
        )
        baseline = HDOmsSearcher.from_index(
            monolithic, config=HDSearchConfig(ann=ann)
        )
        with SegmentedSearcher(
            store, config=HDSearchConfig(ann=ann)
        ) as searcher:
            assert searcher.backend_name.endswith("+ann")
            _search_pairs(searcher, baseline, queries)
            assert searcher.ann_stats is not None
        store.close()


class TestSegmentedSearcherValidation:
    def test_rejects_foreign_engine_kind(
        self, tmp_path, references, space_config, binning
    ):
        store = build_store(
            references[:10],
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
        )
        with pytest.raises(ValueError, match="cannot host engine kind"):
            SegmentedSearcher(store, engine=EngineConfig(kind="batched"))
        store.close()

    def test_rejects_reference_ber(
        self, tmp_path, references, space_config, binning
    ):
        store = build_store(
            references[:10],
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
        )
        with pytest.raises(ValueError, match="reference_ber"):
            SegmentedSearcher(
                store, config=HDSearchConfig(reference_ber=0.01)
            )
        store.close()


class TestServiceOverStore:
    @pytest.fixture()
    def store_path(self, tmp_path, references, space_config, binning):
        build_store(
            references,
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
            segment_rows=25,
        ).close()
        return tmp_path / "store"

    def test_serves_store_and_hot_reloads_appends(
        self, store_path, references, queries, monolithic
    ):
        from repro.service.server import SearchService

        baseline = SearchService(monolithic)
        service = SearchService(store_path)
        try:
            assert service.engine_name.startswith("segmented-")
            stats = service.stats()["engine"]
            assert stats["config"]["kind"] == "auto"
            assert [_psm_key(p) for p in service.search_many(queries)] == [
                _psm_key(p) for p in baseline.search_many(queries)
            ]
            fingerprint_before = service._fingerprint
            append_store(store_path, references[:5]).close()
            service.reload()
            # The manifest gained segments: the cache fingerprint must
            # roll over and the engine label must reflect the new count.
            assert service._fingerprint != fingerprint_before
            assert service.healthz()["num_references"] == len(references) + 5
        finally:
            service.close()
            baseline.close()

    def test_explicit_kind_mismatch_rejected(self, store_path):
        from repro.service.server import SearchService, ServiceConfig

        config = ServiceConfig(engine_config=EngineConfig(kind="sharded"))
        with pytest.raises(ValueError, match="segmented"):
            SearchService(store_path, config=config)


class TestCliStoreVerbs:
    @pytest.fixture()
    def files(self, tmp_path, references, queries):
        from repro.ms import write_mgf, write_msp

        library = tmp_path / "library.msp"
        extra = tmp_path / "extra.msp"
        query_file = tmp_path / "queries.mgf"
        write_msp(references[:40], library)
        write_msp(references[40:], extra)
        write_mgf(queries, query_file)
        return library, extra, query_file

    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_build_append_merge_search_round_trip(self, tmp_path, files):
        library, extra, query_file = files
        store = tmp_path / "store"
        mono = tmp_path / "mono.npz"
        common = ["--dim", "512", "--no-decoys"]
        assert (
            self._run(
                ["index", "build", "--library", str(library), "--output",
                 str(mono), *common]
            )
            == 0
        )
        assert (
            self._run(
                ["index", "build", "--library", str(library), "--output",
                 str(store), "--segment-rows", "15", *common]
            )
            == 0
        )
        out_mono = tmp_path / "mono.tsv"
        out_store = tmp_path / "store.tsv"
        for index, out in ((mono, out_mono), (store, out_store)):
            assert (
                self._run(
                    ["index", "search", "--index", str(index), "--queries",
                     str(query_file), "--output", str(out)]
                )
                == 0
            )
        assert out_store.read_bytes() == out_mono.read_bytes()

        segments_before = len(StoreManifest.load(store).segments)
        assert (
            self._run(
                ["index", "append", "--store", str(store), "--library",
                 str(extra), "--no-decoys", "--segment-rows", "15",
                 "--verify-queries", str(query_file)]
            )
            == 0
        )
        assert len(StoreManifest.load(store).segments) > segments_before
        assert (
            self._run(
                ["index", "merge", "--store", str(store), "--verify-queries",
                 str(query_file)]
            )
            == 0
        )
        assert len(StoreManifest.load(store).segments) == 1

    def test_append_provenance_mismatch_exits_2(self, tmp_path, files):
        library, extra, _ = files
        store = tmp_path / "store"
        assert (
            self._run(
                ["index", "build", "--library", str(library), "--output",
                 str(store), "--segment-rows", "15", "--dim", "512",
                 "--no-decoys"]
            )
            == 0
        )
        # The CLI reads encoding provenance from the manifest itself, so
        # the incompatibility it can hit is a store written by a
        # different format generation; simulate one.
        manifest_path = store / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = 99
        manifest_path.write_text(json.dumps(payload))
        assert (
            self._run(
                ["index", "append", "--store", str(store), "--library",
                 str(extra), "--no-decoys"]
            )
            == 2
        )

    def test_merge_rejects_bad_target_rows(self, tmp_path, files):
        library, _, _ = files
        store = tmp_path / "store"
        self._run(
            ["index", "build", "--library", str(library), "--output",
             str(store), "--segment-rows", "15", "--dim", "512",
             "--no-decoys"]
        )
        assert (
            self._run(
                ["index", "merge", "--store", str(store), "--target-rows",
                 "0"]
            )
            == 2
        )


class TestOpenSearchSource:
    def test_dispatch(self, tmp_path, references, space_config, binning):
        build_store(
            references[:10],
            tmp_path / "store",
            space_config=space_config,
            binning=binning,
        ).close()
        index = LibraryIndex.build(
            references[:10], space_config=space_config, binning=binning
        )
        index.save(tmp_path / "mono.npz")
        opened_store = open_search_source(tmp_path / "store")
        assert isinstance(opened_store, SegmentedStore)
        opened_store.close()
        opened_manifest = open_search_source(tmp_path / "store" / MANIFEST_NAME)
        assert isinstance(opened_manifest, SegmentedStore)
        opened_manifest.close()
        assert isinstance(
            open_search_source(tmp_path / "mono.npz"), LibraryIndex
        )
