"""Tests for candidate selection and FDR filtering."""

import numpy as np
import pytest

from repro.ms.spectrum import Spectrum
from repro.oms.candidates import CandidateIndex, WindowConfig
from repro.oms.fdr import (
    assign_qvalues,
    decoy_statistics,
    filter_at_fdr,
    grouped_fdr,
)
from repro.oms.psm import PSM, SearchResult, evaluate_against_truth


def reference(mass_mz, charge=2, identifier="r", decoy=False):
    return Spectrum(
        identifier=identifier,
        precursor_mz=mass_mz,
        precursor_charge=charge,
        mz=np.array([200.0, 300.0]),
        intensity=np.array([1.0, 1.0]),
        is_decoy=decoy,
    )


class TestCandidateIndex:
    def test_standard_window_tight(self):
        refs = [reference(500.0, 2, "a"), reference(500.02, 2, "b"), reference(600.0, 2, "c")]
        index = CandidateIndex(refs, WindowConfig(standard_tolerance_da=0.1))
        query = reference(500.01, 2, "q")
        positions = index.select_standard(query)
        assert sorted(positions.tolist()) == [0, 1]

    def test_open_window_includes_mass_shifts(self):
        refs = [reference(500.0, 2, "a"), reference(540.0, 2, "b"), reference(800.0, 2, "c")]
        index = CandidateIndex(refs, WindowConfig(open_window_da=100.0))
        # 540 m/z at charge 2 = +80 Da neutral shift from 500.
        query = reference(540.0, 2, "q")
        positions = index.select_open(query)
        assert sorted(positions.tolist()) == [0, 1]

    def test_charge_partitioning(self):
        refs = [reference(500.0, 2, "a"), reference(500.0, 3, "b")]
        index = CandidateIndex(refs, WindowConfig())
        query2 = reference(500.0, 2, "q2")
        assert index.select_open(query2).tolist() == [0]
        query3 = reference(500.0, 3, "q3")
        assert index.select_open(query3).tolist() == [1]

    def test_charge_agnostic_mode(self):
        refs = [reference(500.0, 2, "a"), reference(750.5, 3, "b")]
        # 2x500 and 3x750.5 give different neutral masses; use wide window.
        index = CandidateIndex(
            refs, WindowConfig(open_window_da=2000.0, charge_aware=False)
        )
        query = reference(500.0, 2, "q")
        assert len(index.select_open(query)) == 2

    def test_unknown_charge_returns_empty(self):
        refs = [reference(500.0, 2, "a")]
        index = CandidateIndex(refs, WindowConfig())
        query = reference(500.0, 5, "q")
        assert len(index.select_open(query)) == 0

    def test_positions_match_brute_force(self, small_workload):
        index = CandidateIndex(small_workload.references, WindowConfig())
        for query in small_workload.queries[:10]:
            expected = sorted(
                pos
                for pos, ref in enumerate(small_workload.references)
                if ref.precursor_charge == query.precursor_charge
                and abs(ref.neutral_mass - query.neutral_mass) <= 500.0
            )
            assert sorted(index.select_open(query).tolist()) == expected

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(standard_tolerance_da=0)
        with pytest.raises(ValueError):
            WindowConfig(standard_tolerance_da=10, open_window_da=1)


def make_psms(scores_targets, scores_decoys):
    psms = [
        PSM(f"q{i}", f"t{i}", f"PEP{i}K/2", score, False, 0.0)
        for i, score in enumerate(scores_targets)
    ]
    psms += [
        PSM(f"qd{i}", f"d{i}", f"DEC{i}K/2", score, True, 0.0)
        for i, score in enumerate(scores_decoys)
    ]
    return psms


class TestFdr:
    def test_qvalues_monotone_in_rank(self):
        psms = make_psms([10, 9, 8, 7, 6, 5], [5.5, 4])
        ordered = assign_qvalues(psms)
        qvalues = [psm.q_value for psm in ordered]
        assert qvalues == sorted(qvalues)

    def test_perfect_separation_accepts_all_targets(self):
        psms = make_psms([10, 9, 8, 7], [1, 2])
        accepted = filter_at_fdr(psms, 0.25)
        assert len(accepted) == 4
        assert all(not psm.is_decoy for psm in accepted)

    def test_interleaved_decoys_limit_acceptance(self):
        # decoy at the top: q-value of everything below >= 1/k
        psms = make_psms([10, 8, 6, 4], [11, 9])
        accepted = filter_at_fdr(psms, 0.01)
        assert len(accepted) == 0

    def test_decoys_never_accepted(self):
        psms = make_psms([10, 9], [8, 7])
        accepted = filter_at_fdr(psms, 1.0)
        assert all(not psm.is_decoy for psm in accepted)

    def test_threshold_monotonicity(self):
        rng = np.random.default_rng(3)
        psms = make_psms(
            rng.normal(5, 1, 200).tolist(), rng.normal(3, 1, 200).tolist()
        )
        loose = filter_at_fdr(psms, 0.2)
        strict = filter_at_fdr(psms, 0.01)
        assert len(strict) <= len(loose)
        strict_ids = {psm.query_id for psm in strict}
        loose_ids = {psm.query_id for psm in loose}
        assert strict_ids <= loose_ids

    def test_grouped_fdr_separates_modes(self):
        # Open-mode PSMs score systematically lower; global FDR would
        # suppress them, subgroup FDR rescues the clean open group.
        standard = make_psms([10, 9.5, 9, 8.5], [2])
        open_targets = [
            PSM(f"qo{i}", f"to{i}", f"OPEN{i}K/2", 5 - 0.1 * i, False, 100.0)
            for i in range(4)
        ]
        open_decoy = [PSM("qod", "dod", "DECOYK/2", 1.0, True, 100.0)]
        all_psms = standard + open_targets + open_decoy
        accepted = grouped_fdr(all_psms, 0.3)
        open_accepted = [psm for psm in accepted if psm.is_modified_match]
        assert len(open_accepted) == 4

    def test_decoy_statistics(self):
        psms = make_psms([1, 2, 3], [4])
        stats = decoy_statistics(psms)
        assert stats["num_targets"] == 3
        assert stats["num_decoys"] == 1
        assert stats["decoy_fraction"] == pytest.approx(0.25)


class TestSearchResultAndEvaluation:
    def test_accepted_requires_qvalues(self):
        result = SearchResult(psms=make_psms([5], []), num_queries=1)
        assert result.accepted(0.01) == []  # no q-values assigned yet
        assign_qvalues(result.psms)
        assert len(result.accepted(0.5)) == 1

    def test_identified_peptides_unique(self):
        psms = [
            PSM("q1", "r1", "PEPK/2", 10, False, 0.0, q_value=0.0),
            PSM("q2", "r1", "PEPK/2", 9, False, 0.0, q_value=0.0),
        ]
        result = SearchResult(psms=psms, num_queries=2)
        assert result.identified_peptides(0.01) == {"PEPK/2"}

    def test_evaluation_against_truth(self):
        psms = [
            PSM("q1", "r1", "AAAK/2", 10, False, 0.0, q_value=0.0),
            PSM("q2", "r2", "CCCK/2", 9, False, 0.0, q_value=0.0),
        ]
        truth = {"q1": "AAAK/2", "q2": "DDDK/2", "q3": "EEEK/2"}
        metrics = evaluate_against_truth(psms, truth)
        assert metrics["num_correct"] == 1
        assert metrics["precision"] == pytest.approx(0.5)
        assert metrics["recall"] == pytest.approx(1 / 3)

    def test_modified_match_flag(self):
        assert PSM("q", "r", None, 1, False, 80.0).is_modified_match
        assert not PSM("q", "r", None, 1, False, 0.01).is_modified_match
