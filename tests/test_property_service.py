"""Property-based tests for the service result cache.

A model-based hypothesis test drives :class:`ResultCache` through
arbitrary interleavings of put / get / clear (eviction happens
implicitly whenever a put overflows capacity) against a reference LRU
model, checking after *every* operation that

* ``hits + misses == lookups`` (the stats never lose an event),
* the cache never exceeds its capacity,
* every get returns exactly what the reference model predicts,
* the eviction counter matches the model's evictions,
* the observer stream agrees with the counters.

A threaded smoke test then checks the same stats invariants survive
genuinely concurrent interleavings.
"""

import threading
from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import MISSING, ResultCache

KEYS = st.sampled_from(["a", "b", "c", "d", "e", "f"])
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, st.integers(0, 9) | st.none()),
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("clear")),
    ),
    max_size=80,
)


class LruModel:
    """Reference implementation mirroring ResultCache's contract."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, key, value):
        if self.capacity == 0:
            return
        if key in self.entries:
            self.entries.move_to_end(key)
        self.entries[key] = value
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def get(self, key):
        if key not in self.entries:
            self.misses += 1
            return MISSING
        self.entries.move_to_end(key)
        self.hits += 1
        return self.entries[key]

    def clear(self):
        self.entries.clear()


@settings(deadline=None, max_examples=150)
@given(capacity=st.integers(0, 4), ops=OPS)
def test_cache_matches_lru_model_under_any_interleaving(capacity, ops):
    events = []
    cache = ResultCache(capacity, observer=events.append)
    model = LruModel(capacity)
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            cache.put(key, value)
            model.put(key, value)
        elif op[0] == "get":
            _, key = op
            outcome = cache.get(key)
            expected = model.get(key)
            # A cached None is distinct from MISSING — the model and
            # the cache must agree on which one this lookup is.
            assert outcome is MISSING if expected is MISSING else (
                outcome == expected
            )
        else:
            cache.clear()
            model.clear()
        stats = cache.stats()
        # Invariants hold after EVERY operation, whatever the order.
        assert stats["hits"] + stats["misses"] == (
            model.hits + model.misses
        ), "stats lost a lookup"
        assert stats["hits"] == model.hits
        assert stats["misses"] == model.misses
        assert stats["evictions"] == model.evictions
        assert stats["size"] == len(model.entries)
        assert stats["size"] <= capacity
        assert len(cache) == len(model.entries)
        lookups = stats["hits"] + stats["misses"]
        if lookups:
            assert stats["hit_rate"] == stats["hits"] / lookups
        else:
            assert stats["hit_rate"] is None
    # The observer saw exactly the events the counters counted.
    assert events.count("hit") == model.hits
    assert events.count("miss") == model.misses
    assert events.count("eviction") == model.evictions


@settings(deadline=None, max_examples=25)
@given(capacity=st.integers(1, 3))
def test_cache_lru_order_matches_model(capacity):
    """Get refreshes recency: the model's eviction victim is the cache's."""
    cache = ResultCache(capacity)
    model = LruModel(capacity)
    keys = ["a", "b", "c", "d"]
    for key in keys:
        cache.put(key, key.upper())
        model.put(key, key.upper())
    cache.get(keys[0])
    model.get(keys[0])
    cache.put("z", "Z")
    model.put("z", "Z")
    for key in keys + ["z"]:
        expected = model.get(key)
        outcome = cache.get(key)
        assert outcome is MISSING if expected is MISSING else (
            outcome == expected
        )


def test_cache_stats_invariants_under_real_concurrency():
    """Threads hammering put/get: counters never lose or double-count."""
    cache = ResultCache(capacity=8)
    per_thread_gets = 400
    num_threads = 8
    errors = []

    def worker(seed):
        try:
            for step in range(per_thread_gets):
                key = (seed * 7 + step) % 16
                if step % 3 == 0:
                    cache.put(key, (seed, step))
                cache.get(key)
        except Exception as error:  # pragma: no cover - fail loudly
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(seed,))
        for seed in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == num_threads * per_thread_gets
    assert stats["size"] <= 8
    assert len(cache) <= 8
    # Everything ever inserted either still fits or was counted out.
    assert stats["evictions"] >= stats["size"] == len(cache)
