"""Tests for the scale-out coordinator tier (repro.coord).

The load-bearing invariant: every engine resolves ties with the same
rule — max score, then lowest reference neutral mass, then lowest
global library row — and each partition lists its segments in
ascending manifest order, so a worker's local row order is the global
order restricted to its subset.  Merging per-partition winners with
that rule (via the PSM merge fields on the wire) must therefore be
**bit-identical** to a single-node search, for every partition count
and strategy.  Everything else here — the async client pool, hedging,
admission control, the HTTP front-end — is robustness plumbing around
that invariant.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socketserver
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coord import (
    AsyncClientError,
    AsyncSearchClient,
    Coordinator,
    CoordinatorError,
    CoordinatorServer,
    CoordinatorService,
    PartitionPlan,
    PartitionSpec,
    assign_replicas,
    materialize_partitions,
    merge_psm_payloads,
    start_coordinator_server,
)
from repro.coord.partition import _contiguous_groups
from repro.hdc.spaces import HDSpaceConfig
from repro.service import (
    SearchClient,
    SearchService,
    ServiceConfig,
    ServiceError,
    start_server,
)
from repro.service.protocol import spectrum_to_payload
from repro.store import SegmentedSearcher, SegmentedStore, build_store


@pytest.fixture(scope="module")
def space_config(binning):
    return HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=17)


@pytest.fixture(scope="module")
def references(small_workload):
    return small_workload.references


@pytest.fixture(scope="module")
def queries(small_workload):
    return small_workload.queries


@pytest.fixture(scope="module")
def store(tmp_path_factory, references, space_config, binning):
    store = build_store(
        references,
        tmp_path_factory.mktemp("coord") / "store",
        space_config=space_config,
        binning=binning,
        segment_rows=13,
    )
    yield store
    store.close()


@pytest.fixture(scope="module")
def baseline(store, queries):
    """Single-node truth: query id -> winner payload (global rows)."""
    with SegmentedSearcher(store) as searcher:
        result = searcher.search(queries)
    return {psm.query_id: psm.to_dict() for psm in result.psms}


# ----------------------------------------------------------------------
# partition plans
# ----------------------------------------------------------------------


class TestContiguousGroups:
    def test_balances_by_count(self):
        groups = _contiguous_groups([10, 10, 10, 10], 2)
        assert groups == [[0, 1], [2, 3]]

    def test_groups_stay_nonempty_under_forced_cuts(self):
        # One huge head segment would swallow every ideal boundary;
        # the tail groups must still each get a segment.
        groups = _contiguous_groups([100, 1, 1, 1], 4)
        assert groups == [[0], [1], [2], [3]]

    def test_one_group_takes_everything(self):
        assert _contiguous_groups([3, 5, 2], 1) == [[0, 1, 2]]

    def test_groups_partition_all_positions(self):
        counts = [7, 1, 9, 4, 2, 8]
        for parts in range(1, len(counts) + 1):
            groups = _contiguous_groups(counts, parts)
            assert len(groups) == parts
            assert all(group for group in groups)
            flattened = [position for group in groups for position in group]
            assert flattened == list(range(len(counts)))


class TestPartitionPlan:
    def test_rows_plan_covers_store(self, store):
        plan = PartitionPlan.build(store, 2, "rows")
        assert len(plan) == 2
        assert plan.num_references == store.num_references
        all_segments = sorted(
            segment_id
            for spec in plan.partitions
            for segment_id in spec.segment_ids
        )
        assert all_segments == list(range(store.num_segments))
        assert (
            sum(spec.num_references for spec in plan.partitions)
            == store.num_references
        )

    def test_partition_count_clamped_to_segments(self, store):
        plan = PartitionPlan.build(store, store.num_segments + 10, "rows")
        assert len(plan) == store.num_segments
        assert all(len(spec.segment_ids) == 1 for spec in plan.partitions)

    def test_segment_ids_ascending_in_every_partition(self, store):
        # The bit-identity invariant: local row order == global order
        # restricted to the subset requires ascending manifest order.
        for strategy in ("rows", "mass"):
            plan = PartitionPlan.build(store, 3, strategy)
            for spec in plan.partitions:
                assert list(spec.segment_ids) == sorted(spec.segment_ids)

    def test_to_global_maps_every_row(self, store):
        plan = PartitionPlan.build(store, 3, "mass")
        offsets = store.offsets
        counts = [meta.num_references for meta in store.segment_metas]
        seen = set()
        for spec in plan.partitions:
            for local in range(spec.num_references):
                seen.add(spec.to_global(local))
        assert seen == set(range(store.num_references))
        # Spot-check the arithmetic against the manifest directly.
        spec = plan.partitions[0]
        first_segment = spec.segment_ids[0]
        assert spec.to_global(0) == int(offsets[first_segment])
        last_segment = spec.segment_ids[-1]
        assert spec.to_global(spec.num_references - 1) == int(
            offsets[last_segment]
        ) + counts[last_segment] - 1

    def test_to_global_rejects_out_of_range(self, store):
        spec = PartitionPlan.build(store, 2, "rows").partitions[0]
        with pytest.raises(ValueError, match="outside partition"):
            spec.to_global(spec.num_references)
        with pytest.raises(ValueError, match="outside partition"):
            spec.to_global(-1)

    def test_mass_strategy_orders_hulls(self, store):
        plan = PartitionPlan.build(store, 3, "mass")
        mins = [spec.mass_min for spec in plan.partitions]
        assert mins == sorted(mins)

    def test_range_routing_is_a_superset_of_segment_pruning(self, store):
        plan = PartitionPlan.build(store, 3, "mass")
        for lo, hi in ((0.0, 1e6), (900.0, 1100.0), (1e9, 2e9)):
            routed = set(plan.partitions_for_range(lo, hi))
            for segment_id in store.segments_for_range(lo, hi):
                owners = [
                    spec.index
                    for spec in plan.partitions
                    if segment_id in spec.segment_ids
                ]
                assert set(owners) <= routed

    def test_invalid_inputs_rejected(self, store):
        with pytest.raises(ValueError, match="unknown partition strategy"):
            PartitionPlan.build(store, 2, "zodiac")
        with pytest.raises(ValueError, match="at least one partition"):
            PartitionPlan.build(store, 0, "rows")

    def test_materialized_partitions_are_real_stores(self, store, tmp_path):
        plan = PartitionPlan.build(store, 2, "rows")
        paths = materialize_partitions(store, plan, root=tmp_path / "parts")
        assert sorted(paths) == [0, 1]
        for spec in plan.partitions:
            partition = SegmentedStore.open(paths[spec.index])
            assert partition.num_references == spec.num_references
            assert partition.num_segments == len(spec.segment_ids)
            # Zero-copy: rows come from the original segment archives.
            rows = [record.identifier for record in partition.iter_records()]
            expected = []
            for segment_id in spec.segment_ids:
                expected.extend(store.segment(segment_id).identifiers)
            assert rows == expected
            partition.close()


class TestAssignReplicas:
    def test_round_robin_deal(self):
        groups = assign_replicas(["a", "b", "c", "d"], 2)
        assert groups == [["a", "c"], ["b", "d"]]

    def test_requires_one_worker_per_partition(self):
        with pytest.raises(ValueError, match="at least that many"):
            assign_replicas(["a"], 2)


# ----------------------------------------------------------------------
# the merge rule
# ----------------------------------------------------------------------


def _spec(index: int, offset: int, rows: int) -> PartitionSpec:
    return PartitionSpec(
        index=index,
        segment_ids=(index,),
        num_references=rows,
        mass_min=0.0,
        mass_max=1e9,
        global_offsets=(offset,),
        local_offsets=(0,),
    )


def _payload(score, mass, position, mode="open"):
    return {
        "query_id": "q",
        "reference_id": f"r{position}",
        "peptide_key": None,
        "score": score,
        "is_decoy": False,
        "precursor_mass_difference": 0.0,
        "mode": mode,
        "q_value": None,
        "reference_mass": mass,
        "library_position": position,
    }


class TestMergeRule:
    def test_highest_score_wins(self):
        merged = merge_psm_payloads(
            [
                (_payload(10.0, 500.0, 1), _spec(0, 0, 5)),
                (_payload(12.0, 700.0, 2), _spec(1, 5, 5)),
            ]
        )
        assert merged["reference_id"] == "r2"
        assert merged["library_position"] == 7  # globalized

    def test_score_tie_breaks_to_lower_mass(self):
        merged = merge_psm_payloads(
            [
                (_payload(10.0, 700.0, 0), _spec(0, 0, 5)),
                (_payload(10.0, 500.0, 0), _spec(1, 5, 5)),
            ]
        )
        assert merged["reference_mass"] == 500.0

    def test_full_tie_breaks_to_lower_global_row(self):
        merged = merge_psm_payloads(
            [
                (_payload(10.0, 500.0, 3), _spec(0, 0, 5)),
                (_payload(10.0, 500.0, 0), _spec(1, 5, 5)),
            ]
        )
        # Local row 0 of partition 1 is global row 5, local row 3 of
        # partition 0 is global row 3: the lower global row wins even
        # though its local row is higher.
        assert merged["library_position"] == 3

    def test_standard_candidates_exclude_open_ones(self):
        # Cascade composition: any standard-pass winner means the
        # single-node standard pass matched, so a higher-scoring
        # open-pass candidate from another partition must lose.
        merged = merge_psm_payloads(
            [
                (_payload(99.0, 500.0, 0, mode="open"), _spec(0, 0, 5)),
                (_payload(1.0, 500.0, 0, mode="standard"), _spec(1, 5, 5)),
            ]
        )
        assert merged["mode"] == "standard"
        assert merged["score"] == 1.0

    def test_all_none_merges_to_none(self):
        assert (
            merge_psm_payloads(
                [(None, _spec(0, 0, 5)), (None, _spec(1, 5, 5))]
            )
            is None
        )

    def test_missing_merge_fields_raise(self):
        stale = _payload(10.0, 500.0, 1)
        stale["reference_mass"] = None
        with pytest.raises(CoordinatorError, match="merge fields"):
            merge_psm_payloads([(stale, _spec(0, 0, 5))])

    def test_input_payloads_are_not_mutated(self):
        payload = _payload(10.0, 500.0, 2)
        merge_psm_payloads([(payload, _spec(0, 10, 5))])
        assert payload["library_position"] == 2


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_partitioned_lexsort_merge_equals_global(data):
    """Partition-local lexsort winners + merge == the global lexsort.

    Draws a synthetic score/mass table with deliberate ties, splits it
    into contiguous partitions, computes each partition's winner with
    the engines' exact ``np.lexsort((positions, masses, -scores))``
    rule, and asserts the merged winner is the global rule's winner —
    the property that makes the coordinator bit-identical.
    """
    num_rows = data.draw(st.integers(1, 24), label="rows")
    scores = np.asarray(
        data.draw(
            st.lists(
                st.sampled_from([1.0, 2.0, 3.0]),
                min_size=num_rows,
                max_size=num_rows,
            ),
            label="scores",
        )
    )
    masses = np.asarray(
        data.draw(
            st.lists(
                st.sampled_from([100.0, 200.0, 300.0]),
                min_size=num_rows,
                max_size=num_rows,
            ),
            label="masses",
        )
    )
    num_parts = data.draw(st.integers(1, 4), label="parts")
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(0, num_rows),
                min_size=num_parts - 1,
                max_size=num_parts - 1,
            ),
            label="cuts",
        )
    )
    bounds = [0, *cuts, num_rows]
    positions = np.arange(num_rows)
    global_winner = int(np.lexsort((positions, masses, -scores))[0])

    entries = []
    for index in range(num_parts):
        lo, hi = bounds[index], bounds[index + 1]
        spec = _spec(index, lo, max(hi - lo, 1))
        if hi == lo:
            entries.append((None, spec))
            continue
        local = np.lexsort(
            (positions[lo:hi] - lo, masses[lo:hi], -scores[lo:hi])
        )[0]
        entries.append(
            (
                _payload(
                    float(scores[lo + local]),
                    float(masses[lo + local]),
                    int(local),
                ),
                spec,
            )
        )
    merged = merge_psm_payloads(entries)
    assert merged is not None
    assert merged["library_position"] == global_winner
    assert merged["score"] == scores[global_winner]
    assert merged["reference_mass"] == masses[global_winner]


# ----------------------------------------------------------------------
# bit-identity across partition counts and strategies (no HTTP)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["rows", "mass"])
@pytest.mark.parametrize("num_partitions", [1, 2, 3, 5])
def test_partitioned_search_merges_bit_identically(
    store, queries, baseline, tmp_path, strategy, num_partitions
):
    plan = PartitionPlan.build(store, num_partitions, strategy)
    paths = materialize_partitions(store, plan, root=tmp_path / "parts")
    per_partition = {}
    for spec in plan.partitions:
        with SegmentedSearcher(paths[spec.index]) as searcher:
            result = searcher.search(queries)
        per_partition[spec.index] = {
            psm.query_id: psm.to_dict() for psm in result.psms
        }
    for query in queries:
        entries = [
            (
                per_partition[spec.index].get(query.identifier),
                spec,
            )
            for spec in plan.partitions
        ]
        merged = merge_psm_payloads(entries)
        assert merged == baseline.get(query.identifier), (
            f"{strategy}/{num_partitions}: {query.identifier} diverged"
        )


# ----------------------------------------------------------------------
# the asyncio client
# ----------------------------------------------------------------------


@pytest.fixture()
def worker_server(store):
    service = SearchService(
        store.root, ServiceConfig(max_batch=8, max_wait_ms=2.0)
    )
    server = start_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    service.close()


class _OneRequestPerConnectionServer(socketserver.ThreadingTCPServer):
    """Serves one JSON response per connection, then closes it silently.

    Simulates a worker whose keep-alive sockets die between requests
    (idle timeout, restart) without advertising ``Connection: close``.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self):
        self.connections = 0
        self.requests = 0
        self._lock = threading.Lock()

        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                with outer._lock:
                    outer.connections += 1
                # Read one request: headers, then the body if any.
                length = 0
                while True:
                    line = self.rfile.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                if length:
                    self.rfile.read(length)
                with outer._lock:
                    outer.requests += 1
                body = json.dumps({"status": "ok"}).encode()
                self.wfile.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                # Returning closes the connection without a close header.

        super().__init__(("127.0.0.1", 0), Handler)


class TestAsyncSearchClient:
    def test_round_trips_and_reuses_the_connection(
        self, worker_server, queries
    ):
        url, _server = worker_server

        async def scenario():
            client = AsyncSearchClient(url)
            status, health = await client.request_json("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, reply = await client.request_json(
                "POST",
                "/search",
                {"spectrum": spectrum_to_payload(queries[0])},
            )
            assert status == 200 and "psm" in reply
            # Sequential requests reuse one pooled connection.
            assert len(client._idle) == 1
            await client.close()

        asyncio.run(scenario())

    def test_stale_pooled_connection_retries_once(self):
        server = _OneRequestPerConnectionServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address

        async def scenario():
            client = AsyncSearchClient(f"http://{host}:{port}")
            for _ in range(3):
                status, _body = await client.request_json("GET", "/healthz")
                assert status == 200
            await client.close()

        try:
            asyncio.run(scenario())
            # Three successful requests over three connections: each
            # reuse hit a closed socket and was transparently retried
            # on a fresh one.
            assert server.requests == 3
            assert server.connections == 3
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_fresh_connection_failure_is_not_retried(self):
        async def scenario():
            probe = socketserver.TCPServer(("127.0.0.1", 0), None)
            host, port = probe.server_address
            probe.server_close()  # port is now closed
            client = AsyncSearchClient(f"http://{host}:{port}")
            with pytest.raises(AsyncClientError, match="cannot reach"):
                await client.request_json("GET", "/healthz")
            await client.close()

        asyncio.run(scenario())

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="plain http"):
            AsyncSearchClient("https://example.com")


# ----------------------------------------------------------------------
# coordinator end-to-end over in-process workers
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def coordinator_stack(store, tmp_path_factory):
    """2 partitions, 2 in-thread workers, coordinator + HTTP front."""
    plan = PartitionPlan.build(store, 2, "rows")
    paths = materialize_partitions(
        store, plan, root=tmp_path_factory.mktemp("parts")
    )
    workers = []
    urls = []
    for spec in plan.partitions:
        service = SearchService(
            paths[spec.index], ServiceConfig(max_batch=8, max_wait_ms=2.0)
        )
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        workers.append((service, server, thread))
        urls.append(f"http://{host}:{port}")
    coordinator = Coordinator(
        plan.partitions, [[url] for url in urls], probe_interval=0.5
    )
    coordinator.wait_ready(timeout=30)
    front = start_coordinator_server(
        CoordinatorService(coordinator, max_inflight=16)
    )
    front_thread = threading.Thread(target=front.serve_forever, daemon=True)
    front_thread.start()
    host, port = front.server_address[:2]
    yield f"http://{host}:{port}", coordinator, plan
    front.shutdown()
    front.server_close()
    front_thread.join(timeout=10)
    coordinator.close()
    for service, server, thread in workers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.close()


class TestCoordinatorHTTP:
    def test_batch_is_bit_identical_to_single_node(
        self, coordinator_stack, queries, baseline
    ):
        url, _coordinator, _plan = coordinator_stack
        client = SearchClient(url)
        psms = client.search_batch(queries)
        assert len(psms) == len(queries)
        for query, psm in zip(queries, psms):
            expected = baseline.get(query.identifier)
            payload = psm.to_dict() if psm is not None else None
            assert payload == expected

    def test_single_search_matches_and_carries_request_id(
        self, coordinator_stack, queries, baseline
    ):
        url, _coordinator, _plan = coordinator_stack
        client = SearchClient(url)
        reply = client.search_detailed(queries[0], request_id="coord-test-1")
        assert reply["request_id"] == "coord-test-1"
        assert reply["route"] == "default"
        assert reply["psm"] == baseline.get(queries[0].identifier)

    def test_healthz_reports_fleet_and_topology(self, coordinator_stack):
        url, _coordinator, plan = coordinator_stack
        health = SearchClient(url).healthz()
        assert health["status"] == "ok"
        assert health["role"] == "coordinator"
        assert health["draining"] is False
        assert health["num_partitions"] == len(plan)
        assert health["num_references"] == plan.num_references

    def test_stats_exposes_workers_and_admission(self, coordinator_stack):
        url, _coordinator, plan = coordinator_stack
        stats = SearchClient(url).stats()
        assert stats["max_inflight"] == 16
        assert len(stats["partitions"]) == len(plan)
        for partition in stats["partitions"]:
            assert partition["workers"]
            assert all(w["healthy"] for w in partition["workers"])

    def test_metrics_exports_fanout_counters(
        self, coordinator_stack, queries
    ):
        url, _coordinator, _plan = coordinator_stack
        client = SearchClient(url)
        client.search(queries[0])
        text = client.metrics()
        assert "hdoms_coord_requests_total" in text
        assert "hdoms_coord_scatter_total" in text
        assert "hdoms_coord_fanout_partitions" in text

    def test_unknown_route_rejected(self, coordinator_stack, queries):
        url, _coordinator, _plan = coordinator_stack
        client = SearchClient(url, route="yeast")
        with pytest.raises(ServiceError, match="only the 'default'") as info:
            client.search(queries[0])
        assert info.value.status == 400

    def test_unknown_path_is_404(self, coordinator_stack):
        url, _coordinator, _plan = coordinator_stack
        with pytest.raises(ServiceError) as info:
            SearchClient(url)._request("GET", "/nope")
        assert info.value.status == 404

    def test_bad_spectrum_rejected_before_admission(self, coordinator_stack):
        url, coordinator, _plan = coordinator_stack
        with pytest.raises(ServiceError) as info:
            SearchClient(url)._request(
                "POST", "/search", {"spectrum": {"identifier": "broken"}}
            )
        assert info.value.status == 400

    def test_full_admission_gate_says_429_with_retry_after(
        self, coordinator_stack, queries
    ):
        _url, coordinator, _plan = coordinator_stack
        # A sibling front-end sharing the coordinator but admitting
        # nothing: every search must bounce with 429 + Retry-After.
        front = start_coordinator_server(
            CoordinatorService(coordinator, max_inflight=0)
        )
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        host, port = front.server_address[:2]
        try:
            connection = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps(
                {"spectrum": spectrum_to_payload(queries[0])}
            )
            connection.request(
                "POST",
                "/search",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 429
            assert response.getheader("Retry-After") == "1"
            assert "capacity" in payload["error"]
            rejected = coordinator.metrics.rejected.value(endpoint="search")
            assert rejected >= 1
            connection.close()
        finally:
            front.shutdown()
            front.server_close()
            thread.join(timeout=10)

    def test_draining_coordinator_says_503_on_healthz(self, store):
        # A dedicated front (shutting down the shared one would break
        # the other tests): healthz flips to 503/draining once
        # shutdown begins, exactly like a worker.
        plan = PartitionPlan.build(store, 1, "rows")
        coordinator = Coordinator(
            plan.partitions,
            [["http://127.0.0.1:9"]],  # never probed successfully; fine
            probe_interval=30.0,
        )
        front = start_coordinator_server(
            CoordinatorService(coordinator, max_inflight=4)
        )
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        host, port = front.server_address[:2]
        try:
            connection = http.client.HTTPConnection(host, port, timeout=10)
            # 200 responses keep the connection alive (error responses
            # close it), so open the keep-alive socket via /stats.
            connection.request("GET", "/stats")
            first = connection.getresponse()
            first.read()
            assert first.status == 200
            front.shutdown()
            # The pooled keep-alive connection is still open; the
            # draining server must answer 503 with the drain marker.
            connection.request("GET", "/healthz")
            second = connection.getresponse()
            payload = json.loads(second.read())
            assert second.status == 503
            assert payload["draining"] is True
            connection.close()
        finally:
            front.shutdown()
            front.server_close()
            thread.join(timeout=10)
            coordinator.close()


class TestStandardModeRouting:
    def test_narrow_windows_skip_partitions_and_stay_identical(
        self, references, queries, space_config, binning, tmp_path
    ):
        # A mass-sorted store gives the mass strategy near-disjoint
        # hulls, so standard-mode queries route to a strict subset of
        # partitions — and the answers still match single-node exactly.
        ordered = sorted(references, key=lambda s: s.neutral_mass)
        store = build_store(
            ordered,
            tmp_path / "sorted-store",
            space_config=space_config,
            binning=binning,
            segment_rows=13,
        )
        try:
            from repro.oms.search import HDSearchConfig

            config = HDSearchConfig(mode="standard")
            with SegmentedSearcher(store, config=config) as searcher:
                truth = {
                    psm.query_id: psm.to_dict()
                    for psm in searcher.search(queries).psms
                }
            plan = PartitionPlan.build(store, 3, "mass")
            paths = materialize_partitions(store, plan)
            workers = []
            urls = []
            for spec in plan.partitions:
                service = SearchService(
                    paths[spec.index],
                    ServiceConfig(
                        max_batch=8, max_wait_ms=2.0, mode="standard"
                    ),
                )
                server = start_server(service)
                thread = threading.Thread(
                    target=server.serve_forever, daemon=True
                )
                thread.start()
                host, port = server.server_address[:2]
                workers.append((service, server, thread))
                urls.append(f"http://{host}:{port}")
            coordinator = Coordinator(
                plan.partitions,
                [[url] for url in urls],
                mode="standard",
                standard_tolerance=ServiceConfig().standard_tolerance_da,
                probe_interval=0.5,
            )
            try:
                coordinator.wait_ready(timeout=30)
                payloads = [spectrum_to_payload(query) for query in queries]
                merged = coordinator.search_payloads(payloads)
                for query, winner in zip(queries, merged):
                    assert winner == truth.get(query.identifier)
                skipped = sum(
                    coordinator.metrics.skipped.value(
                        partition=str(spec.index)
                    )
                    for spec in plan.partitions
                )
                assert skipped > 0, (
                    "mass-partitioned standard search should have "
                    "skipped at least one partition"
                )
            finally:
                coordinator.close()
                for service, server, thread in workers:
                    server.shutdown()
                    server.server_close()
                    thread.join(timeout=10)
                    service.close()
        finally:
            store.close()


# ----------------------------------------------------------------------
# hedging / retry plumbing
# ----------------------------------------------------------------------


class TestCoordinatorRobustness:
    def test_all_replicas_down_is_a_coordinator_error(self, store):
        plan = PartitionPlan.build(store, 1, "rows")
        probe = socketserver.TCPServer(("127.0.0.1", 0), None)
        host, port = probe.server_address
        probe.server_close()  # dead port
        coordinator = Coordinator(
            plan.partitions,
            [[f"http://{host}:{port}"]],
            probe_interval=30.0,
            worker_timeout=5.0,
        )
        try:
            payload = {"spectrum": None}
            with pytest.raises(CoordinatorError, match="every replica"):
                coordinator._submit(
                    coordinator._call_partition(
                        plan.partitions[0], "/search_batch", payload
                    )
                ).result(timeout=30)
            assert (
                coordinator.metrics.worker_errors.value(
                    worker=f"http://{host}:{port}"
                )
                >= 1
            )
        finally:
            coordinator.close()

    def test_failed_primary_retries_on_sibling(self, store, queries, baseline):
        plan = PartitionPlan.build(store, 1, "rows")
        probe = socketserver.TCPServer(("127.0.0.1", 0), None)
        dead_host, dead_port = probe.server_address
        probe.server_close()
        service = SearchService(
            store.root, ServiceConfig(max_batch=8, max_wait_ms=2.0)
        )
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        coordinator = Coordinator(
            plan.partitions,
            [[f"http://{dead_host}:{dead_port}", f"http://{host}:{port}"]],
            probe_interval=30.0,
            worker_timeout=20.0,
        )
        try:
            # No probes have run: both replicas look equally (un)healthy,
            # so round-robin can pick the dead primary; the retry must
            # land on the live sibling and the answer stay exact.
            for _ in range(4):  # cover both round-robin phases
                merged = coordinator.search_payloads(
                    [spectrum_to_payload(queries[0])]
                )
                assert merged[0] == baseline.get(queries[0].identifier)
            partition_label = str(plan.partitions[0].index)
            retried = coordinator.metrics.retries.value(
                partition=partition_label
            )
            assert retried >= 1
        finally:
            coordinator.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()

    def test_mismatched_worker_is_marked_unhealthy(self, store):
        # A worker serving the WHOLE store behind a partition spec for
        # half of it would merge garbage; the prober must reject it.
        plan = PartitionPlan.build(store, 2, "rows")
        service = SearchService(
            store.root, ServiceConfig(max_batch=8, max_wait_ms=2.0)
        )
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        coordinator = Coordinator(
            plan.partitions, [[url], [url]], probe_interval=0.2
        )
        try:
            with pytest.raises(CoordinatorError, match="no healthy worker"):
                coordinator.wait_ready(timeout=2.0)
            stats = coordinator.stats()
            for partition in stats["partitions"]:
                worker = partition["workers"][0]
                assert worker["healthy"] is False
                assert "expects" in worker["last_error"]
        finally:
            coordinator.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()
