"""Tests for the online search service (repro.service).

Covers the satellite checklist: concurrent clients get PSMs
bit-identical to a direct HDOmsSearcher run, repeated spectra hit the
result cache, the ``max_wait_ms`` deadline actually coalesces batches,
and ``/reload`` swaps the index without dropping queued requests.
"""

import threading
import time

import numpy as np
import pytest

from repro.index import LibraryIndex
from repro.hdc.spaces import HDSpaceConfig
from repro.ms.spectrum import Spectrum
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.oms.psm import PSM, SearchResult
from repro.oms.search import HDOmsSearcher, HDSearchConfig
from repro.service import (
    MISSING,
    MicroBatchScheduler,
    ProtocolError,
    ResultCache,
    SearchClient,
    SearchService,
    ServiceConfig,
    ServiceError,
    config_fingerprint,
    spectrum_digest,
    spectrum_from_payload,
    spectrum_to_payload,
    start_server,
)


@pytest.fixture(scope="module")
def workload(binning):
    return build_workload(
        WorkloadConfig(
            name="service-test", num_references=150, num_queries=30, seed=7
        )
    )


@pytest.fixture(scope="module")
def index(workload, binning):
    return LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        source="service-test",
    )


@pytest.fixture(scope="module")
def index_path(index, tmp_path_factory):
    return index.save(tmp_path_factory.mktemp("service") / "library.npz")


@pytest.fixture(scope="module")
def baseline(index, workload):
    """query_id -> PSM (or absent) from a direct single-process run."""
    result = HDOmsSearcher.from_index(index).search(workload.queries)
    return {psm.query_id: psm for psm in result.psms}


def make_service(index_path, **overrides):
    defaults = dict(max_batch=8, max_wait_ms=10.0)
    defaults.update(overrides)
    return SearchService(index_path, ServiceConfig(**defaults))


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_spectrum_payload_roundtrip(self, workload):
        original = workload.queries[0]
        restored = spectrum_from_payload(spectrum_to_payload(original))
        assert restored.identifier == original.identifier
        assert restored.precursor_mz == original.precursor_mz
        assert restored.precursor_charge == original.precursor_charge
        assert np.array_equal(restored.mz, original.mz)
        assert np.array_equal(restored.intensity, original.intensity)
        assert spectrum_digest(restored) == spectrum_digest(original)

    def test_digest_ignores_identifier(self, workload):
        import dataclasses

        spectrum = workload.queries[0]
        renamed = dataclasses.replace(spectrum, identifier="other-name")
        assert spectrum_digest(renamed) == spectrum_digest(spectrum)

    def test_digest_sees_peak_changes(self, workload):
        spectrum = workload.queries[0]
        perturbed = spectrum.copy_with_peaks(
            spectrum.mz, spectrum.intensity * 2.0
        )
        assert spectrum_digest(perturbed) != spectrum_digest(spectrum)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"precursor_mz": 500.0},
            {
                "precursor_mz": -1.0,
                "precursor_charge": 2,
                "mz": [1.0],
                "intensity": [1.0],
            },
        ],
    )
    def test_bad_payload_raises(self, payload):
        with pytest.raises(ProtocolError):
            spectrum_from_payload(payload)

    def test_fingerprint_separates_configs(self, index):
        from repro.oms.candidates import WindowConfig

        base = config_fingerprint(
            index.provenance(), WindowConfig(), HDSearchConfig(), "dense"
        )
        other_mode = config_fingerprint(
            index.provenance(),
            WindowConfig(),
            HDSearchConfig(mode="standard"),
            "dense",
        )
        other_backend = config_fingerprint(
            index.provenance(), WindowConfig(), HDSearchConfig(), "packed"
        )
        assert len({base, other_mode, other_backend}) == 3


# ----------------------------------------------------------------------
# PSM / SearchResult serialization (satellite)
# ----------------------------------------------------------------------


class TestPsmSerialization:
    def test_psm_roundtrip(self):
        psm = PSM(
            query_id="q1",
            reference_id="r9",
            peptide_key="PEPTIDE/2",
            score=431.0,
            is_decoy=False,
            precursor_mass_difference=79.9663,
            mode="open",
            q_value=0.004,
        )
        assert PSM.from_dict(psm.to_dict()) == psm

    def test_psm_roundtrip_none_fields(self):
        psm = PSM(
            query_id="q2",
            reference_id="DECOY_r1",
            peptide_key=None,
            score=-12.0,
            is_decoy=True,
            precursor_mass_difference=-0.01,
        )
        restored = PSM.from_dict(psm.to_dict())
        assert restored == psm
        assert restored.q_value is None

    def test_psm_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="missing"):
            PSM.from_dict({"query_id": "q"})

    def test_search_result_roundtrip(self, index, workload):
        result = HDOmsSearcher.from_index(index).search(workload.queries[:8])
        restored = SearchResult.from_dict(result.to_dict())
        assert restored.psms == result.psms
        assert restored.num_queries == result.num_queries
        assert restored.num_unmatched == result.num_unmatched
        assert restored.backend_name == result.backend_name

    def test_to_dict_is_json_safe(self, index, workload):
        import json

        result = HDOmsSearcher.from_index(index).search(workload.queries[:8])
        parsed = json.loads(json.dumps(result.to_dict()))
        assert SearchResult.from_dict(parsed).psms == result.psms


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is MISSING
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_stores_none_distinct_from_missing(self):
        cache = ResultCache(capacity=4)
        cache.put("unmatched", None)
        assert cache.get("unmatched") is None
        assert cache.get("absent") is MISSING

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables_storage(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is MISSING
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear_keeps_stats(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is MISSING
        assert cache.stats()["hits"] == 1


# ----------------------------------------------------------------------
# micro-batch scheduler
# ----------------------------------------------------------------------


class RecordingRunner:
    """Echo runner that records every batch it executes."""

    def __init__(self, delay: float = 0.0):
        self.batches = []
        self.delay = delay

    def __call__(self, items):
        if self.delay:
            time.sleep(self.delay)
        self.batches.append(list(items))
        return [f"done-{item}" for item in items]


class TestScheduler:
    def test_full_batch_flushes_without_waiting(self):
        runner = RecordingRunner()
        scheduler = MicroBatchScheduler(runner, max_batch=4, max_wait_ms=60_000)
        try:
            futures = [scheduler.submit(i) for i in range(4)]
            results = [f.result(timeout=5) for f in futures]
            assert results == [f"done-{i}" for i in range(4)]
            assert runner.batches == [[0, 1, 2, 3]]
            assert scheduler.stats.snapshot()["full_flushes"] == 1
        finally:
            scheduler.close()

    def test_max_wait_flush_coalesces_trickle(self):
        # Six submissions well inside the deadline must come out as ONE
        # batch: the flusher holds the first request back max_wait_ms
        # and everything arriving meanwhile rides along.
        runner = RecordingRunner()
        scheduler = MicroBatchScheduler(runner, max_batch=64, max_wait_ms=500)
        try:
            futures = [scheduler.submit(i) for i in range(6)]
            for future in futures:
                future.result(timeout=5)
            assert runner.batches == [[0, 1, 2, 3, 4, 5]]
            stats = scheduler.stats.snapshot()
            assert stats["timeout_flushes"] == 1
            assert stats["max_batch_size"] == 6
        finally:
            scheduler.close()

    def test_oversize_burst_splits_into_max_batches(self):
        runner = RecordingRunner()
        scheduler = MicroBatchScheduler(runner, max_batch=3, max_wait_ms=200)
        try:
            futures = [scheduler.submit(i) for i in range(7)]
            for future in futures:
                future.result(timeout=5)
            assert [len(batch) for batch in runner.batches[:2]] == [3, 3]
            assert sum(len(batch) for batch in runner.batches) == 7
        finally:
            scheduler.close()

    def test_close_drains_queue(self):
        runner = RecordingRunner(delay=0.05)
        scheduler = MicroBatchScheduler(runner, max_batch=2, max_wait_ms=60_000)
        futures = [scheduler.submit(i) for i in range(5)]
        scheduler.close(drain=True)
        assert [f.result(timeout=0) for f in futures] == [
            f"done-{i}" for i in range(5)
        ]
        # The odd-sized tail only flushed because close() drained it —
        # the stats must attribute it to the drain, not a timeout.
        snapshot = scheduler.stats.snapshot()
        assert snapshot["drain_flushes"] >= 1
        assert snapshot["timeout_flushes"] == 0

    def test_close_without_drain_fails_futures(self):
        runner = RecordingRunner(delay=0.2)
        scheduler = MicroBatchScheduler(runner, max_batch=1, max_wait_ms=0)
        first = scheduler.submit("a")  # occupies the runner
        time.sleep(0.05)
        queued = scheduler.submit("b")
        scheduler.close(drain=False)
        assert first.result(timeout=5) == "done-a"
        with pytest.raises(RuntimeError, match="closed"):
            queued.result(timeout=5)
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit("c")

    def test_close_without_drain_mid_wait_runs_no_phantom_batch(self):
        # The flusher is parked in its fill-wait when close(drain=False)
        # empties the queue: no zero-size batch may reach the runner or
        # the stats.
        runner = RecordingRunner()
        scheduler = MicroBatchScheduler(runner, max_batch=10, max_wait_ms=60_000)
        futures = [scheduler.submit(i) for i in range(2)]
        time.sleep(0.05)  # let the flusher enter the fill-wait
        scheduler.close(drain=False)
        for future in futures:
            with pytest.raises(RuntimeError, match="closed"):
                future.result(timeout=5)
        assert runner.batches == []
        assert scheduler.stats.snapshot()["batches"] == 0

    def test_runner_exception_fails_batch_not_scheduler(self):
        calls = {"n": 0}

        def flaky(items):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return list(items)

        scheduler = MicroBatchScheduler(flaky, max_batch=1, max_wait_ms=0)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                scheduler.submit("x").result(timeout=5)
            assert scheduler.submit("y").result(timeout=5) == "y"
        finally:
            scheduler.close()

    def test_rejects_bad_parameters(self):
        runner = RecordingRunner()
        with pytest.raises(ValueError):
            MicroBatchScheduler(runner, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(runner, max_wait_ms=-1)


# ----------------------------------------------------------------------
# SearchService (no HTTP)
# ----------------------------------------------------------------------


class TestSearchService:
    def test_results_identical_to_direct_searcher(
        self, index_path, workload, baseline
    ):
        with make_service(index_path) as service:
            for query in workload.queries:
                assert service.search_one(query) == baseline.get(
                    query.identifier
                )

    def test_sharded_engine_identical(self, index_path, workload, baseline):
        with make_service(
            index_path, engine="sharded", num_shards=2, num_workers=0
        ) as service:
            for query in workload.queries:
                assert service.search_one(query) == baseline.get(
                    query.identifier
                )

    def test_concurrent_clients_identical(
        self, index_path, workload, baseline
    ):
        with make_service(index_path, max_wait_ms=20.0) as service:
            results = {}
            errors = []

            def client(shard):
                try:
                    for query in workload.queries[shard::8]:
                        results[query.identifier] = service.search_one(query)
                except Exception as error:  # pragma: no cover - fail loudly
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(shard,))
                for shard in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(results) == len(workload.queries)
            for query in workload.queries:
                assert results[query.identifier] == baseline.get(
                    query.identifier
                )
            snapshot = service.scheduler.stats.snapshot()
            assert snapshot["requests"] == len(workload.queries)

    def test_repeated_spectrum_hits_cache(self, index_path, workload):
        with make_service(index_path) as service:
            query = workload.queries[0]
            first, cached_first = service.search_one_detailed(query)
            second, cached_second = service.search_one_detailed(query)
            assert not cached_first
            assert cached_second
            assert first == second
            assert service.cache.stats()["hits"] == 1

    def test_cache_hit_rewrites_query_id(self, index_path, workload):
        import dataclasses

        with make_service(index_path) as service:
            query = workload.queries[0]
            original = service.search_one(query)
            assert original is not None
            renamed = dataclasses.replace(query, identifier="resubmitted")
            psm, cached = service.search_one_detailed(renamed)
            assert cached
            assert psm.query_id == "resubmitted"
            assert psm == dataclasses.replace(
                original, query_id="resubmitted"
            )

    def test_unmatched_query_cached_as_none(self, index_path, workload):
        import dataclasses

        with make_service(index_path) as service:
            # A precursor far outside every window can match nothing.
            hopeless = dataclasses.replace(
                workload.queries[0], precursor_mz=9000.0
            )
            assert service.search_one(hopeless) is None
            psm, cached = service.search_one_detailed(hopeless)
            assert psm is None
            assert cached

    def test_search_many_dedupes_identical_spectra(
        self, index_path, workload, baseline
    ):
        import dataclasses

        with make_service(index_path) as service:
            query = workload.queries[0]
            renamed = dataclasses.replace(query, identifier="twin")
            results = service.search_many([query, renamed, query])
            expected = baseline.get(query.identifier)
            assert results[0] == expected
            assert results[2] == expected
            assert results[1] == dataclasses.replace(
                expected, query_id="twin"
            )
            # One unique digest -> one scheduled search.
            assert service.scheduler.stats.snapshot()["requests"] == 1

    def test_auto_engine_honours_worker_request(self, index_path):
        with make_service(index_path, num_workers=2) as service:
            assert service.engine_name.startswith("sharded")
        with make_service(index_path) as service:
            assert service.engine_name == "batched-dense"

    def test_search_many_aligns_and_coalesces(
        self, index_path, workload, baseline
    ):
        with make_service(index_path, max_batch=64) as service:
            results = service.search_many(workload.queries)
            assert len(results) == len(workload.queries)
            for query, psm in zip(workload.queries, results):
                assert psm == baseline.get(query.identifier)
            # The whole list entered the scheduler together: far fewer
            # batches than requests.
            snapshot = service.scheduler.stats.snapshot()
            assert snapshot["batches"] < len(workload.queries)

    def test_reload_swaps_without_dropping_queued_requests(
        self, index_path, workload, baseline
    ):
        with make_service(index_path, max_wait_ms=20.0) as service:
            results = {}
            errors = []

            def client(shard):
                try:
                    for query in workload.queries[shard::6]:
                        results[query.identifier] = service.search_one(query)
                except Exception as error:  # pragma: no cover - fail loudly
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(shard,))
                for shard in range(6)
            ]
            for thread in threads:
                thread.start()
            service.reload()  # same path: swap engine mid-traffic
            for thread in threads:
                thread.join()
            assert not errors
            for query in workload.queries:
                assert results[query.identifier] == baseline.get(
                    query.identifier
                )
            assert service.stats()["requests"]["reloads"] == 1

    def test_stale_generation_result_is_not_cached(
        self, index_path, workload
    ):
        # A result computed on a pre-reload engine must not enter the
        # cache after reload() cleared it: a rebuilt index at the same
        # path can share a fingerprint, so the generation is the guard.
        with make_service(index_path) as service:
            query = workload.queries[0]
            digest = spectrum_digest(query)
            key = (service._fingerprint, digest)
            service._finish(digest, (None, service._fingerprint, -1))
            assert service.cache.get(key) is MISSING
            service._finish(
                digest, (None, service._fingerprint, service._generation)
            )
            assert service.cache.get(key) is None

    def test_reload_bumps_generation(self, index_path, workload):
        with make_service(index_path) as service:
            assert service._generation == 0
            service.reload()
            assert service._generation == 1

    def test_reload_requires_path_for_memory_index(self, index):
        service = SearchService(index, ServiceConfig(max_wait_ms=0.0))
        try:
            with pytest.raises(ValueError, match="in-memory"):
                service.reload()
        finally:
            service.close()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"engine": "batched", "mode": "cascade"},
            {"engine": "batched", "backend": "packed"},
            {"engine": "batched", "num_shards": 2},
            {"engine": "batched", "num_workers": 2},
            {"engine": "batched", "num_workers": None},
            {"engine": "warp-drive"},
            {"mode": "sideways"},
            {"num_workers": -1},
        ],
    )
    def test_config_rejects_unsupported_combinations(self, overrides):
        with pytest.raises(ValueError):
            ServiceConfig(**overrides)

    def test_stats_shape(self, index_path, workload):
        with make_service(index_path) as service:
            service.search_one(workload.queries[0])
            stats = service.stats()
            assert stats["requests"]["search"] == 1
            assert stats["cache"]["misses"] >= 1
            assert stats["scheduler"]["batches"] >= 1
            assert stats["latency"]["mean_ms"] is not None
            assert stats["engine"]["num_references"] == len(
                service.index
            )

    def test_close_is_idempotent(self, index_path):
        service = make_service(index_path)
        service.close()
        service.close()


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def http_service(index_path):
    service = SearchService(
        index_path, ServiceConfig(max_batch=8, max_wait_ms=10.0)
    )
    server = start_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, SearchClient(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


class TestHttpApi:
    def test_concurrent_http_clients_identical(
        self, http_service, workload, baseline
    ):
        _service, client = http_service
        results = {}
        errors = []

        def worker(shard):
            try:
                for query in workload.queries[shard::8]:
                    results[query.identifier] = client.search(query)
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(shard,)) for shard in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for query in workload.queries:
            assert results[query.identifier] == baseline.get(query.identifier)

    def test_search_batch_round_trip(self, http_service, workload, baseline):
        _service, client = http_service
        psms = client.search_batch(workload.queries[:10])
        assert psms == [
            baseline.get(query.identifier) for query in workload.queries[:10]
        ]

    def test_search_reports_cache_flag(self, http_service, workload):
        _service, client = http_service
        query = workload.queries[1]
        client.search(query)
        reply = client.search_detailed(query)
        assert reply["cached"] is True
        assert reply["elapsed_ms"] >= 0

    def test_healthz(self, http_service):
        service, client = http_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["num_references"] == service.index.num_references
        assert "LibraryIndex" in health["index"]

    def test_stats_endpoint(self, http_service):
        _service, client = http_service
        stats = client.stats()
        assert {"requests", "latency", "cache", "scheduler", "engine"} <= set(
            stats
        )

    def test_reload_under_load(self, http_service, workload, baseline):
        _service, client = http_service
        results = {}
        errors = []

        def worker(shard):
            try:
                for query in workload.queries[shard::4]:
                    results[query.identifier] = client.search(query)
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(shard,)) for shard in range(4)
        ]
        for thread in threads:
            thread.start()
        reply = client.reload()
        for thread in threads:
            thread.join()
        assert not errors
        assert reply["status"] == "ok"
        for query in workload.queries:
            assert results[query.identifier] == baseline.get(query.identifier)

    def test_bad_json_is_400(self, http_service):
        import urllib.error
        import urllib.request

        _service, client = http_service
        request = urllib.request.Request(
            client.base_url + "/search",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_spectrum_is_400(self, http_service, workload):
        _service, client = http_service
        bad = Spectrum(
            identifier="ok",
            precursor_mz=500.0,
            precursor_charge=2,
            mz=np.array([100.0]),
            intensity=np.array([1.0]),
        )
        # Valid spectrum passes; now mutilate the payload by hand.
        payload = spectrum_to_payload(bad)
        del payload["precursor_mz"]
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/search", {"spectrum": payload})
        assert excinfo.value.status == 400

    def test_reload_with_non_string_index_is_400(self, http_service):
        _service, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/reload", {"index": 5})
        assert excinfo.value.status == 400

    def test_reload_with_non_dict_body_is_400(self, http_service):
        # A wrong-shaped body must not silently reload the old path.
        _service, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/reload", ["/some/index.npz"])
        assert excinfo.value.status == 400

    def test_bad_content_length_is_400(self, http_service):
        import http.client

        _service, client = http_service
        host, port = client.base_url.replace("http://", "").rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.putrequest("POST", "/search")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_oversized_body_is_413(self, http_service, workload):
        from repro.service.server import SearchRequestHandler

        _service, client = http_service
        original = SearchRequestHandler.max_body_bytes
        SearchRequestHandler.max_body_bytes = 10
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.search(workload.queries[0])
            assert excinfo.value.status == 413
        finally:
            SearchRequestHandler.max_body_bytes = original

    def test_unknown_path_is_404(self, http_service):
        _service, client = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_shutdown_closes_active_keepalive_connections(self, index_path):
        # An actively-polling persistent connection must not block
        # server_close() from joining its (non-daemon) handler thread.
        import http.client

        service = SearchService(index_path, ServiceConfig(max_wait_ms=1.0))
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            conn.getresponse().read()  # connection is now persistent
            stopper = threading.Thread(target=server.shutdown)
            stopper.start()
            # Keep polling on the same connection; the draining server
            # must answer then close it (or refuse the reconnect).
            deadline = time.time() + 10
            closed = False
            while time.time() < deadline and not closed:
                try:
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    response.read()
                    closed = response.getheader("Connection") == "close"
                except (http.client.HTTPException, OSError):
                    closed = True
                time.sleep(0.02)
            assert closed
            stopper.join(timeout=10)
            assert not stopper.is_alive()
            start = time.time()
            server.server_close()  # joins handler threads
            assert time.time() - start < 5
            thread.join(timeout=5)
        finally:
            conn.close()
            service.close()

    def test_unreachable_server_raises_service_error(self):
        client = SearchClient("http://127.0.0.1:9", timeout=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()


# ----------------------------------------------------------------------
# client connection reuse + stale-socket retry (satellite)
# ----------------------------------------------------------------------


class TestClientConnectionReuse:
    def test_hundred_calls_reuse_one_connection(self, index_path):
        # The regression this pins: the old client opened a fresh TCP
        # connection per request, so a 100-call loop burned 100
        # sockets.  The pooled client must use exactly one.
        from repro.service.server import SearchRequestHandler

        connections = []
        original_setup = SearchRequestHandler.setup

        def counting_setup(handler):
            connections.append(handler.client_address)
            original_setup(handler)

        service = SearchService(index_path, ServiceConfig(max_wait_ms=1.0))
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        SearchRequestHandler.setup = counting_setup
        try:
            client = SearchClient(f"http://{host}:{port}")
            for _ in range(100):
                assert client.healthz()["status"] == "ok"
            assert len(connections) <= 1
        finally:
            SearchRequestHandler.setup = original_setup
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()

    def test_stale_pooled_socket_is_retried_transparently(self):
        # A worker restart (or idle timeout) closes pooled sockets
        # without warning; the client must absorb exactly one such
        # failure per call by retrying on a fresh connection.
        import json as json_module
        import socketserver

        state = {"connections": 0, "requests": 0}
        lock = threading.Lock()

        class OneShotHandler(socketserver.StreamRequestHandler):
            def handle(self):
                with lock:
                    state["connections"] += 1
                length = 0
                while True:
                    line = self.rfile.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                if length:
                    self.rfile.read(length)
                with lock:
                    state["requests"] += 1
                body = json_module.dumps({"status": "ok"}).encode()
                self.wfile.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                # Returning closes the socket with no Connection: close
                # header -- the client's next reuse hits a dead socket.

        class OneShotServer(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        server = OneShotServer(("127.0.0.1", 0), OneShotHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            client = SearchClient(f"http://{host}:{port}")
            for _ in range(5):
                assert client.healthz()["status"] == "ok"
            # Five successes over five connections: every reuse failed
            # stale and was transparently retried exactly once.
            assert state["requests"] == 5
            assert state["connections"] == 5
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_healthz_reports_draining_during_shutdown(self, index_path):
        # Load balancers poll /healthz to take a worker out of
        # rotation; during drain it must answer 503 with the marker
        # instead of lying "ok" until the socket dies.
        import http.client
        import json as json_module

        service = SearchService(index_path, ServiceConfig(max_wait_ms=1.0))
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            first = conn.getresponse()
            payload = json_module.loads(first.read())
            assert first.status == 200
            assert payload["draining"] is False
            server.shutdown()  # sets draining before stopping the loop
            # The keep-alive handler thread still serves this socket.
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            payload = json_module.loads(second.read())
            assert second.status == 503
            assert payload == {"status": "draining", "draining": True}
        finally:
            conn.close()
            server.server_close()
            thread.join(timeout=10)
            service.close()


# ----------------------------------------------------------------------
# graceful sharded close (satellite)
# ----------------------------------------------------------------------


class TestGracefulShardedClose:
    def test_close_joins_pool_gracefully(self, index, workload, baseline):
        from repro.index import ShardedSearcher

        searcher = ShardedSearcher(index, num_shards=2, num_workers=2)
        result = searcher.search(workload.queries)
        assert {psm.query_id: psm for psm in result.psms} == baseline
        searcher.close()
        assert searcher._executor is None
        assert searcher._arena is None
        searcher.close()  # idempotent

    def test_searcher_usable_after_close_reopens_pool(
        self, index, workload, baseline
    ):
        from repro.index import ShardedSearcher

        with ShardedSearcher(index, num_shards=2, num_workers=2) as searcher:
            searcher.search(workload.queries)
            searcher.close()
            result = searcher.search(workload.queries)
        assert {psm.query_id: psm for psm in result.psms} == baseline
