"""Concurrency and fault-injection tests for the service layer.

The scenarios a production deployment actually hits:

* a request storm over two routes while one of them is hot-swapped by
  ``/reload`` — no dropped responses, no cross-routed responses, and
  the ``/metrics`` counters reconcile with client-observed tallies;
* the scheduler flush race under a tiny ``max_wait_ms`` (the deadline
  expires while submitters are still piling on);
* SIGTERM-style ``close()`` during an in-flight batch — every pending
  future resolves (result or error) instead of hanging, including the
  wedged-engine case where the drain can never finish.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.hdc.spaces import HDSpaceConfig
from repro.index import LibraryIndex, ShardedSearcher
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.oms.search import HDOmsSearcher
from repro.service import (
    IndexRegistry,
    MicroBatchScheduler,
    SearchClient,
    SearchService,
    ServiceConfig,
    start_server,
)

from test_service_metrics import parse_prometheus, sample_value


@pytest.fixture(scope="module")
def workload_a(binning):
    return build_workload(
        WorkloadConfig(
            name="fault-a", num_references=120, num_queries=20, seed=7
        )
    )


@pytest.fixture(scope="module")
def workload_b(binning):
    return build_workload(
        WorkloadConfig(
            name="fault-b", num_references=130, num_queries=20, seed=29
        )
    )


def _save_index(workload, binning, tmp_path_factory, source):
    index = LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        source=source,
    )
    return index, index.save(tmp_path_factory.mktemp(source) / "library.npz")


@pytest.fixture(scope="module")
def index_a(workload_a, binning, tmp_path_factory):
    return _save_index(workload_a, binning, tmp_path_factory, "fault-a")


@pytest.fixture(scope="module")
def index_b(workload_b, binning, tmp_path_factory):
    return _save_index(workload_b, binning, tmp_path_factory, "fault-b")


@pytest.fixture(scope="module")
def baselines(index_a, index_b, workload_a):
    """Per-route truth for the same query set (queries of workload A)."""
    by_route = {}
    for route, (index, _path) in (("alpha", index_a), ("beta", index_b)):
        result = HDOmsSearcher.from_index(index).search(workload_a.queries)
        by_route[route] = {psm.query_id: psm for psm in result.psms}
    return by_route


# ----------------------------------------------------------------------
# storm: two routes, concurrent clients, hot reload, metrics reconcile
# ----------------------------------------------------------------------


class TestRoutedStorm:
    NUM_THREADS = 6
    ROUNDS = 2

    def test_storm_with_hot_reload_reconciles(
        self, index_a, index_b, workload_a, baselines
    ):
        _ia, path_a = index_a
        _ib, path_b = index_b
        registry = IndexRegistry(
            {"alpha": path_a, "beta": path_b},
            default_route="alpha",
            config=ServiceConfig(max_batch=8, max_wait_ms=5.0),
        )
        server = start_server(registry)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client_url = f"http://{host}:{port}"

        tallies = {"alpha": 0, "beta": 0}
        tally_lock = threading.Lock()
        responses = []  # (route, query_id, psm)
        errors = []
        storm_done = threading.Event()

        def storm(worker):
            client = SearchClient(client_url)
            try:
                for round_no in range(self.ROUNDS):
                    for position, query in enumerate(workload_a.queries):
                        route = (
                            "alpha"
                            if (worker + position + round_no) % 2 == 0
                            else "beta"
                        )
                        psm = client.search(query, route=route)
                        with tally_lock:
                            tallies[route] += 1
                            responses.append(
                                (route, query.identifier, psm)
                            )
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        def reloader():
            client = SearchClient(client_url)
            try:
                while not storm_done.wait(0.05):
                    client.reload(route="alpha")
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        workers = [
            threading.Thread(target=storm, args=(worker,))
            for worker in range(self.NUM_THREADS)
        ]
        swapper = threading.Thread(target=reloader)
        for worker in workers:
            worker.start()
        swapper.start()
        for worker in workers:
            worker.join(timeout=120)
        storm_done.set()
        swapper.join(timeout=30)
        try:
            assert not errors
            assert not any(worker.is_alive() for worker in workers)
            expected_total = (
                self.NUM_THREADS * self.ROUNDS * len(workload_a.queries)
            )
            # No dropped responses...
            assert len(responses) == expected_total
            assert tallies["alpha"] + tallies["beta"] == expected_total
            # ...and no cross-routed ones: every PSM matches the truth
            # of the route that was asked for, reload storm or not.
            for route, query_id, psm in responses:
                assert psm == baselines[route].get(query_id), (
                    f"route {route} answered {query_id} wrongly"
                )
            # /metrics counters reconcile with client-observed tallies.
            samples, _types = parse_prometheus(
                SearchClient(client_url).metrics()
            )
            requests = "hdoms_service_requests_total"
            lookups = "hdoms_service_cache_lookups_total"
            latency = "hdoms_service_request_latency_seconds_count"
            for route in ("alpha", "beta"):
                observed = sample_value(
                    samples, requests, route=route, endpoint="search"
                )
                assert observed == tallies[route]
                hits = sample_value(
                    samples, lookups, route=route, outcome="hit"
                )
                misses = sample_value(
                    samples, lookups, route=route, outcome="miss"
                )
                # One cache lookup per request, exactly.
                assert hits + misses == tallies[route]
                assert sample_value(samples, latency, route=route) == (
                    tallies[route]
                )
            # The reloader did exercise the swap path under load.
            reloads = sample_value(
                samples, "hdoms_service_reloads_total", route="alpha"
            )
            assert reloads >= 1
            assert registry.get("alpha")._generation == int(reloads)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            registry.close()


# ----------------------------------------------------------------------
# scheduler flush race under a tiny max_wait_ms
# ----------------------------------------------------------------------


class TestFlushRace:
    def test_tiny_max_wait_under_contention_loses_nothing(self):
        processed = []
        lock = threading.Lock()

        def runner(items):
            with lock:
                processed.extend(items)
            return [item * 2 for item in items]

        scheduler = MicroBatchScheduler(runner, max_batch=4, max_wait_ms=0.2)
        results = {}
        errors = []

        def submitter(base):
            try:
                for offset in range(50):
                    value = base * 1000 + offset
                    results[value] = scheduler.submit(value).result(
                        timeout=30
                    )
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=submitter, args=(base,))
            for base in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        scheduler.close(drain=True)
        assert not errors
        assert len(results) == 400
        assert all(value * 2 == out for value, out in results.items())
        # Stats reconcile: every submission was batched exactly once.
        assert sorted(processed) == sorted(results)
        snapshot = scheduler.stats.snapshot()
        assert snapshot["requests"] == 400
        assert snapshot["batches"] >= 100  # max_batch=4 caps flush size
        assert snapshot["max_batch_size"] <= 4
        assert (
            snapshot["full_flushes"]
            + snapshot["timeout_flushes"]
            + snapshot["drain_flushes"]
            == snapshot["batches"]
        )


# ----------------------------------------------------------------------
# shutdown ordering: close() during an in-flight batch must not hang
# ----------------------------------------------------------------------


class TestShutdownOrdering:
    def test_close_during_inflight_batch_resolves_all(self):
        def slow_echo(items):
            time.sleep(0.15)
            return list(items)

        scheduler = MicroBatchScheduler(
            slow_echo, max_batch=2, max_wait_ms=60_000
        )
        futures = [scheduler.submit(value) for value in range(6)]
        time.sleep(0.05)  # first batch is now in flight
        scheduler.close(drain=True)
        assert [future.result(timeout=0) for future in futures] == list(
            range(6)
        )

    def test_wedged_runner_close_fails_pending_instead_of_hanging(self):
        entered = threading.Event()
        release = threading.Event()

        def wedged(items):
            entered.set()
            release.wait(30)
            return list(items)

        scheduler = MicroBatchScheduler(wedged, max_batch=2, max_wait_ms=0)
        futures = [scheduler.submit(value) for value in range(5)]
        assert entered.wait(5)
        started = time.monotonic()
        scheduler.close(drain=True, timeout=0.5)
        elapsed = time.monotonic() - started
        assert elapsed < 5, "close() hung on the wedged runner"
        for future in futures:
            with pytest.raises(RuntimeError, match="in flight"):
                future.result(timeout=1)
        # Un-wedge; the late completion must be harmless (the guarded
        # future delivery swallows the already-failed futures) and the
        # flusher must exit cleanly.
        release.set()
        scheduler._thread.join(timeout=5)
        assert not scheduler._thread.is_alive()

    def test_concurrent_close_callers_both_wait_for_drain(self):
        def slow_echo(items):
            time.sleep(0.1)
            return list(items)

        scheduler = MicroBatchScheduler(
            slow_echo, max_batch=2, max_wait_ms=60_000
        )
        futures = [scheduler.submit(value) for value in range(8)]
        drained_at_return = []

        def closer():
            scheduler.close(drain=True)
            drained_at_return.append(
                all(future.done() for future in futures)
            )

        closers = [threading.Thread(target=closer) for _ in range(2)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=30)
        # Both callers — not just the first — returned only after every
        # queued batch drained; a caller tearing down the engine next
        # would otherwise race the still-running flusher.
        assert drained_at_return == [True, True]
        assert [future.result(timeout=0) for future in futures] == list(
            range(8)
        )

    def test_service_close_with_wedged_engine_fails_pending(
        self, index_a, workload_a
    ):
        _index, path = index_a
        service = SearchService(
            path, ServiceConfig(max_batch=4, max_wait_ms=5.0)
        )
        entered = threading.Event()
        release = threading.Event()
        real_search = service._engine.search

        def wedged_search(batch):
            entered.set()
            release.wait(30)
            return real_search(batch)

        service._engine.search = wedged_search
        try:
            future = service.scheduler.submit(workload_a.queries[0])
            assert entered.wait(5)
            started = time.monotonic()
            service.close(timeout=0.5)
            assert time.monotonic() - started < 5
            with pytest.raises(RuntimeError, match="in flight"):
                future.result(timeout=1)
        finally:
            release.set()
            service.scheduler._thread.join(timeout=5)

    def test_reload_times_out_on_wedged_engine(
        self, index_a, workload_a, monkeypatch
    ):
        # A wedged batch holds the engine lock forever; reload must
        # give up with an error instead of parking its handler thread
        # (which would hang server_close at shutdown).
        from repro.service import server as server_module

        monkeypatch.setattr(server_module, "ENGINE_SWAP_TIMEOUT", 0.2)
        _index, path = index_a
        service = SearchService(
            path, ServiceConfig(max_batch=4, max_wait_ms=5.0)
        )
        entered = threading.Event()
        release = threading.Event()
        real_search = service._engine.search

        def wedged_search(batch):
            entered.set()
            release.wait(30)
            return real_search(batch)

        service._engine.search = wedged_search
        try:
            future = service.scheduler.submit(workload_a.queries[0])
            assert entered.wait(5)
            with pytest.raises(RuntimeError, match="timed out"):
                service.reload()
        finally:
            release.set()
            future.result(timeout=10)  # the wedged batch completes
            service.close(timeout=10)

    def test_sigterm_style_service_close_under_load(
        self, index_a, workload_a, baselines
    ):
        """SIGTERM mid-traffic: every request resolves, nothing hangs.

        Clients either get the bit-identical PSM (their batch drained)
        or a clean RuntimeError (they raced the closed scheduler) —
        never a hung ``result()``.
        """
        _index, path = index_a
        service = SearchService(
            path,
            ServiceConfig(
                max_batch=4,
                max_wait_ms=20.0,
                engine="sharded",
                num_shards=2,
                num_workers=2,
            ),
        )
        results = {}
        errors = []

        def client(shard):
            for query in workload_a.queries[shard::4]:
                try:
                    results[query.identifier] = service.search_one(query)
                except RuntimeError as error:
                    errors.append(error)

        threads = [
            threading.Thread(target=client, args=(shard,))
            for shard in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.03)  # let batches get in flight
        service.close(timeout=30)
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), (
            "a client hung on close()"
        )
        # Whatever resolved is correct; whatever errored said so loudly.
        for query_id, psm in results.items():
            assert psm == baselines["alpha"].get(query_id)
        assert len(results) + len(errors) == len(workload_a.queries)
        for error in errors:
            assert "closed" in str(error) or "in flight" in str(error)

    def test_repro_serve_sigterm_drains_and_exits(
        self, index_a, index_b, workload_a, baselines
    ):
        """The real thing: ``repro serve`` (two routes) killed by SIGTERM.

        The process must answer routed traffic, then exit cleanly on
        SIGTERM with the drain message — not hang, not die mid-write.
        """
        _ia, path_a = index_a
        _ib, path_b = index_b
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import main; import sys; sys.exit(main())",
                "serve",
                "--index",
                f"alpha={path_a}",
                "--index",
                f"beta={path_b}",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                assert line, "server exited before listening"
                if "listening on http://" in line:
                    port = int(
                        line.split("listening on http://", 1)[1]
                        .split()[0]
                        .rsplit(":", 1)[1]
                    )
                    break
            assert port, "never saw the listening line"
            client = SearchClient(f"http://127.0.0.1:{port}", timeout=30)
            query = workload_a.queries[0]
            assert client.search(query) == baselines["alpha"].get(
                query.identifier
            )
            assert client.search(query, route="beta") == baselines[
                "beta"
            ].get(query.identifier)
            assert "hdoms_service_requests_total" in client.metrics()
            process.send_signal(signal.SIGTERM)
            remaining = process.communicate(timeout=30)[0]
            assert process.returncode == 0
            assert "service drained and closed" in remaining
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate(timeout=10)

    def test_sharded_close_during_inflight_search(self, index_a, workload_a):
        index, _path = index_a
        searcher = ShardedSearcher(index, num_shards=2, num_workers=2)
        outcome = {}

        def worker():
            try:
                outcome["result"] = searcher.search(workload_a.queries)
            except Exception as error:  # noqa: BLE001 - recorded
                outcome["error"] = error

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.01)  # race close() against the in-flight fan-out
        searcher.close()
        thread.join(timeout=60)
        assert not thread.is_alive(), "search hung across close()"
        assert outcome, "worker finished without recording an outcome"
        searcher.close()  # clean up any pool the racing search rebuilt


# ----------------------------------------------------------------------
# coordinator: SIGKILL a worker mid batch-storm (tentpole fault suite)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def coordinated_fleet(workload_a, binning, tmp_path_factory):
    """2 partitions x 2 replica subprocess workers + coordinator front.

    Replicas matter: ``assign_replicas`` deals URL ``i`` to partition
    ``i % 2``, so spawning workers over paths ``[p0, p1, p0, p1]``
    yields two independent processes per partition — one can be
    SIGKILLed while its sibling keeps the partition answerable.
    """
    from repro.coord import (
        Coordinator,
        CoordinatorService,
        LocalWorkerFleet,
        PartitionPlan,
        assign_replicas,
        materialize_partitions,
        start_coordinator_server,
    )
    from repro.store import SegmentedSearcher, build_store

    root = tmp_path_factory.mktemp("coord-faults")
    store = build_store(
        workload_a.references,
        root / "store",
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        segment_rows=13,
    )
    with SegmentedSearcher(store) as searcher:
        result = searcher.search(workload_a.queries)
    baseline = {psm.query_id: psm for psm in result.psms}

    plan = PartitionPlan.build(store, 2, "rows")
    paths = materialize_partitions(store, plan)
    fleet = LocalWorkerFleet(
        [paths[0], paths[1], paths[0], paths[1]], workers=0
    )
    coordinator = None
    front = None
    front_thread = None
    try:
        urls = fleet.wait_ready()
        coordinator = Coordinator(
            plan.partitions,
            assign_replicas(urls, len(plan)),
            probe_interval=0.3,
            worker_timeout=30.0,
        )
        coordinator.wait_ready(timeout=60)
        front = start_coordinator_server(
            CoordinatorService(coordinator, max_inflight=32)
        )
        front_thread = threading.Thread(
            target=front.serve_forever, daemon=True
        )
        front_thread.start()
        host, port = front.server_address[:2]
        yield f"http://{host}:{port}", fleet, coordinator, baseline
    finally:
        if front is not None:
            front.shutdown()
            front.server_close()
        if front_thread is not None:
            front_thread.join(timeout=10)
        if coordinator is not None:
            coordinator.close()
        fleet.close()
        store.close()


class TestKillWorkerMidStorm:
    NUM_THREADS = 6
    ROUNDS = 4

    def test_sigkill_mid_storm_never_hangs_or_corrupts(
        self, coordinated_fleet, workload_a
    ):
        from repro.service import ServiceError

        url, fleet, coordinator, baseline = coordinated_fleet
        queries = workload_a.queries
        expected = [baseline.get(q.identifier) for q in queries]
        outcomes = []  # (kind, detail) per request, appended under lock
        lock = threading.Lock()
        barrier = threading.Barrier(self.NUM_THREADS + 1)

        def storm(slot):
            client = SearchClient(url, timeout=120)
            barrier.wait()
            for _ in range(self.ROUNDS):
                try:
                    psms = client.search_batch(queries)
                except ServiceError as error:
                    # A clean, labelled failure is acceptable while the
                    # fleet is degraded -- silent corruption is not.
                    with lock:
                        outcomes.append(("error", error.status))
                    continue
                ok = psms == expected
                with lock:
                    outcomes.append(("result", ok))

        threads = [
            threading.Thread(target=storm, args=(slot,))
            for slot in range(self.NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        time.sleep(0.1)  # let the storm get requests in flight
        fleet.workers[0].process.kill()  # SIGKILL a partition-0 replica
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "request hung across SIGKILL"

        assert len(outcomes) == self.NUM_THREADS * self.ROUNDS
        for kind, detail in outcomes:
            if kind == "result":
                assert detail, "batch diverged from single-node baseline"
            else:
                assert detail == 503, f"unclean failure status {detail}"
        # The surviving replica should have absorbed nearly everything.
        correct = sum(1 for kind, ok in outcomes if kind == "result" and ok)
        assert correct >= self.NUM_THREADS * self.ROUNDS - self.NUM_THREADS

        # The fleet self-heals: probes mark the dead replica unhealthy,
        # the sibling keeps partition 0 answerable, /healthz recovers.
        client = SearchClient(url, timeout=120)
        deadline = time.time() + 30
        health = None
        while time.time() < deadline:
            try:
                health = client.healthz()
                if health["status"] == "ok":
                    break
            except ServiceError:
                pass
            time.sleep(0.2)
        assert health is not None and health["status"] == "ok"

        # Post-storm, answers are exact again and the wire metrics
        # recorded the carnage.
        assert client.search_batch(queries) == expected
        samples, _types = parse_prometheus(client.metrics())
        errors = sum(
            value
            for (name, _labels), value in samples.items()
            if name == "hdoms_coord_worker_errors_total"
        )
        assert errors >= 1
        stats = client.stats()
        dead_url = fleet.workers[0].url
        flags = {
            worker["url"]: worker["healthy"]
            for partition in stats["partitions"]
            for worker in partition["workers"]
        }
        assert flags[dead_url] is False
        healthy_count = sum(1 for healthy in flags.values() if healthy)
        assert healthy_count == 3
