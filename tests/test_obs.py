"""Unit tests for the zero-dependency observability layer (repro.obs).

Covers the tracer (nesting, inheritance, the disabled fast path, the
ring buffer, listeners, cross-thread emits), the Chrome trace export,
the slow-query log, the structured logging setup, and the profile
summary helpers.
"""

import io
import json
import logging
import threading

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    JsonFormatter,
    NULL_SPAN,
    SlowQueryLog,
    Tracer,
    chrome_trace,
    ensure_default_logging,
    get_tracer,
    new_request_id,
    render_stage_table,
    setup_logging,
    spans_to_events,
    stage_breakdown,
    summarize_spans,
)


@pytest.fixture
def tracer():
    """A fresh, enabled, private tracer (the global one stays untouched)."""
    return Tracer(capacity=64).enable()


# ----------------------------------------------------------------------
# spans and nesting
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_sets_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert [s.name for s in tracer.records()] == ["inner", "middle", "outer"]

    def test_request_id_and_route_inherit_from_parent(self, tracer):
        with tracer.span("root", request_id="req-1", route="yeast"):
            with tracer.span("child") as child:
                with tracer.span("grandchild", route="override") as grandchild:
                    pass
        assert child.request_id == "req-1"
        assert child.route == "yeast"
        assert grandchild.request_id == "req-1"
        assert grandchild.route == "override"

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_duration_is_positive_and_tags_chain(self, tracer):
        with tracer.span("timed", batch=8).tag(extra=True) as span:
            span.tag(late=1)
        assert span.duration > 0.0
        assert span.tags == {"batch": 8, "extra": True, "late": 1}

    def test_exception_tags_error_and_propagates(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.tags["error"] == "ValueError: boom"
        assert tracer.records()[-1] is span

    def test_to_dict_shape(self, tracer):
        with tracer.span("s", request_id="r", route="rt", k=1) as span:
            pass
        data = span.to_dict()
        assert data["name"] == "s"
        assert data["request_id"] == "r"
        assert data["route"] == "rt"
        assert data["tags"] == {"k": 1}
        assert data["duration_ms"] >= 0.0
        assert data["thread"] == threading.current_thread().name


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer()
        assert tracer.span("anything", batch=4) is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN.tag(a=1) as span:
            assert span is NULL_SPAN
        assert NULL_SPAN.tags == {}
        assert NULL_SPAN.duration == 0.0

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.emit("b", duration=0.5) is None
        assert tracer.capture() is None
        assert tracer.records() == []

    def test_reenable_records_again(self, tracer):
        tracer.disable()
        with tracer.span("lost"):
            pass
        tracer.enable()
        with tracer.span("kept"):
            pass
        assert [s.name for s in tracer.records()] == ["kept"]


class TestTracerBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            Tracer().enable(capacity=-1)

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3).enable()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.records()] == ["s2", "s3", "s4"]
        assert tracer.capacity == 3

    def test_enable_with_new_capacity_clears(self, tracer):
        with tracer.span("old"):
            pass
        tracer.enable(capacity=8)
        assert tracer.records() == []
        assert tracer.capacity == 8

    def test_clear_resets_epoch(self, tracer):
        with tracer.span("s"):
            pass
        before = tracer.epoch
        tracer.clear()
        assert tracer.records() == []
        assert tracer.epoch >= before

    def test_global_tracer_is_a_shared_disabled_singleton(self):
        assert get_tracer() is get_tracer()
        assert get_tracer().capacity == DEFAULT_CAPACITY


class TestEmitAndCapture:
    def test_emit_records_external_duration(self, tracer):
        span = tracer.emit(
            "queue_wait", duration=0.25, route="r", reason="timeout"
        )
        assert span.duration == 0.25
        assert span.tags == {"reason": "timeout"}
        assert tracer.records() == [span]

    def test_emit_parents_on_captured_span_across_threads(self, tracer):
        with tracer.span("handler", request_id="req-9") as handler:
            ctx = tracer.capture()
        assert ctx is handler
        result = {}

        def flusher():
            result["span"] = tracer.emit("wait", duration=0.01, parent=ctx)

        thread = threading.Thread(target=flusher)
        thread.start()
        thread.join()
        assert result["span"].parent_id == handler.span_id
        assert result["span"].request_id == "req-9"

    def test_emit_virtual_thread_lane(self, tracer):
        span = tracer.emit("shard.score", duration=0.01, thread="shard-3")
        assert span.thread == "shard-3"

    def test_current_request_id(self, tracer):
        assert tracer.current_request_id() is None
        with tracer.span("root", request_id="req-2"):
            with tracer.span("child"):
                assert tracer.current_request_id() == "req-2"


class TestListeners:
    def test_listener_sees_finished_spans(self, tracer):
        seen = []
        tracer.add_listener(seen.append)
        with tracer.span("a"):
            pass
        assert [s.name for s in seen] == ["a"]

    def test_add_listener_is_idempotent(self, tracer):
        seen = []
        tracer.add_listener(seen.append)
        tracer.add_listener(seen.append)
        with tracer.span("a"):
            pass
        assert len(seen) == 1

    def test_listener_exceptions_are_swallowed(self, tracer):
        def bad(span):
            raise RuntimeError("listener bug")

        tracer.add_listener(bad)
        with tracer.span("survives"):
            pass
        assert tracer.records()[-1].name == "survives"

    def test_remove_listener(self, tracer):
        seen = []
        tracer.add_listener(seen.append)
        tracer.remove_listener(seen.append)
        tracer.remove_listener(seen.append)  # second remove is a no-op
        with tracer.span("a"):
            pass
        assert seen == []


class TestQueries:
    def test_spans_for_filters_by_request(self, tracer):
        with tracer.span("a", request_id="r1"):
            pass
        with tracer.span("b", request_id="r2"):
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.spans_for("r2")] == ["c", "b"]

    def test_stage_durations_sums_by_name(self, tracer):
        tracer.emit("x", duration=0.1)
        tracer.emit("x", duration=0.2)
        tracer.emit("y", duration=0.5)
        stages = tracer.stage_durations(tracer.records())
        assert stages["x"] == pytest.approx(0.3)
        assert stages["y"] == pytest.approx(0.5)

    def test_new_request_id_shape(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)
        assert all(int(i, 16) >= 0 for i in ids)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_events_have_lanes_and_microsecond_times(self, tracer):
        with tracer.span("root", request_id="req-1", route="rt", batch=2):
            pass
        tracer.emit("shard.score", duration=0.002, thread="shard-0")
        events = spans_to_events(tracer.records(), epoch=tracer.epoch)
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {
            threading.current_thread().name,
            "shard-0",
        }
        assert len(complete) == 2
        root = next(e for e in complete if e["name"] == "root")
        assert root["args"]["request_id"] == "req-1"
        assert root["args"]["route"] == "rt"
        assert root["args"]["batch"] == 2
        assert root["dur"] == pytest.approx(
            1e6 * tracer.records()[0].duration, abs=0.01
        )
        # Metadata lanes must agree with the events that use them.
        lanes = {e["tid"]: e["args"]["name"] for e in meta}
        for event in complete:
            assert event["tid"] in lanes

    def test_chrome_trace_payload_is_json_ready(self, tracer):
        with tracer.span("a", request_id="r1"):
            pass
        payload = chrome_trace(tracer)
        parsed = json.loads(json.dumps(payload))
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["metadata"]["spans"] == 1
        names = [e["name"] for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert names == ["a"]

    def test_chrome_trace_request_filter(self, tracer):
        with tracer.span("mine", request_id="r1"):
            pass
        with tracer.span("other", request_id="r2"):
            pass
        payload = chrome_trace(tracer, request_id="r1")
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert names == ["mine"]

    def test_empty_tracer_exports_empty_event_list(self):
        payload = chrome_trace(Tracer())
        assert payload["traceEvents"] == []
        assert payload["metadata"]["enabled"] is False


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=100.0, capacity=8)
        assert log.observe(50.0, request_id="fast") is False
        assert log.observe(150.0, request_id="slow") is True
        snapshot = log.snapshot()
        assert snapshot["observed"] == 2
        assert snapshot["slow"] == 1
        assert [r["request_id"] for r in snapshot["records"]] == ["slow"]

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=4)
        assert log.observe(0.0) is True

    def test_snapshot_is_newest_first_and_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for i in range(4):
            log.observe(float(i), request_id=f"r{i}")
        snapshot = log.snapshot()
        assert [r["request_id"] for r in snapshot["records"]] == ["r3", "r2"]
        assert snapshot["observed"] == 4
        assert len(log) == 2

    def test_record_carries_stages_and_extras(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.observe(
            12.5,
            request_id="r1",
            route="yeast",
            endpoint="search",
            cached=False,
            stages={"encode.batch": 0.004, "score.dense": 0.006},
            spectra=3,
        )
        record = log.snapshot()["records"][0]
        assert record["duration_ms"] == 12.5
        assert record["cached"] is False
        assert record["spectra"] == 3
        assert record["stages_ms"] == {
            "encode.batch": 4.0,
            "score.dense": 6.0,
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError, match="capacity"):
            SlowQueryLog(capacity=0)

    def test_clear_keeps_counters(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.observe(1.0)
        log.clear()
        snapshot = log.snapshot()
        assert snapshot["records"] == []
        assert snapshot["observed"] == 1

    def test_stage_breakdown_sums_spans(self, tracer):
        tracer.emit("encode.batch", duration=0.1)
        tracer.emit("encode.batch", duration=0.2)
        tracer.emit("score.dense", duration=0.4)
        stages = stage_breakdown(tracer.records())
        assert stages["encode.batch"] == pytest.approx(0.3)
        assert stages["score.dense"] == pytest.approx(0.4)


# ----------------------------------------------------------------------
# logging setup
# ----------------------------------------------------------------------


@pytest.fixture
def clean_repro_logger():
    """Snapshot and restore the package logger around handler tests."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield logger
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


class TestLoggingSetup:
    def test_setup_replaces_instead_of_stacking(self, clean_repro_logger):
        setup_logging(level="info", fmt="text")
        setup_logging(level="debug", fmt="json")
        managed = [
            h
            for h in clean_repro_logger.handlers
            if getattr(h, "_repro_managed", False)
        ]
        assert len(managed) == 1
        assert clean_repro_logger.level == logging.DEBUG
        assert clean_repro_logger.propagate is False

    def test_setup_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError, match="log level"):
            setup_logging(level="loud")
        with pytest.raises(ValueError, match="log format"):
            setup_logging(fmt="xml")

    def test_json_lines_carry_extras_and_exceptions(self, clean_repro_logger):
        stream = io.StringIO()
        logger = setup_logging(level="info", fmt="json", stream=stream)
        logger.info("hello %s", "world", extra={"request_id": "r1"})
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            logger.exception("failed")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0]["message"] == "hello world"
        assert lines[0]["level"] == "INFO"
        assert lines[0]["logger"] == "repro"
        assert lines[0]["request_id"] == "r1"
        assert "RuntimeError: kaput" in lines[1]["exc"]

    def test_json_formatter_tolerates_unserialisable_extras(self):
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "msg", (), None
        )
        record.payload = object()
        parsed = json.loads(JsonFormatter().format(record))
        assert parsed["message"] == "msg"
        assert parsed["payload"].startswith("<object object")

    def test_ensure_default_is_a_noop_when_configured(self, clean_repro_logger):
        # pytest installs root handlers, so the soft path must not touch
        # the package logger.
        assert logging.getLogger().handlers
        before = list(clean_repro_logger.handlers)
        ensure_default_logging()
        assert clean_repro_logger.handlers == before


# ----------------------------------------------------------------------
# profile summaries
# ----------------------------------------------------------------------


class TestProfileSummary:
    def test_summarize_orders_by_total_and_aggregates(self, tracer):
        tracer.emit("encode", duration=0.010)
        tracer.emit("encode", duration=0.030)
        tracer.emit("score", duration=0.100)
        rows = summarize_spans(tracer.records())
        assert [row["name"] for row in rows] == ["score", "encode"]
        encode = rows[1]
        assert encode["count"] == 2
        assert encode["total_ms"] == pytest.approx(40.0)
        assert encode["mean_ms"] == pytest.approx(20.0)
        assert encode["max_ms"] == pytest.approx(30.0)

    def test_render_stage_table(self, tracer):
        tracer.emit("encode.batch", duration=0.010)
        table = render_stage_table(summarize_spans(tracer.records()))
        lines = table.splitlines()
        assert lines[0].split() == ["stage", "count", "total_ms", "mean_ms", "max_ms"]
        assert "encode.batch" in lines[2]

    def test_render_empty(self):
        assert render_stage_table([]) == "(no spans recorded)"
