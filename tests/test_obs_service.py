"""Integration tests: span tracing wired through the search pipeline.

The observability checklist of the obs PR: span nesting under the
micro-batch scheduler (many requests sharing one engine span), sharded
searcher span merging across the pool boundary, the request-ID HTTP
round trip (header echo, ``/debug/trace`` filtering, ``/debug/slow``,
per-stage histograms on ``/metrics``), and the scheduler queue depth
on ``/stats``.
"""

import json
import threading
import urllib.request

import pytest

from repro.hdc.spaces import HDSpaceConfig
from repro.index import LibraryIndex
from repro.index.sharded import ShardedSearcher
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.obs import get_tracer
from repro.service import (
    SearchClient,
    SearchService,
    ServiceConfig,
    start_server,
)


@pytest.fixture(scope="module")
def workload(binning):
    return build_workload(
        WorkloadConfig(
            name="obs-test", num_references=100, num_queries=24, seed=11
        )
    )


@pytest.fixture(scope="module")
def index(workload, binning):
    return LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        source="obs-test",
    )


@pytest.fixture(scope="module")
def index_path(index, tmp_path_factory):
    return index.save(tmp_path_factory.mktemp("obs") / "library.npz")


@pytest.fixture
def traced():
    """Enable the process-global tracer for one test, then restore it."""
    tracer = get_tracer()
    tracer.enable()
    tracer.clear()
    yield tracer
    tracer.disable()
    tracer.clear()


def by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


# ----------------------------------------------------------------------
# span nesting through the micro-batch scheduler
# ----------------------------------------------------------------------


class TestSchedulerSpans:
    def test_single_request_trace_covers_the_pipeline(
        self, index_path, workload, traced
    ):
        with SearchService(
            index_path, ServiceConfig(max_batch=4, max_wait_ms=5.0)
        ) as service:
            service.search_one_detailed(
                workload.queries[0], request_id="req-single"
            )
        spans = by_name(traced.spans_for("req-single"))
        for stage in (
            "service.search",
            "service.cache_lookup",
            "service.await_batch",
            "scheduler.queue_wait",
            "scheduler.batch",
            "engine.search",
            "encode.batch",
            "score.dense",
        ):
            assert stage in spans, f"missing {stage} in {sorted(spans)}"
        root = spans["service.search"][0]
        assert root.parent_id is None
        # Direct children of the ingress span.
        assert spans["service.cache_lookup"][0].parent_id == root.span_id
        awaited = spans["service.await_batch"][0]
        assert awaited.parent_id == root.span_id
        # The queue wait is emitted on the flusher thread but parented
        # on the span that submitted the request (the await_batch span).
        assert spans["scheduler.queue_wait"][0].parent_id == awaited.span_id
        # Engine-side spans nest under the flusher's batch span, which
        # inherited the request id (single-request batch).
        batch = spans["scheduler.batch"][0]
        assert batch.tags["size"] == 1
        assert batch.tags["requests"] == ["req-single"]
        engine = spans["engine.search"][0]
        assert engine.parent_id == batch.span_id
        assert spans["encode.batch"][0].parent_id == engine.span_id
        assert spans["score.dense"][0].parent_id == engine.span_id
        # The root span covers its children's durations.
        assert root.duration >= spans["service.await_batch"][0].duration
        assert batch.duration >= engine.duration >= spans["encode.batch"][0].duration

    def test_coalesced_requests_share_one_engine_span(
        self, index_path, workload, traced
    ):
        num = 6
        with SearchService(
            index_path, ServiceConfig(max_batch=num, max_wait_ms=500.0)
        ) as service:
            barrier = threading.Barrier(num)

            def worker(i):
                barrier.wait()
                service.search_one_detailed(
                    workload.queries[i], request_id=f"req-{i}"
                )

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(num)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = by_name(traced.records())
        # One full flush served every request: one batch, one engine pass.
        batches = [s for s in spans["scheduler.batch"] if s.tags["size"] == num]
        assert len(batches) == 1
        assert sorted(batches[0].tags["requests"]) == [
            f"req-{i}" for i in range(num)
        ]
        # A shared batch belongs to no single request...
        assert batches[0].request_id is None
        engines = [
            s
            for s in spans["engine.search"]
            if s.parent_id == batches[0].span_id
        ]
        assert len(engines) == 1
        # ...but every request still owns its ingress + queue-wait spans.
        for i in range(num):
            mine = by_name(traced.spans_for(f"req-{i}"))
            assert len(mine["service.search"]) == 1
            root = mine["service.search"][0]
            assert root.parent_id is None
            assert (
                mine["scheduler.queue_wait"][0].parent_id
                == mine["service.await_batch"][0].span_id
            )

    def test_cache_hit_skips_the_scheduler(self, index_path, workload, traced):
        with SearchService(
            index_path, ServiceConfig(max_batch=2, max_wait_ms=2.0)
        ) as service:
            service.search_one_detailed(workload.queries[0], request_id="miss")
            _psm, cached = service.search_one_detailed(
                workload.queries[0], request_id="hit"
            )
        assert cached is True
        spans = by_name(traced.spans_for("hit"))
        assert spans["service.search"][0].tags["cached"] is True
        assert "service.await_batch" not in spans
        assert "scheduler.queue_wait" not in spans

    def test_disabled_tracer_records_nothing_through_the_service(
        self, index_path, workload
    ):
        tracer = get_tracer()
        assert not tracer.enabled
        tracer.clear()
        with SearchService(
            index_path, ServiceConfig(max_batch=2, max_wait_ms=2.0)
        ) as service:
            psm, cached = service.search_one_detailed(workload.queries[1])
        assert cached is False
        assert tracer.records() == []


# ----------------------------------------------------------------------
# sharded searcher: pool-worker timings merge into the parent trace
# ----------------------------------------------------------------------


class TestShardedSpans:
    def test_shard_scores_merge_under_fanout(self, index, workload, traced):
        num_shards = 3
        with ShardedSearcher(
            index, num_shards=num_shards, num_workers=0
        ) as searcher:
            searcher.search(workload.queries[:4])
        spans = by_name(traced.records())
        fanouts = spans["shard.fanout"]
        assert fanouts, "no shard.fanout spans recorded"
        scores = spans["shard.score"]
        # Every fanout (one per scoring pass) merged one timing span per
        # shard, on a virtual per-shard lane.
        assert len(scores) == num_shards * len(fanouts)
        for fanout in fanouts:
            children = [s for s in scores if s.parent_id == fanout.span_id]
            assert len(children) == num_shards
            assert sorted(s.thread for s in children) == [
                f"shard-{i}" for i in range(num_shards)
            ]
            assert sorted(s.tags["shard"] for s in children) == list(
                range(num_shards)
            )
            for child in children:
                assert child.duration > 0.0


# ----------------------------------------------------------------------
# HTTP round trip
# ----------------------------------------------------------------------


@pytest.fixture
def server(index_path, traced):
    service = SearchService(
        index_path, ServiceConfig(max_batch=4, max_wait_ms=5.0)
    )
    # slow_ms=0 turns /debug/slow into a rolling log of every request.
    srv = start_server(service, slow_ms=0.0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield SearchClient(f"http://{host}:{port}"), srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
        service.close()


class TestRequestIdRoundTrip:
    def test_generated_id_is_echoed_in_body_and_header(self, server, workload):
        client, _srv = server
        body = json.dumps(
            {
                "spectrum": {
                    "identifier": workload.queries[0].identifier,
                    "precursor_mz": workload.queries[0].precursor_mz,
                    "precursor_charge": workload.queries[0].precursor_charge,
                    "mz": workload.queries[0].mz.tolist(),
                    "intensity": workload.queries[0].intensity.tolist(),
                }
            }
        ).encode()
        request = urllib.request.Request(
            client.base_url + "/search",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            reply = json.loads(response.read())
            header = response.headers["X-Request-Id"]
        assert reply["request_id"] == header
        assert len(header) == 16
        int(header, 16)  # generated ids are hex

    def test_pinned_id_round_trips_to_debug_trace(self, server, workload):
        client, _srv = server
        reply = client.search_detailed(
            workload.queries[1], request_id="my-id-123"
        )
        assert reply["request_id"] == "my-id-123"
        trace = client.debug_trace(request_id="my-id-123")
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {
            "service.search",
            "service.cache_lookup",
            "service.await_batch",
            "scheduler.queue_wait",
            "scheduler.batch",
            "engine.search",
            "encode.batch",
            "score.dense",
            "service.serialize",
        } <= names
        # The filtered export only contains this request's spans.
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                assert event["args"]["request_id"] == "my-id-123"
        # Span durations must roughly account for the reported wall time:
        # the root span is the widest event of the filtered trace.
        root = next(
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "service.search"
        )
        for event in trace["traceEvents"]:
            if event["ph"] == "X" and event["name"] != "service.serialize":
                assert event["dur"] <= root["dur"] * 1.001

    def test_invalid_header_id_is_replaced(self, server, workload):
        client, _srv = server
        reply = client.search_detailed(
            workload.queries[2], request_id="not ok!!"
        )
        assert reply["request_id"] != "not ok!!"
        assert len(reply["request_id"]) == 16

    def test_batch_requests_share_one_request_id(self, server, workload):
        client, _srv = server
        reply = client._request(
            "POST",
            "/search_batch",
            {
                "spectra": [
                    {
                        "identifier": q.identifier,
                        "precursor_mz": q.precursor_mz,
                        "precursor_charge": q.precursor_charge,
                        "mz": q.mz.tolist(),
                        "intensity": q.intensity.tolist(),
                    }
                    for q in workload.queries[3:6]
                ]
            },
        )
        rid = reply["request_id"]
        trace = client.debug_trace(request_id=rid)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "service.search_batch" in names
        assert "service.cache_lookup" in names


class TestDebugAndMetricsEndpoints:
    def test_debug_slow_records_requests_with_stages(self, server, workload):
        client, srv = server
        client.search_detailed(workload.queries[7], request_id="slow-probe")
        snapshot = client.debug_slow()
        assert snapshot["threshold_ms"] == 0.0
        assert snapshot["slow"] >= 1
        record = next(
            r
            for r in snapshot["records"]
            if r["request_id"] == "slow-probe"
        )
        assert record["endpoint"] == "search"
        assert record["cached"] is False
        assert record["duration_ms"] > 0.0
        assert "encode.batch" in record["stages_ms"]
        assert "engine.search" in record["stages_ms"]

    def test_stage_histograms_reach_metrics(self, server, workload):
        client, _srv = server
        client.search_detailed(workload.queries[8])
        text = client.metrics()
        assert "hdoms_service_stage_seconds" in text
        for stage in ("encode", "engine", "queue_wait", "serialize"):
            assert f'stage="{stage}"' in text, f"missing stage {stage}"

    def test_stats_exposes_queue_depth_and_uptime(self, server, workload):
        client, _srv = server
        client.search_detailed(workload.queries[9])
        stats = client.stats()
        assert stats["scheduler"]["queue_depth"] == 0
        assert stats["uptime_seconds"] >= 0.0
        assert stats["scheduler"]["requests"] >= 1
