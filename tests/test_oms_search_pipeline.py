"""Tests for the HD searcher and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.vectorize import BinningConfig
from repro.oms.pipeline import OmsPipeline, PipelineConfig
from repro.oms.search import (
    DenseBackend,
    HDOmsSearcher,
    HDSearchConfig,
    PackedBackend,
)


@pytest.fixture(scope="module")
def module_setup():
    from repro.ms.synthetic import WorkloadConfig, build_workload

    workload = build_workload(
        WorkloadConfig(
            name="searchtest", num_references=150, num_queries=40, seed=31
        )
    )
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=1024,
            num_bins=binning.num_bins,
            num_levels=16,
            id_precision_bits=3,
            seed=5,
        )
    )
    encoder = SpectrumEncoder(space, binning)
    return workload, encoder


class TestHDOmsSearcher:
    def test_dense_and_packed_backends_agree(self, module_setup):
        workload, encoder = module_setup
        dense = HDOmsSearcher(
            encoder, workload.references, backend=DenseBackend()
        )
        packed = HDOmsSearcher(
            encoder, workload.references, backend=PackedBackend()
        )
        result_dense = dense.search(workload.queries)
        result_packed = packed.search(workload.queries)
        assert result_dense.score_by_query() == result_packed.score_by_query()
        assert [psm.reference_id for psm in result_dense.psms] == [
            psm.reference_id for psm in result_packed.psms
        ]

    def test_unmodified_queries_match_their_reference(self, module_setup):
        workload, encoder = module_setup
        searcher = HDOmsSearcher(encoder, workload.references)
        correct = 0
        total = 0
        for query in workload.queries:
            truth = workload.truth[query.identifier]
            if truth is None or (
                query.peptide is not None and query.peptide.is_modified
            ):
                continue
            psm = searcher.search_one(query)
            total += 1
            if psm is not None and psm.peptide_key == truth:
                correct += 1
        assert total > 0
        assert correct >= 0.9 * total

    def test_modified_queries_match_within_open_window(self, module_setup):
        workload, encoder = module_setup
        searcher = HDOmsSearcher(encoder, workload.references)
        modified = [
            q
            for q in workload.queries
            if q.peptide is not None and q.peptide.is_modified
        ]
        assert modified
        hits = 0
        for query in modified:
            psm = searcher.search_one(query)
            if psm is not None and psm.peptide_key == workload.truth[query.identifier]:
                assert psm.is_modified_match
                hits += 1
        assert hits >= 0.7 * len(modified)

    def test_standard_mode_misses_modified(self, module_setup):
        workload, encoder = module_setup
        searcher = HDOmsSearcher(
            encoder,
            workload.references,
            config=HDSearchConfig(mode="standard"),
        )
        for query in workload.queries:
            if query.peptide is not None and query.peptide.is_modified:
                psm = searcher.search_one(query)
                # The modified precursor falls outside the narrow window
                # of its own reference.
                assert psm is None or psm.peptide_key != workload.truth.get(
                    query.identifier
                ) or not psm.is_modified_match

    def test_cascade_prefers_standard(self, module_setup):
        workload, encoder = module_setup
        searcher = HDOmsSearcher(
            encoder, workload.references, config=HDSearchConfig(mode="cascade")
        )
        result = searcher.search(workload.queries)
        for psm in result.psms:
            if psm.mode == "standard":
                assert abs(psm.precursor_mass_difference) <= 0.06

    def test_bit_error_injection_changes_scores(self, module_setup):
        workload, encoder = module_setup
        clean = HDOmsSearcher(encoder, workload.references)
        noisy = HDOmsSearcher(
            encoder,
            workload.references,
            config=HDSearchConfig(query_ber=0.2, reference_ber=0.2),
        )
        clean_scores = clean.search(workload.queries[:10]).score_by_query()
        noisy_scores = noisy.search(workload.queries[:10]).score_by_query()
        assert any(
            clean_scores[q] != noisy_scores[q] for q in clean_scores
        )
        # Noise attenuates similarity on average.
        assert np.mean(list(noisy_scores.values())) < np.mean(
            list(clean_scores.values())
        )

    def test_empty_reference_list_raises(self, module_setup):
        _, encoder = module_setup
        with pytest.raises(ValueError):
            HDOmsSearcher(encoder, [])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HDSearchConfig(mode="fuzzy")
        with pytest.raises(ValueError):
            HDSearchConfig(query_ber=2.0)


class TestPipeline:
    def test_end_to_end_quality(self, module_setup):
        workload, _ = module_setup
        config = PipelineConfig(
            space=HDSpaceConfig(dim=1024, num_levels=16, id_precision_bits=3, seed=5)
        )
        pipeline = OmsPipeline.from_workload(workload, config)
        result = pipeline.run_workload(workload)
        assert result.num_identifications > 0
        # On a clean synthetic workload at 1% FDR, nearly everything
        # accepted should be correct.
        assert result.evaluation["precision"] >= 0.9
        assert result.evaluation["recall"] >= 0.7

    def test_library_contains_decoys(self, module_setup):
        workload, _ = module_setup
        pipeline = OmsPipeline.from_workload(
            workload,
            PipelineConfig(space=HDSpaceConfig(dim=512, seed=5)),
        )
        decoys = [s for s in pipeline.library if s.is_decoy]
        targets = [s for s in pipeline.library if not s.is_decoy]
        assert len(targets) == len(workload.references)
        assert len(decoys) >= 0.9 * len(targets)

    def test_num_bins_synced_to_binning(self, module_setup):
        workload, _ = module_setup
        config = PipelineConfig(
            binning=BinningConfig(min_mz=100, max_mz=900, bin_width=0.5),
            space=HDSpaceConfig(dim=512, num_bins=1, seed=5),
        )
        pipeline = OmsPipeline.from_workload(workload, config)
        assert (
            pipeline.encoder.space.config.num_bins
            == config.binning.num_bins
        )

    def test_timings_recorded(self, module_setup):
        workload, _ = module_setup
        pipeline = OmsPipeline.from_workload(
            workload, PipelineConfig(space=HDSpaceConfig(dim=512, seed=5))
        )
        result = pipeline.run_workload(workload)
        for stage in ("decoy_generation", "reference_encoding", "search", "fdr_filter"):
            assert stage in result.timings
            assert result.timings[stage] >= 0

    def test_grouped_vs_global_fdr(self, module_setup):
        workload, _ = module_setup
        grouped = OmsPipeline.from_workload(
            workload,
            PipelineConfig(
                space=HDSpaceConfig(dim=1024, seed=5), use_grouped_fdr=True
            ),
        ).run_workload(workload)
        global_ = OmsPipeline.from_workload(
            workload,
            PipelineConfig(
                space=HDSpaceConfig(dim=1024, seed=5), use_grouped_fdr=False
            ),
        ).run_workload(workload)
        # Both must produce sane results; grouped FDR typically rescues
        # at least as many modified identifications.
        grouped_modified = sum(
            1 for psm in grouped.accepted_psms if psm.is_modified_match
        )
        global_modified = sum(
            1 for psm in global_.accepted_psms if psm.is_modified_match
        )
        assert grouped_modified >= global_modified
