"""Tests for the crossbar array, ADC, tiling, and chip facade."""

import numpy as np
import pytest

from repro.rram.adc import ADC, ADCConfig
from repro.rram.chip import MLCRRAMChip, PAPER_CHIP_CELLS
from repro.rram.crossbar import CrossbarArray, CrossbarConfig
from repro.rram.device import DeviceConfig, RRAMDeviceModel
from repro.rram.mapping import TiledMatrix, plan_tiles
from repro.rram.metrics import normalized_rmse

#: A device with every noise source disabled, for exactness tests.
NOISELESS = DeviceConfig(
    sigma_program_us=0.0,
    sigma_relax_us_per_decade=0.0,
    tail_probability_per_decade=0.0,
    drift_fraction_per_decade=0.0,
)

#: A crossbar with all circuit non-idealities disabled.
CLEAN_XBAR = CrossbarConfig(
    read_noise_us=0.0, driver_droop=0.0, offset_sigma_v=0.0, adc_bits=16
)


class TestADC:
    def test_quantize_dequantize_monotone(self):
        adc = ADC(ADCConfig(bits=8, v_min=0.4, v_max=0.6))
        voltages = np.linspace(0.4, 0.6, 100)
        codes = adc.quantize(voltages)
        assert np.all(np.diff(codes) >= 0)
        assert codes.min() == 0
        assert codes.max() == 255

    def test_clipping(self):
        adc = ADC(ADCConfig(bits=4, v_min=0.4, v_max=0.6))
        assert adc.quantize(np.array([0.0]))[0] == 0
        assert adc.quantize(np.array([1.0]))[0] == 15

    def test_convert_error_bounded_by_step(self):
        adc = ADC(ADCConfig(bits=8, v_min=0.4, v_max=0.6))
        voltages = np.random.default_rng(0).uniform(0.4, 0.6, 1000)
        reconstructed = adc.convert(voltages)
        assert np.abs(reconstructed - voltages).max() <= adc.config.step

    def test_validation(self):
        with pytest.raises(ValueError):
            ADCConfig(bits=0)
        with pytest.raises(ValueError):
            ADCConfig(v_min=1.0, v_max=0.5)


class TestCrossbarArray:
    def test_noiseless_mvm_is_exact(self, rng):
        array = CrossbarArray(
            CLEAN_XBAR, RRAMDeviceModel(NOISELESS, seed=1), seed=2
        )
        weights = rng.choice([-1.0, 1.0], size=(64, 32))
        array.program(weights, w_max=1.0)
        inputs = rng.choice([-1.0, 1.0], size=64)
        estimate = array.mvm(inputs)
        exact = array.mvm_exact(inputs)
        assert np.allclose(estimate, exact, atol=0.05)

    def test_differential_mapping_equations(self, rng):
        """g± must follow Eqs. 2-3 exactly (noiseless device)."""
        array = CrossbarArray(
            CLEAN_XBAR, RRAMDeviceModel(NOISELESS, seed=1), seed=2
        )
        weights = np.array([[1.0, -1.0, 0.5, 0.0]]).T @ np.ones((1, 3))
        array.program(weights, w_max=1.0)
        gmax = array.device.config.gmax_us
        expected_plus = 0.5 * (1 + weights) * gmax
        expected_minus = 0.5 * (1 - weights) * gmax
        assert np.allclose(array._g_plus, expected_plus)
        assert np.allclose(array._g_minus, expected_minus)

    def test_noisy_mvm_error_grows_with_active_rows(self, rng):
        errors = []
        for active in (16, 128):
            config = CrossbarConfig(rows=256, cols=64, max_active_pairs=active)
            array = CrossbarArray(config, seed=5)
            weights = rng.choice([-1.0, 1.0], size=(active, 64))
            array.program(weights, w_max=1.0)
            trial_errors = []
            for _ in range(20):
                inputs = rng.choice([-1.0, 1.0], size=active)
                trial_errors.append(
                    normalized_rmse(array.mvm_exact(inputs), array.mvm(inputs))
                )
            errors.append(np.mean(trial_errors))
        assert errors[1] > errors[0]

    def test_row_chunking_counts_cycles(self, rng):
        config = CrossbarConfig(rows=256, cols=8, max_active_pairs=32)
        array = CrossbarArray(config, seed=1)
        weights = rng.choice([-1.0, 1.0], size=(100, 8))
        array.program(weights)
        array.mvm(rng.choice([-1.0, 1.0], size=100))
        # ceil(100/32) = 4 chunks.
        assert array.stats.mvm_cycles == 4
        assert array.stats.adc_conversions == 4 * 8

    def test_capacity_checks(self, rng):
        config = CrossbarConfig(rows=64, cols=16, max_active_pairs=16)
        array = CrossbarArray(config, seed=1)
        with pytest.raises(ValueError, match="exceed array capacity"):
            array.program(np.ones((33, 8)))  # > rows/2 pairs
        with pytest.raises(ValueError, match="columns"):
            array.program(np.ones((8, 20)))

    def test_weight_range_check(self):
        array = CrossbarArray(seed=1)
        with pytest.raises(ValueError, match="exceed w_max"):
            array.program(np.full((4, 4), 2.0), w_max=1.0)

    def test_input_validation(self, rng):
        array = CrossbarArray(seed=1)
        array.program(rng.choice([-1.0, 1.0], size=(8, 4)))
        with pytest.raises(ValueError, match="shape"):
            array.mvm(np.ones(5))
        with pytest.raises(ValueError, match="lie in"):
            array.mvm(np.full(8, 3.0))
        with pytest.raises(RuntimeError):
            CrossbarArray(seed=2).mvm(np.ones(4))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=255)  # odd
        with pytest.raises(ValueError):
            CrossbarConfig(max_active_pairs=1000)
        with pytest.raises(ValueError):
            CrossbarConfig(driver_droop=1.5)


class TestTiledMatrix:
    def test_plan_tiles(self):
        config = CrossbarConfig(rows=256, cols=256, max_active_pairs=64)
        plan = plan_tiles(300, 600, config)
        assert plan.row_tiles == 3  # ceil(300/128)
        assert plan.col_tiles == 3  # ceil(600/256)
        assert plan.num_tiles == 9

    def test_tiled_noiseless_mvm_exact(self, rng):
        weights = rng.choice([-1.0, 1.0], size=(300, 40))
        tiled = TiledMatrix(
            weights,
            w_max=1.0,
            config=CrossbarConfig(
                rows=128,
                cols=32,
                max_active_pairs=64,
                read_noise_us=0.0,
                driver_droop=0.0,
                offset_sigma_v=0.0,
                adc_bits=16,
            ),
            device=RRAMDeviceModel(NOISELESS, seed=1),
            seed=2,
        )
        inputs = rng.choice([-1.0, 1.0], size=300)
        assert np.allclose(tiled.mvm(inputs), inputs @ weights, atol=0.5)
        assert np.allclose(tiled.mvm_exact(inputs), inputs @ weights)

    def test_cycle_accounting(self, rng):
        weights = rng.choice([-1.0, 1.0], size=(300, 40))
        config = CrossbarConfig(rows=128, cols=32, max_active_pairs=32)
        tiled = TiledMatrix(weights, config=config, seed=3)
        # 128 rows = 64 differential pairs per tile -> 5 row tiles
        # (64*4 + 44), each sensed in ceil(pairs/32) = 2 chunks.
        assert tiled.cycles_per_mvm() == 5 * 2
        assert tiled.total_cells() == 2 * 300 * 40

    def test_input_shape_validation(self, rng):
        tiled = TiledMatrix(np.ones((10, 4)), seed=1)
        with pytest.raises(ValueError):
            tiled.mvm(np.ones(11))


class TestChip:
    def test_inventory_tracking(self, rng):
        chip = MLCRRAMChip(seed=1)
        store = chip.new_store(bits_per_cell=3)
        hvs = (rng.integers(0, 2, (8, 300)) * 2 - 1).astype(np.int8)
        store.write(hvs)
        chip.new_compute_matrix(rng.choice([-1.0, 1.0], size=(50, 20)))
        inventory = chip.refresh_inventory()
        assert inventory.stores == 1
        assert inventory.matrices == 1
        assert inventory.storage_cells == 8 * 100  # 300 bits at 3 b/cell
        assert inventory.compute_cells == 2 * 50 * 20
        assert 0 < chip.utilization < 1

    def test_storage_capacity_triples_at_3bpc(self):
        slc = MLCRRAMChip(seed=1).storage_capacity_hypervectors(8192, 1)
        mlc = MLCRRAMChip(seed=1).storage_capacity_hypervectors(8192, 3)
        assert slc == PAPER_CHIP_CELLS // 8192
        assert mlc >= 2.99 * slc

    def test_allocations_use_distinct_seeds(self, rng):
        chip = MLCRRAMChip(seed=1)
        a = chip.new_store(2)
        b = chip.new_store(2)
        hvs = (rng.integers(0, 2, (4, 256)) * 2 - 1).astype(np.int8)
        a.write(hvs)
        b.write(hvs)
        # Different physical cells -> different noise realisations.
        assert not np.array_equal(
            a.read(86400.0).hypervectors, b.read(86400.0).hypervectors
        )
