"""Tests for the unified EngineConfig API and its deprecation shims.

Every engine entry point — :class:`ShardedSearcher`,
:class:`HDOmsSearcher.from_index`, :class:`BatchedHDOmsSearcher`,
:class:`ServiceConfig` — must accept one :class:`EngineConfig`; the old
per-entry-point kwargs keep working but warn, and mixing the two styles
is rejected outright.
"""

from __future__ import annotations

import warnings

import pytest

from repro.ann import AnnConfig
from repro.engine import EngineConfig
from repro.hdc.spaces import HDSpaceConfig
from repro.index.library import LibraryIndex
from repro.index.sharded import ShardedSearcher
from repro.oms.batch import BatchedHDOmsSearcher
from repro.oms.search import HDOmsSearcher, HDSearchConfig
from repro.service.server import ServiceConfig


@pytest.fixture(scope="module")
def index(small_workload, binning):
    return LibraryIndex.build(
        small_workload.references,
        space_config=HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=17),
        binning=binning,
    )


@pytest.fixture(scope="module")
def queries(small_workload):
    return small_workload.queries[:8]


def _psm_key(psm):
    return (psm.reference_id, psm.score, psm.is_decoy)


class TestEngineConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "turbo"},
            {"backend": "sparse"},
            {"num_shards": 0},
            {"num_workers": -1},
            {"executor": "fork"},
            {"score_block_rows": -4},
            {"pipeline_batch": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="engine kind"):
            EngineConfig().replace(kind="bogus")

    def test_to_dict_is_json_safe(self):
        config = EngineConfig(ann=AnnConfig())
        payload = config.to_dict()
        assert payload["kind"] == "auto"
        assert payload["backend"] == "dense"
        assert isinstance(payload["ann"], dict)

    def test_backend_label_for_factory(self):
        def my_backend():  # pragma: no cover - label only
            raise NotImplementedError

        assert EngineConfig(backend=my_backend).backend_label == "my_backend"

    def test_build_backend_applies_block_rows(self):
        backend = EngineConfig(backend="packed", score_block_rows=64).build_backend()
        assert backend.name == "packed"


class TestShardedSearcherShims:
    def test_bare_call_keeps_historical_defaults_silently(self, index):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            searcher = ShardedSearcher(index)
        assert searcher.num_shards == 2
        assert searcher.engine.kind == "sharded"
        searcher.close()

    def test_legacy_kwarg_warns_but_works(self, index, queries):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            searcher = ShardedSearcher(index, num_shards=3)
        assert searcher.num_shards == 3
        try:
            assert len(searcher.search(queries).psms) > 0
        finally:
            searcher.close()

    def test_engine_plus_legacy_rejected(self, index):
        with pytest.raises(ValueError, match="not both"):
            ShardedSearcher(
                index, num_shards=3, engine=EngineConfig(num_shards=2)
            )

    def test_engine_kind_mismatch_rejected(self, index):
        with pytest.raises(ValueError, match="cannot host engine kind"):
            ShardedSearcher(index, engine=EngineConfig(kind="batched"))

    def test_engine_path_matches_legacy_path(self, index, queries):
        with pytest.warns(DeprecationWarning):
            legacy = ShardedSearcher(
                index, num_shards=3, backend="packed", num_workers=0
            )
        modern = ShardedSearcher(
            index,
            engine=EngineConfig(
                kind="sharded", num_shards=3, backend="packed", num_workers=0
            ),
        )
        try:
            legacy_psms = [_psm_key(p) for p in legacy.search(queries).psms]
            modern_psms = [_psm_key(p) for p in modern.search(queries).psms]
            assert legacy_psms == modern_psms
        finally:
            legacy.close()
            modern.close()

    def test_engine_ann_folds_into_config(self, index):
        ann = AnnConfig(ann_threshold=1)
        searcher = ShardedSearcher(index, engine=EngineConfig(ann=ann))
        assert searcher.config.ann == ann
        assert searcher.ann_stats is not None
        searcher.close()

    def test_engine_ann_conflict_rejected(self, index):
        with pytest.raises(ValueError, match="conflicting ANN"):
            ShardedSearcher(
                index,
                config=HDSearchConfig(ann=AnnConfig(num_tables=2)),
                engine=EngineConfig(ann=AnnConfig(num_tables=4)),
            )


class TestFromIndexEngine:
    def test_hd_searcher_accepts_engine(self, index, queries):
        baseline = HDOmsSearcher.from_index(index)
        engined = HDOmsSearcher.from_index(
            index, engine=EngineConfig(backend="packed")
        )
        assert engined.backend.name == "packed"
        assert [_psm_key(p) for p in engined.search(queries).psms] == [
            _psm_key(p) for p in baseline.search(queries).psms
        ]

    def test_hd_searcher_engine_ann(self, index):
        ann = AnnConfig(ann_threshold=1)
        searcher = HDOmsSearcher.from_index(index, engine=EngineConfig(ann=ann))
        assert searcher.config.ann == ann

    def test_hd_searcher_engine_ann_conflict(self, index):
        with pytest.raises(ValueError, match="conflicting ANN"):
            HDOmsSearcher.from_index(
                index,
                config=HDSearchConfig(ann=AnnConfig(num_tables=2)),
                engine=EngineConfig(ann=AnnConfig(num_tables=4)),
            )

    def test_batched_searcher_accepts_engine(self, index, queries):
        baseline = BatchedHDOmsSearcher.from_index(index)
        engined = BatchedHDOmsSearcher.from_index(
            index, engine=EngineConfig(score_block_rows=16)
        )
        assert [_psm_key(p) for p in engined.search(queries).psms] == [
            _psm_key(p) for p in baseline.search(queries).psms
        ]

    def test_batched_searcher_engine_ann_conflict(self, index):
        with pytest.raises(ValueError, match="conflicting ANN"):
            BatchedHDOmsSearcher.from_index(
                index,
                ann=AnnConfig(num_tables=2),
                engine=EngineConfig(ann=AnnConfig(num_tables=4)),
            )


class TestServiceConfigShims:
    def test_defaults_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = ServiceConfig()
        assert config.resolved_engine() == EngineConfig(
            kind="auto", num_shards=1, num_workers=0
        )

    def test_legacy_field_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = ServiceConfig(num_shards=4)
        assert config.resolved_engine().num_shards == 4

    def test_engine_config_plus_legacy_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            ServiceConfig(
                num_shards=4, engine_config=EngineConfig(num_shards=2)
            )

    def test_engine_config_passes_through(self):
        engine = EngineConfig(kind="sharded", num_shards=3, executor="thread")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = ServiceConfig(engine_config=engine)
        assert config.resolved_engine() == engine

    def test_legacy_ann_folds_into_engine_config(self):
        ann = AnnConfig(ann_threshold=1)
        config = ServiceConfig(
            ann=ann, engine_config=EngineConfig(kind="sharded")
        )
        assert config.resolved_engine().ann == ann
        assert config.resolved_ann() == ann

    def test_with_ann_targets_engine_config(self):
        ann = AnnConfig(ann_threshold=1)
        config = ServiceConfig(engine_config=EngineConfig(kind="sharded"))
        updated = config.with_ann(ann)
        assert updated.resolved_ann() == ann
        assert updated.engine_config.ann == ann
        assert updated.with_ann(None).resolved_ann() is None

    def test_batched_constraints_apply_to_resolved_config(self):
        with pytest.raises(ValueError, match="cascade"):
            ServiceConfig(
                mode="cascade",
                engine_config=EngineConfig(kind="batched"),
            )
        with pytest.raises(ValueError, match="batched"):
            ServiceConfig(
                engine_config=EngineConfig(kind="batched", num_shards=2)
            )
