"""Property-based tests for FDR estimation and MS-substrate invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ms.elements import AMINO_ACIDS
from repro.ms.peptide import Peptide
from repro.ms.vectorize import quantize_intensities
from repro.oms.fdr import assign_qvalues, filter_at_fdr
from repro.oms.psm import PSM

peptide_sequences = st.text(alphabet=AMINO_ACIDS, min_size=2, max_size=30)


@st.composite
def psm_lists(draw):
    n = draw(st.integers(2, 60))
    psms = []
    for i in range(n):
        score = draw(st.floats(0, 100, allow_nan=False))
        is_decoy = draw(st.booleans())
        psms.append(
            PSM(f"q{i}", f"r{i}", f"PEP{i}/2", score, is_decoy, 0.0)
        )
    return psms


class TestFdrProperties:
    @given(psms=psm_lists())
    @settings(max_examples=60, deadline=None)
    def test_qvalues_valid_and_monotone(self, psms):
        ordered = assign_qvalues(psms)
        qvalues = [psm.q_value for psm in ordered]
        assert all(q is not None and 0 <= q for q in qvalues)
        # Monotone non-decreasing down the ranked list.
        assert all(a <= b for a, b in zip(qvalues, qvalues[1:]))
        # Scores are non-increasing down the list.
        scores = [psm.score for psm in ordered]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    @given(psms=psm_lists(), threshold=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_accepted_are_targets_below_threshold(self, psms, threshold):
        accepted = filter_at_fdr(psms, threshold)
        for psm in accepted:
            assert not psm.is_decoy
            assert psm.q_value <= threshold

    @given(psms=psm_lists())
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, psms):
        strict = {psm.query_id for psm in filter_at_fdr(psms, 0.05)}
        loose = {psm.query_id for psm in filter_at_fdr(psms, 0.5)}
        assert strict <= loose

    @given(psms=psm_lists())
    @settings(max_examples=40, deadline=None)
    def test_all_decoys_accepts_nothing(self, psms):
        for psm in psms:
            psm.is_decoy = True
            psm.q_value = None
        assert filter_at_fdr(psms, 1.0) == []


class TestPeptideProperties:
    @given(sequence=peptide_sequences)
    @settings(max_examples=80, deadline=None)
    def test_mass_positive_and_additive(self, sequence):
        peptide = Peptide(sequence)
        assert peptide.neutral_mass > 18.0
        # Mass of concatenation = sum of residue contributions.
        double = Peptide(sequence + sequence)
        water = 18.0105646863
        assert double.neutral_mass == pytest.approx(
            2 * (peptide.neutral_mass - water) + water, abs=1e-6
        )

    @given(sequence=peptide_sequences)
    @settings(max_examples=60, deadline=None)
    def test_mz_decreases_with_charge(self, sequence):
        peptide = Peptide(sequence)
        mzs = [peptide.precursor_mz(z) for z in (1, 2, 3, 4)]
        assert all(a > b for a, b in zip(mzs, mzs[1:]))

    @given(sequence=peptide_sequences)
    @settings(max_examples=60, deadline=None)
    def test_fragments_positive_and_sorted(self, sequence):
        fragments = Peptide(sequence).fragment_mzs()
        assert len(fragments) == 2 * (len(sequence) - 1)
        assert np.all(fragments > 0)
        assert np.all(np.diff(fragments) >= 0)


class TestQuantizeProperties:
    @given(
        values=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=200),
        num_levels=st.integers(2, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_levels_in_range(self, values, num_levels):
        levels, scale = quantize_intensities(np.asarray(values), num_levels)
        assert levels.min() >= 0
        assert levels.max() <= num_levels - 1
        if scale > 0:
            # The maximum value always maps to the top level.
            assert levels[int(np.argmax(values))] == num_levels - 1

    @given(
        values=st.lists(
            st.floats(0.001, 1e6, allow_nan=False), min_size=2, max_size=100
        ),
        num_levels=st.integers(2, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_order_preserving(self, values, num_levels):
        array = np.asarray(values)
        levels, _ = quantize_intensities(array, num_levels)
        order = np.argsort(array, kind="stable")
        assert np.all(np.diff(levels[order]) >= 0)
