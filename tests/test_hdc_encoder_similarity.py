"""Tests for the ID-Level encoder and Hamming similarity backends."""

import numpy as np
import pytest

from repro.hdc.encoder import SpectrumEncoder, sign_with_tiebreak
from repro.hdc.similarity import (
    PackedReferenceSet,
    batch_dot_similarity,
    dot_similarity,
    hamming_similarity,
    packed_hamming_distance,
    top_k,
)
from repro.hdc.packing import pack_bipolar
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.preprocessing import preprocess
from repro.ms.vectorize import vectorize


@pytest.fixture(scope="module")
def encoder_and_vectors(request):
    from repro.hdc.spaces import HDSpace, HDSpaceConfig
    from repro.ms.synthetic import WorkloadConfig, build_workload
    from repro.ms.vectorize import BinningConfig

    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=1024,
            num_bins=binning.num_bins,
            num_levels=8,
            id_precision_bits=3,
            seed=17,
        )
    )
    encoder = SpectrumEncoder(space, binning)
    workload = build_workload(
        WorkloadConfig(name="enc", num_references=20, num_queries=0, seed=9)
    )
    vectors = [
        vectorize(preprocess(s), binning) for s in workload.references
    ]
    return encoder, vectors


class TestSignWithTiebreak:
    def test_plain_signs(self):
        tiebreak = np.array([1, -1, 1, -1], dtype=np.int8)
        out = sign_with_tiebreak(np.array([5.0, -3.0, 0.1, -0.1]), tiebreak)
        assert out.tolist() == [1, -1, 1, -1]

    def test_zeros_take_tiebreak(self):
        tiebreak = np.array([1, -1, 1], dtype=np.int8)
        out = sign_with_tiebreak(np.array([0.0, 0.0, 0.0]), tiebreak)
        assert out.tolist() == [1, -1, 1]


class TestEncoder:
    def test_output_is_bipolar(self, encoder_and_vectors):
        encoder, vectors = encoder_and_vectors
        hv = encoder.encode_vector(vectors[0])
        assert hv.dtype == np.int8
        assert set(np.unique(hv)) <= {-1, 1}

    def test_deterministic(self, encoder_and_vectors):
        encoder, vectors = encoder_and_vectors
        assert np.array_equal(
            encoder.encode_vector(vectors[1]), encoder.encode_vector(vectors[1])
        )

    def test_matches_manual_equation_1(self, encoder_and_vectors):
        """Independently recompute h = sign(sum ID_i * LV_i)."""
        encoder, vectors = encoder_and_vectors
        vector = vectors[2]
        from repro.ms.vectorize import quantize_intensities

        levels, _ = quantize_intensities(vector.values, encoder.space.num_levels)
        accumulator = np.zeros(encoder.space.dim, dtype=np.int64)
        for bin_index, level in zip(vector.indices, levels):
            accumulator += encoder.space.id_vector(int(bin_index)).astype(
                np.int64
            ) * encoder.space.level_vector(int(level)).astype(np.int64)
        expected = sign_with_tiebreak(accumulator, encoder.space.tiebreak)
        assert np.array_equal(encoder.encode_vector(vector), expected)

    def test_empty_vector_encodes_to_tiebreak(self, encoder_and_vectors):
        encoder, _ = encoder_and_vectors
        from repro.ms.vectorize import SparseVector

        empty = SparseVector(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            encoder.binning.num_bins,
        )
        assert np.array_equal(
            encoder.encode_vector(empty), encoder.space.tiebreak
        )

    def test_similar_spectra_have_similar_hypervectors(
        self, encoder_and_vectors
    ):
        """Encoding preserves neighbourhood structure (HD's core claim)."""
        encoder, vectors = encoder_and_vectors
        hvs = encoder.encode_batch(vectors)
        dim = encoder.space.dim
        self_sim = batch_dot_similarity(hvs[0], hvs[:1])[0]
        cross = batch_dot_similarity(hvs[0], hvs[1:])
        assert self_sim == dim
        # unrelated spectra stay near orthogonal
        assert np.abs(cross).max() < 0.35 * dim

    def test_batch_equals_single(self, encoder_and_vectors):
        encoder, vectors = encoder_and_vectors
        batch = encoder.encode_batch(vectors[:4])
        for row, vector in enumerate(vectors[:4]):
            assert np.array_equal(batch[row], encoder.encode_vector(vector))

    def test_num_bins_mismatch_raises(self, encoder_and_vectors, binning):
        encoder, _ = encoder_and_vectors
        from repro.ms.vectorize import BinningConfig

        small_binning = BinningConfig(min_mz=100, max_mz=200, bin_width=1.0)
        with pytest.raises(ValueError, match="bins"):
            SpectrumEncoder(encoder.space, small_binning)


class TestSimilarity:
    def test_hamming_identity(self, rng):
        a = (rng.integers(0, 2, 256) * 2 - 1).astype(np.int8)
        assert hamming_similarity(a, a) == 256
        assert dot_similarity(a, a) == 256

    def test_hamming_complement(self, rng):
        a = (rng.integers(0, 2, 256) * 2 - 1).astype(np.int8)
        assert hamming_similarity(a, -a) == 0

    def test_dot_hamming_relation(self, rng):
        a = (rng.integers(0, 2, 512) * 2 - 1).astype(np.int8)
        b = (rng.integers(0, 2, 512) * 2 - 1).astype(np.int8)
        assert dot_similarity(a, b) == 2 * hamming_similarity(a, b) - 512

    def test_batch_matches_loop(self, rng):
        queries = (rng.integers(0, 2, (3, 128)) * 2 - 1).astype(np.int8)
        refs = (rng.integers(0, 2, (5, 128)) * 2 - 1).astype(np.int8)
        scores = batch_dot_similarity(queries, refs)
        assert scores.shape == (3, 5)
        for i in range(3):
            for j in range(5):
                assert scores[i, j] == dot_similarity(queries[i], refs[j])

    def test_packed_set_matches_dense(self, rng):
        refs = (rng.integers(0, 2, (20, 300)) * 2 - 1).astype(np.int8)
        query = (rng.integers(0, 2, 300) * 2 - 1).astype(np.int8)
        packed = PackedReferenceSet(refs)
        assert len(packed) == 20
        assert np.array_equal(
            packed.search(query), batch_dot_similarity(query, refs)
        )

    def test_packed_hamming_distance(self, rng):
        a = (rng.integers(0, 2, 128) * 2 - 1).astype(np.int8)
        b = a.copy()
        b[:10] = -b[:10]
        distance = packed_hamming_distance(
            pack_bipolar(a), pack_bipolar(b)
        )
        assert int(distance) == 10

    def test_top_k(self):
        scores = np.array([5, 9, 1, 9, 3])
        assert top_k(scores, 2).tolist() == [1, 3]  # stable tie-break
        mask = np.array([True, False, True, False, True])
        assert top_k(scores, 2, mask).tolist() == [0, 4]
        assert top_k(scores, 3, np.zeros(5, bool)).tolist() == []
        with pytest.raises(ValueError):
            top_k(scores, 0)
