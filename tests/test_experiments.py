"""Smoke tests for the experiment modules at reduced scale.

The benchmarks run the experiments at their reporting scale and assert
the paper shapes; these tests only verify the experiment machinery
(structure, determinism where promised, parameter plumbing) quickly.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_fig7,
    run_fig8,
    run_fig9_search,
    run_fig11,
    run_fig12,
    run_table1,
)
from repro.experiments.fig10_venn import venn_regions
from repro.experiments.report import ExperimentResult, format_table
from repro.experiments.workloads import (
    PAPER_SIZES,
    hek293_like,
    iprg2012_like,
)
from repro.ms.synthetic import WorkloadConfig, build_workload


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_result_column_access(self):
        result = ExperimentResult("x", "t", ["h1", "h2"], [[1, 2], [3, 4]])
        assert result.column("h2") == [2, 4]
        with pytest.raises(ValueError):
            result.column("missing")

    def test_render_summarises_long_notes(self):
        result = ExperimentResult(
            "x", "t", ["h"], [[1]], notes={"big": list(range(100))}
        )
        assert "100 entries" in result.render()


class TestWorkloadPresets:
    def test_presets_have_paper_counterparts(self):
        for workload in (iprg2012_like(0.05), hek293_like(0.05)):
            assert workload.config.name in PAPER_SIZES

    def test_hek_is_larger_and_more_modified(self):
        iprg = iprg2012_like(0.1)
        hek = hek293_like(0.1)
        assert len(hek.references) > len(iprg.references)
        assert (
            hek.config.modification_probability
            > iprg.config.modification_probability
        )


class TestExperimentsSmallScale:
    def test_table1_structure(self):
        result = run_table1(scale=0.05)
        assert result.experiment_id == "table1"
        assert len(result.rows) == 2
        assert result.column("paper_references") == [1_000_000, 3_000_000]

    def test_fig7_deterministic(self):
        a = run_fig7(num_hypervectors=4, dim=512, seed=3)
        b = run_fig7(num_hypervectors=4, dim=512, seed=3)
        assert a.rows == b.rows

    def test_fig7_time_points(self):
        result = run_fig7(num_hypervectors=4, dim=512)
        assert result.column("time") == [
            "after_1s",
            "after_30min",
            "after_60min",
            "after_1day",
        ]

    def test_fig8_histograms_present(self):
        result = run_fig8(cells_per_level=200, level_counts=(2, 4))
        histograms = result.notes["histograms"]
        assert "4level_after_1day" in histograms
        assert sum(histograms["4level_after_1day"]) == 4 * 200

    def test_fig9_search_custom_rows(self):
        result = run_fig9_search(activated_rows=(8, 16), num_mvms=3)
        assert result.column("activated_rows") == [8, 16]

    def test_fig11_small(self):
        workload = build_workload(
            WorkloadConfig(name="f11", num_references=80, num_queries=20, seed=3)
        )
        result = run_fig11(
            workload=workload, dim=512, bers=(0.01,), id_precisions=(1, 3)
        )
        assert result.headers == ["BER", "ID_precision_1bit", "ID_precision_3bit"]
        assert all(row[1] >= 0 for row in result.rows)

    def test_fig12_notes_carry_shape(self):
        result = run_fig12()
        assert result.notes["num_queries"] == 16_000
        assert len(result.rows) == 4


class TestVennRegions:
    def test_disjoint_sets(self):
        regions = venn_regions({"a"}, {"b"}, {"c"})
        assert regions["only_annsolo"] == 1
        assert regions["all_three"] == 0

    def test_identical_sets(self):
        s = {"x", "y"}
        regions = venn_regions(set(s), set(s), set(s))
        assert regions["all_three"] == 2
        assert sum(v for k, v in regions.items() if k != "all_three") == 0

    def test_regions_partition_union(self):
        rng = np.random.default_rng(1)
        universe = [f"p{i}" for i in range(50)]
        sets = [
            {p for p in universe if rng.random() < 0.5} for _ in range(3)
        ]
        regions = venn_regions(*sets)
        assert sum(regions.values()) == len(sets[0] | sets[1] | sets[2])
