"""Tests for the batched searcher and the write-verify loop."""

import numpy as np
import pytest

from repro.oms.batch import BatchedHDOmsSearcher
from repro.oms.search import DenseBackend, HDOmsSearcher, HDSearchConfig
from repro.rram.writeverify import (
    WriteVerifyConfig,
    residual_sigma_us,
    write_verify,
)


@pytest.fixture(scope="module")
def batch_setup():
    from repro.hdc.encoder import SpectrumEncoder
    from repro.hdc.spaces import HDSpace, HDSpaceConfig
    from repro.ms.synthetic import WorkloadConfig, build_workload
    from repro.ms.vectorize import BinningConfig

    workload = build_workload(
        WorkloadConfig(name="batch", num_references=150, num_queries=40, seed=61)
    )
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=1024,
            num_bins=binning.num_bins,
            num_levels=16,
            id_precision_bits=3,
            seed=8,
        )
    )
    encoder = SpectrumEncoder(space, binning)
    return workload, encoder


class TestBatchedSearcher:
    def test_identical_psms_to_per_query_path(self, batch_setup):
        workload, encoder = batch_setup
        per_query = HDOmsSearcher(
            encoder, workload.references, backend=DenseBackend()
        ).search(workload.queries)
        batched = BatchedHDOmsSearcher(
            encoder, workload.references
        ).search(workload.queries)
        assert len(per_query.psms) == len(batched.psms)
        for a, b in zip(per_query.psms, batched.psms):
            assert a.query_id == b.query_id
            assert a.reference_id == b.reference_id
            assert a.score == b.score
            assert a.is_decoy == b.is_decoy

    def test_standard_mode_matches(self, batch_setup):
        workload, encoder = batch_setup
        per_query = HDOmsSearcher(
            encoder,
            workload.references,
            config=HDSearchConfig(mode="standard"),
        ).search(workload.queries)
        batched = BatchedHDOmsSearcher(
            encoder, workload.references, mode="standard"
        ).search(workload.queries)
        assert [p.reference_id for p in per_query.psms] == [
            p.reference_id for p in batched.psms
        ]
        assert per_query.num_unmatched == batched.num_unmatched

    def test_cascade_mode_rejected(self, batch_setup):
        workload, encoder = batch_setup
        with pytest.raises(ValueError, match="batched"):
            BatchedHDOmsSearcher(encoder, workload.references, mode="cascade")

    def test_backend_name(self, batch_setup):
        workload, encoder = batch_setup
        result = BatchedHDOmsSearcher(
            encoder, workload.references
        ).search(workload.queries[:3])
        assert result.backend_name == "batched-dense"

    def test_reference_ber_injection(self, batch_setup):
        workload, encoder = batch_setup
        clean = BatchedHDOmsSearcher(encoder, workload.references).search(
            workload.queries[:10]
        )
        noisy = BatchedHDOmsSearcher(
            encoder, workload.references, reference_ber=0.25
        ).search(workload.queries[:10])
        assert np.mean(
            [psm.score for psm in noisy.psms]
        ) < np.mean([psm.score for psm in clean.psms])


class TestWriteVerify:
    def test_converges_within_tolerance(self, rng):
        config = WriteVerifyConfig()
        targets = rng.uniform(0, 50, 5000)
        result = write_verify(targets, config, rng)
        assert result.convergence_rate > 0.95
        errors = np.abs(result.conductances_us - targets)
        assert np.median(errors) < config.tolerance_us

    def test_more_iterations_tighter_residual(self):
        loose = residual_sigma_us(
            config=WriteVerifyConfig(max_iterations=1), seed=4
        )
        tight = residual_sigma_us(
            config=WriteVerifyConfig(max_iterations=10), seed=4
        )
        assert tight < 0.5 * loose

    def test_residual_matches_device_model_assumption(self):
        """The default loop lands near DeviceConfig.sigma_program_us."""
        from repro.rram.device import DeviceConfig

        residual = residual_sigma_us(seed=1)
        assumed = DeviceConfig().sigma_program_us
        assert residual == pytest.approx(assumed, rel=0.6)

    def test_iteration_counts_bounded(self, rng):
        config = WriteVerifyConfig(max_iterations=5)
        result = write_verify(rng.uniform(0, 50, 1000), config, rng)
        assert result.iterations.min() >= 1
        assert result.iterations.max() <= 5

    def test_energy_scales_with_iterations(self, rng):
        config = WriteVerifyConfig()
        targets = rng.uniform(0, 50, 500)
        result = write_verify(targets, config, rng)
        assert result.energy_pj(config) == pytest.approx(
            result.iterations.sum() * config.pulse_energy_pj
        )
        assert result.time_ns(config) > 0

    def test_tight_tolerance_needs_more_pulses(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        targets = np.full(2000, 25.0)
        loose = write_verify(
            targets, WriteVerifyConfig(tolerance_us=3.0), rng_a
        )
        tight = write_verify(
            targets, WriteVerifyConfig(tolerance_us=0.5), rng_b
        )
        assert tight.mean_iterations > loose.mean_iterations

    def test_conductances_stay_physical(self, rng):
        result = write_verify(np.full(500, 49.9), None, rng)
        assert result.conductances_us.max() <= 50.0
        assert result.conductances_us.min() >= 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WriteVerifyConfig(tolerance_us=0)
        with pytest.raises(ValueError):
            WriteVerifyConfig(max_iterations=0)
        with pytest.raises(ValueError):
            WriteVerifyConfig(correction_gain=0)
