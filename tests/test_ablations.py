"""Smoke tests for the ablation experiments at tiny scale.

The benchmarks assert the paper-shape claims at reporting scale; these
tests exercise parameter plumbing and result structure quickly.
"""

import pytest

from repro.experiments.ablations import (
    run_ablation_encoding_scheme,
    run_ablation_fdr,
    run_ablation_id_precision,
    run_ablation_levels,
    run_ablation_weight_mapping,
)
from repro.ms.synthetic import WorkloadConfig, build_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return build_workload(
        WorkloadConfig(name="abl", num_references=80, num_queries=20, seed=9)
    )


class TestAblationStructure:
    def test_levels(self, tiny_workload):
        result = run_ablation_levels(workload=tiny_workload, dim=512)
        schemes = result.column("level_scheme")
        assert schemes == ["classic", "chunked"]
        cycles = result.column("encode_cycles_per_spectrum")
        assert cycles[1] < cycles[0]  # chunked always cheaper

    def test_id_precision(self, tiny_workload):
        result = run_ablation_id_precision(
            workload=tiny_workload, dim=512, precisions=(1, 3)
        )
        assert result.column("id_precision") == ["1-bit", "3-bit"]
        assert all(ids >= 0 for ids in result.column("identifications"))

    def test_weight_mapping(self):
        result = run_ablation_weight_mapping(
            activated_rows=(8, 16), num_outputs=16, num_mvms=5
        )
        assert result.column("activated_rows") == [8, 16]
        for row in result.rows:
            assert row[1] > 0 and row[2] > 0

    def test_encoding_scheme(self, tiny_workload):
        result = run_ablation_encoding_scheme(workload=tiny_workload, dim=512)
        assert result.column("encoder") == [
            "id-level",
            "random-projection",
            "permutation",
        ]

    def test_fdr(self, tiny_workload):
        result = run_ablation_fdr(workload=tiny_workload, dim=512)
        variants = result.column("fdr_variant")
        assert variants == ["global", "grouped"]
        for row in result.rows:
            accepted, modified, correct = row[1], row[2], row[3]
            assert modified <= accepted
            assert correct <= accepted
