"""Edge-case tests across modules that the main suites don't reach."""

import numpy as np
import pytest

from repro.rram.adc import ADC
from repro.rram.crossbar import CrossbarConfig, sense_chunk
from repro.rram.device import RRAMDeviceModel


class TestSenseChunk:
    def test_rejects_oversized_chunk(self, rng):
        config = CrossbarConfig(rows=256, max_active_pairs=8)
        adc = ADC(config.adc_config())
        g = np.full((9, 4), 25.0)
        with pytest.raises(ValueError, match="exceed max_active_pairs"):
            sense_chunk(
                np.ones(9), g, g, np.zeros(4), config, 50.0, 1.0, adc, rng
            )

    def test_zero_weight_gives_zero_mac(self, rng):
        """Equal g+ and g- (W=0) must produce ~zero output."""
        config = CrossbarConfig(
            rows=256,
            max_active_pairs=16,
            read_noise_us=0.0,
            driver_droop=0.0,
            offset_sigma_v=0.0,
            adc_bits=16,
        )
        adc = ADC(config.adc_config())
        g = np.full((16, 4), 25.0)  # g+ == g- everywhere
        out = sense_chunk(
            np.ones(16), g, g, np.zeros(4), config, 50.0, 1.0, adc, rng
        )
        assert np.allclose(out, 0.0, atol=0.01)

    def test_sign_symmetry(self, rng):
        """Negating all inputs negates the MAC (linear sensing)."""
        config = CrossbarConfig(
            rows=256,
            max_active_pairs=8,
            read_noise_us=0.0,
            driver_droop=0.0,
            offset_sigma_v=0.0,
            adc_bits=16,
        )
        adc = ADC(config.adc_config())
        weights = np.linspace(-1, 1, 8)[:, None] * np.ones((1, 3))
        g_plus = 0.5 * (1 + weights) * 50.0
        g_minus = 0.5 * (1 - weights) * 50.0
        inputs = np.array([1.0, -1, 1, 1, -1, 1, -1, 1])
        pos = sense_chunk(
            inputs, g_plus, g_minus, np.zeros(3), config, 50.0, 1.0, adc, rng
        )
        neg = sense_chunk(
            -inputs, g_plus, g_minus, np.zeros(3), config, 50.0, 1.0, adc, rng
        )
        assert np.allclose(pos, -neg, atol=0.05)


class TestDeviceEdges:
    def test_single_level_rejected(self):
        device = RRAMDeviceModel(seed=0)
        with pytest.raises(ValueError):
            device.level_targets(1)

    def test_program_preserves_shape(self, rng):
        device = RRAMDeviceModel(seed=0)
        targets = np.full((3, 4, 5), 10.0)
        assert device.program(targets, rng).shape == (3, 4, 5)


class TestSearchResultEdges:
    def test_average_candidates_empty_queries(self, small_workload):
        from repro.oms.candidates import CandidateIndex

        index = CandidateIndex(small_workload.references)
        assert index.average_candidates([]) == 0.0

    def test_min_candidates_gate(self, small_workload, small_space, binning):
        from repro.hdc.encoder import SpectrumEncoder
        from repro.oms.search import HDOmsSearcher, HDSearchConfig

        encoder = SpectrumEncoder(small_space, binning)
        searcher = HDOmsSearcher(
            encoder,
            small_workload.references,
            config=HDSearchConfig(min_candidates=10**6),
        )
        result = searcher.search(small_workload.queries[:5])
        # The impossible candidate floor means nothing matches.
        assert len(result.psms) == 0
        assert result.num_unmatched == 5


class TestAcceleratorEdges:
    def test_stored_query_encoder_batch(self, small_workload, binning):
        from repro.accelerator.accelerator import StoredQueryEncoder
        from repro.hdc.encoder import SpectrumEncoder
        from repro.hdc.spaces import HDSpace, HDSpaceConfig
        from repro.ms.preprocessing import preprocess
        from repro.rram.device import RRAMDeviceModel

        space = HDSpace(
            HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=3)
        )
        inner = SpectrumEncoder(space, binning)
        stored = StoredQueryEncoder(
            inner, 2, RRAMDeviceModel(seed=1), storage_time_s=60.0, seed=2
        )
        spectra = [
            preprocess(s) for s in small_workload.references[:4]
        ]
        batch = stored.encode_batch([s for s in spectra if s is not None])
        assert batch.shape[1] == 256
        assert set(np.unique(batch)) <= {-1, 1}

    def test_rram_backend_rejects_bad_query_shape(self, rng):
        from repro.accelerator.config import AcceleratorConfig
        from repro.accelerator.im_search import InMemorySearchBackend

        backend = InMemorySearchBackend(AcceleratorConfig(seed=1))
        refs = (rng.integers(0, 2, (5, 128)) * 2 - 1).astype(np.int8)
        backend.prepare(refs)
        with pytest.raises(ValueError, match="query shape"):
            backend.scores(np.ones(64, dtype=np.int8), np.arange(5))


class TestConstantsSanity:
    def test_proton_and_water(self):
        from repro.constants import PROTON_MASS, WATER_MASS

        assert PROTON_MASS == pytest.approx(1.00728, abs=1e-5)
        assert WATER_MASS == pytest.approx(18.01056, abs=1e-5)

    def test_default_windows_ordered(self):
        from repro.constants import (
            DEFAULT_OPEN_WINDOW_DA,
            DEFAULT_STANDARD_WINDOW_DA,
        )

        assert DEFAULT_OPEN_WINDOW_DA > DEFAULT_STANDARD_WINDOW_DA
