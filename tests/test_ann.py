"""Tests for the Hamming-LSH candidate prefilter (`repro.ann`).

Covers the config validation, the LSH index itself (determinism,
persistence round-trip, provenance checks), the prefilter's three
outcomes — bypass under ``ann_threshold``, fallback on an empty
shortlist, prefiltered otherwise — the library-index persistence
plumbing, the searcher wiring, and a hypothesis property pinning the
exact re-rank to brute force on the shortlisted rows.
"""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import (
    ANN_FORMAT_VERSION,
    AnnConfig,
    AnnStats,
    CandidatePrefilter,
    HammingLSHIndex,
)
from repro.hdc.packing import pack_bipolar
from repro.index.library import IndexCompatibilityError, LibraryIndex
from repro.oms.search import HDOmsSearcher, HDSearchConfig

DIM = 256


def _random_bipolar(rng, rows, dim=DIM):
    return (rng.integers(0, 2, size=(rows, dim), dtype=np.int8) * 2 - 1).astype(
        np.int8
    )


def _small_lsh(rows=64, seed=3, **config_kwargs):
    rng = np.random.default_rng(seed)
    hvs = _random_bipolar(rng, rows)
    kwargs = {"num_tables": 4, "bits_per_hash": 8, "ann_threshold": 0}
    kwargs.update(config_kwargs)
    config = AnnConfig(**kwargs)
    return hvs, HammingLSHIndex.build(pack_bipolar(hvs), DIM, config)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_tables": 0},
        {"bits_per_hash": 0},
        {"bits_per_hash": 33},
        {"multiprobe_radius": -1},
        {"multiprobe_radius": 3},
        {"multiprobe_radius": 2, "bits_per_hash": 1},
        {"candidate_budget": 0},
        {"ann_threshold": -1},
    ],
)
def test_ann_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        AnnConfig(**kwargs)


def test_ann_config_defaults_are_valid():
    config = AnnConfig()
    assert config.num_tables == 8
    assert config.bits_per_hash == 16
    assert config.candidate_budget == 256


# ----------------------------------------------------------------------
# LSH index
# ----------------------------------------------------------------------


def test_lsh_build_is_deterministic():
    hvs, lsh = _small_lsh()
    _, again = _small_lsh()
    rng = np.random.default_rng(9)
    query = hvs[17]
    assert np.array_equal(lsh.query(query), again.query(query))
    noisy = query.copy()
    flips = rng.choice(DIM, size=12, replace=False)
    noisy[flips] = -noisy[flips]
    assert np.array_equal(lsh.query(noisy), again.query(noisy))


def test_lsh_exact_row_is_always_shortlisted():
    """A query identical to a library row collides in every table."""
    hvs, lsh = _small_lsh()
    for row in (0, 13, 63):
        assert row in lsh.query(hvs[row])


def test_lsh_respects_candidate_budget():
    hvs, lsh = _small_lsh(rows=128, candidate_budget=5)
    shortlist = lsh.query(hvs[0])
    assert 0 < len(shortlist) <= 5


def test_lsh_rejects_mismatched_packed_shape():
    rng = np.random.default_rng(0)
    hvs = _random_bipolar(rng, 8)
    with pytest.raises(ValueError, match="does not match dim"):
        HammingLSHIndex.build(pack_bipolar(hvs), DIM * 2)


def test_lsh_rejects_dim_smaller_than_key():
    rng = np.random.default_rng(0)
    hvs = _random_bipolar(rng, 8, dim=8)
    with pytest.raises(ValueError, match="smaller than bits_per_hash"):
        HammingLSHIndex.build(pack_bipolar(hvs), 8, AnnConfig(bits_per_hash=16))


def test_lsh_array_roundtrip_preserves_queries():
    hvs, lsh = _small_lsh()
    rebuilt = HammingLSHIndex.from_arrays(lsh.provenance(), lsh.to_arrays())
    for row in (1, 30):
        assert np.array_equal(lsh.query(hvs[row]), rebuilt.query(hvs[row]))


def test_lsh_from_arrays_rejects_bad_version():
    _, lsh = _small_lsh()
    provenance = lsh.provenance()
    provenance["format_version"] = ANN_FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="format version"):
        HammingLSHIndex.from_arrays(provenance, lsh.to_arrays())


def test_lsh_from_arrays_rejects_row_mismatch():
    _, lsh = _small_lsh()
    provenance = lsh.provenance()
    provenance["num_rows"] = lsh.num_rows + 1
    with pytest.raises(ValueError, match="rows"):
        HammingLSHIndex.from_arrays(provenance, lsh.to_arrays())


# ----------------------------------------------------------------------
# prefilter outcomes
# ----------------------------------------------------------------------


def _prefilter_fixture(rows=64, seed=5, **config_kwargs):
    rng = np.random.default_rng(seed)
    hvs, lsh = _small_lsh(rows=rows, seed=seed, **config_kwargs)
    masses = rng.uniform(800.0, 1200.0, size=rows)
    charges = np.full(rows, 2, dtype=np.int64)
    prefilter = CandidatePrefilter(lsh, masses, charges, charge_aware=True)
    return hvs, masses, prefilter


def test_prefilter_bypasses_small_windows():
    """Windows under ``ann_threshold`` return the full window, exact."""
    hvs, masses, prefilter = _prefilter_fixture(ann_threshold=10_000)
    selection = prefilter.select(hvs[0], float(masses[0]), 2, 500.0)
    assert selection.outcome == "bypass"
    assert selection.window_count == len(masses)
    assert len(selection.positions) == len(masses)
    # Positions come back in (mass, position) order — brute force's.
    assert np.all(np.diff(masses[selection.positions]) >= 0)


def test_prefilter_empty_window_is_a_bypass():
    hvs, masses, prefilter = _prefilter_fixture()
    selection = prefilter.select(hvs[0], 50_000.0, 2, 1.0)
    assert selection.outcome == "bypass"
    assert selection.window_count == 0
    assert len(selection.positions) == 0


def test_prefilter_unknown_charge_is_a_bypass():
    hvs, masses, prefilter = _prefilter_fixture()
    selection = prefilter.select(hvs[0], float(masses[0]), 7, 500.0)
    assert selection.outcome == "bypass"
    assert selection.window_count == 0


def test_prefilter_prefiltered_rows_lie_in_window():
    hvs, masses, prefilter = _prefilter_fixture()
    selection = prefilter.select(hvs[3], float(masses[3]), 2, 100.0)
    assert selection.outcome == "prefiltered"
    assert 3 in selection.positions
    assert np.all(np.abs(masses[selection.positions] - masses[3]) <= 100.0)
    # Sorted ranks reproduce the exact scorer's tie-break order.
    assert np.all(np.diff(selection.ranks) > 0)


class _EmptyShortlistLSH:
    """Stub LSH whose shortlist always misses (forces the fallback)."""

    def __init__(self, num_rows, config):
        self.num_rows = num_rows
        self.config = config

    def query(self, query_hv):
        return np.empty(0, dtype=np.int64)


def test_prefilter_empty_shortlist_falls_back_to_full_window():
    """An empty shortlist must degrade to brute force, never to a miss."""
    rng = np.random.default_rng(11)
    rows = 32
    masses = rng.uniform(900.0, 1100.0, size=rows)
    charges = np.full(rows, 2, dtype=np.int64)
    lsh = _EmptyShortlistLSH(rows, AnnConfig(ann_threshold=0))
    prefilter = CandidatePrefilter(lsh, masses, charges, charge_aware=True)
    selection = prefilter.select(
        _random_bipolar(rng, 1)[0], float(masses[0]), 2, 500.0
    )
    assert selection.outcome == "fallback"
    assert selection.window_count == len(selection.positions)
    assert set(selection.positions) == set(
        np.flatnonzero(np.abs(masses - masses[0]) <= 500.0)
    )


def test_prefilter_rejects_metadata_length_mismatch():
    _, lsh = _small_lsh(rows=16)
    with pytest.raises(ValueError, match="disagree"):
        CandidatePrefilter(
            lsh, np.zeros(15), np.zeros(15, dtype=np.int64), charge_aware=True
        )


def test_ann_stats_accumulates_and_rejects_unknown():
    stats = AnnStats()
    stats.record("bypass", 10, 10)
    stats.record("prefiltered", 100, 8)
    stats.record_batch(np.array([1, 0, 2]), 50, 30)
    snapshot = stats.snapshot()
    assert snapshot["bypassed"] == 2
    assert snapshot["prefiltered"] == 1
    assert snapshot["fallbacks"] == 2
    assert snapshot["window_rows"] == 160
    assert snapshot["scored_rows"] == 48
    with pytest.raises(KeyError):
        stats.record("nope", 1, 1)


# ----------------------------------------------------------------------
# library-index persistence
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ann_index(small_workload_module):
    index = LibraryIndex.build(
        small_workload_module.references,
        space_config=_space_config(),
        ann=AnnConfig(num_tables=4, bits_per_hash=8, ann_threshold=0),
    )
    return index


def _space_config():
    from repro.hdc.spaces import HDSpaceConfig
    from repro.ms.vectorize import BinningConfig

    return HDSpaceConfig(dim=512, num_bins=BinningConfig().num_bins, seed=4)


@pytest.fixture(scope="module")
def small_workload_module():
    from repro.ms.synthetic import WorkloadConfig, build_workload

    return build_workload(
        WorkloadConfig(name="ann-test", num_references=80, num_queries=20, seed=31)
    )


def test_index_roundtrips_ann_tables(ann_index, tmp_path):
    path = ann_index.save(tmp_path / "lib.npz")
    loaded = LibraryIndex.load(path)
    assert loaded.ann is not None
    assert loaded.ann.config == ann_index.ann.config
    assert loaded.ann.num_rows == ann_index.num_references
    assert "ANN 4x8b" in loaded.summary()
    assert loaded.provenance()["ann"] == ann_index.provenance()["ann"]


def test_index_without_ann_loads_none(small_workload_module, tmp_path):
    index = LibraryIndex.build(
        small_workload_module.references, space_config=_space_config()
    )
    loaded = LibraryIndex.load(index.save(tmp_path / "plain.npz"))
    assert loaded.ann is None
    assert loaded.provenance()["ann"] is None


def test_index_load_rejects_tampered_ann_provenance(ann_index, tmp_path):
    """A corrupted persisted ANN section must raise, not half-load."""
    path = ann_index.save(tmp_path / "lib.npz")
    with np.load(path, allow_pickle=False) as archive:
        members = {name: archive[name] for name in archive.files}
    provenance = json.loads(str(members["ann_json"][()]))
    provenance["num_rows"] = provenance["num_rows"] + 1
    members["ann_json"] = np.array(json.dumps(provenance))
    tampered = tmp_path / "tampered.npz"
    np.savez(tampered, **members)
    with pytest.raises(IndexCompatibilityError, match="ANN"):
        LibraryIndex.load(tampered)


def test_index_load_rejects_missing_ann_arrays(ann_index, tmp_path):
    path = ann_index.save(tmp_path / "lib.npz")
    with np.load(path, allow_pickle=False) as archive:
        members = {name: archive[name] for name in archive.files}
    del members["ann_sorted_keys"]
    broken = tmp_path / "broken.npz"
    np.savez(broken, **members)
    with pytest.raises(IndexCompatibilityError, match="ANN"):
        LibraryIndex.load(broken)


def test_index_rejects_foreign_ann_tables(small_workload_module):
    """Constructor refuses tables whose rows disagree with the index."""
    index = LibraryIndex.build(
        small_workload_module.references, space_config=_space_config()
    )
    rng = np.random.default_rng(6)
    foreign = HammingLSHIndex.build(
        pack_bipolar(_random_bipolar(rng, index.num_references + 3, dim=512)),
        512,
        AnnConfig(num_tables=2, bits_per_hash=8),
    )
    with pytest.raises(IndexCompatibilityError, match="ANN"):
        LibraryIndex(
            packed=index.packed,
            dim=index.dim,
            identifiers=index.identifiers,
            peptide_keys=index.peptide_keys,
            is_decoy=index.is_decoy,
            neutral_masses=index.neutral_masses,
            charges=index.charges,
            space_config=index.space_config,
            binning=index.binning,
            preprocessing=index.preprocessing,
            ann=foreign,
        )


# ----------------------------------------------------------------------
# searcher wiring
# ----------------------------------------------------------------------


def test_searcher_with_huge_threshold_matches_brute_force(
    small_workload_module,
):
    """ann_threshold larger than any window → every query bypasses."""
    from repro.hdc.encoder import SpectrumEncoder
    from repro.hdc.spaces import HDSpace
    from repro.ms.vectorize import BinningConfig

    encoder = SpectrumEncoder(HDSpace(_space_config()), BinningConfig())
    workload = small_workload_module
    brute = HDOmsSearcher(encoder, workload.references)
    ann = HDOmsSearcher(
        encoder,
        workload.references,
        config=HDSearchConfig(ann=AnnConfig(ann_threshold=10**9)),
    )
    brute_result = brute.search(workload.queries)
    ann_result = ann.search(workload.queries)
    assert [
        (p.query_id, p.reference_id, p.score) for p in brute_result.psms
    ] == [(p.query_id, p.reference_id, p.score) for p in ann_result.psms]
    snapshot = ann.ann_stats.snapshot()
    assert snapshot["prefiltered"] == 0
    assert snapshot["fallbacks"] == 0
    assert snapshot["bypassed"] > 0


def test_searcher_reuses_persisted_tables(ann_index):
    searcher = HDOmsSearcher.from_index(
        ann_index,
        config=HDSearchConfig(ann=ann_index.ann.config),
    )
    assert searcher._prefilter is not None
    assert searcher._prefilter.lsh is ann_index.ann


def test_searcher_rebuilds_on_config_mismatch(ann_index):
    other = AnnConfig(num_tables=2, bits_per_hash=8, ann_threshold=0)
    searcher = HDOmsSearcher.from_index(
        ann_index, config=HDSearchConfig(ann=other)
    )
    assert searcher._prefilter is not None
    assert searcher._prefilter.lsh is not ann_index.ann
    assert searcher._prefilter.lsh.config == other


def test_service_set_ann_toggles_engine_and_clears_cache(
    small_workload_module, tmp_path
):
    """set_ann swaps the engine, flips labels/stats, and re-serves."""
    from repro.service.server import SearchService, ServiceConfig

    index = LibraryIndex.build(
        small_workload_module.references,
        space_config=_space_config(),
        ann=AnnConfig(num_tables=4, bits_per_hash=8, ann_threshold=0),
    )
    path = index.save(tmp_path / "svc.npz")
    with SearchService(
        path,
        ServiceConfig(
            ann=AnnConfig(num_tables=4, bits_per_hash=8, ann_threshold=0)
        ),
    ) as service:
        assert service.engine_name == "batched-dense+ann"
        first = service.search_many(small_workload_module.queries[:6])
        ann_section = service.stats()["engine"]["ann"]
        assert ann_section["enabled"] is True
        assert (
            ann_section["prefiltered"]
            + ann_section["fallbacks"]
            + ann_section["bypassed"]
            > 0
        )
        label = service.set_ann(False)
        assert label == "batched-dense"
        assert service.stats()["engine"]["ann"] == {"enabled": False}
        exact = service.search_many(small_workload_module.queries[:6])
        assert len(exact) == len(first)
        # Re-enable without an explicit config: the remembered one
        # comes back (4 tables, not the 8-table default).
        assert service.set_ann(True) == "batched-dense+ann"
        assert service.config.ann.num_tables == 4
        # No-op toggle keeps the engine untouched.
        generation = service._generation
        assert service.set_ann(True) == "batched-dense+ann"
        assert service._generation == generation


# ----------------------------------------------------------------------
# hypothesis: exact re-rank == brute force on the shortlist
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    rows=st.integers(8, 48),
    half_width=st.floats(10.0, 500.0),
    flips=st.integers(0, 64),
)
def test_rerank_matches_brute_force_on_shortlist(seed, rows, half_width, flips):
    """Whenever brute force's winner survives the shortlist, the
    prefiltered argmax picks the *same row* — ties included — because
    selections come back in the exact scorer's (mass, position) order."""
    rng = np.random.default_rng(seed)
    hvs = _random_bipolar(rng, rows)
    masses = rng.uniform(900.0, 1100.0, size=rows)
    charges = np.full(rows, 2, dtype=np.int64)
    config = AnnConfig(
        num_tables=4, bits_per_hash=8, ann_threshold=0, candidate_budget=16
    )
    lsh = HammingLSHIndex.build(pack_bipolar(hvs), DIM, config)
    prefilter = CandidatePrefilter(lsh, masses, charges, charge_aware=True)

    base = int(rng.integers(0, rows))
    query = hvs[base].copy()
    if flips:
        positions = rng.choice(DIM, size=min(flips, DIM), replace=False)
        query[positions] = -query[positions]
    mass = float(masses[base])

    # Brute force: stable (mass, position) candidate order, argmax.
    order = np.lexsort((np.arange(rows), masses))
    in_window = np.abs(masses[order] - mass) <= half_width
    window_positions = order[in_window]
    selection = prefilter.select(query, mass, 2, half_width)

    if len(window_positions) == 0:
        assert selection.window_count == 0
        return
    window_scores = hvs[window_positions].astype(np.int32) @ query.astype(
        np.int32
    )
    brute_winner = int(window_positions[int(np.argmax(window_scores))])

    assert selection.window_count == len(window_positions)
    # The shortlist is always a subset of the window, in window order.
    shortlist = selection.positions
    assert set(shortlist).issubset(set(window_positions))
    order_of = {int(p): i for i, p in enumerate(window_positions)}
    assert [order_of[int(p)] for p in shortlist] == sorted(
        order_of[int(p)] for p in shortlist
    )

    shortlist_scores = hvs[shortlist].astype(np.int32) @ query.astype(np.int32)
    ann_winner = int(shortlist[int(np.argmax(shortlist_scores))])
    if brute_winner in set(int(p) for p in shortlist):
        assert ann_winner == brute_winner
