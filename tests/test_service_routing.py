"""Multi-index routing tests (repro.service.registry + HTTP layer).

Routing correctness: the same spectrum searched on two routes backed by
different libraries yields different PSMs, each bit-identical to a
direct searcher run on that route's index; unknown routes are 404s;
omitted routes fall back to the default; and per-route caches are
isolated (a hit on route A never serves route B).  Also covers live
registry mutation — /reload add / swap / remove of one route — and the
``repro serve --index NAME=PATH`` flag parsing.
"""

import threading
from pathlib import Path

import pytest

from repro.cli import _parse_index_routes
from repro.hdc.spaces import HDSpaceConfig
from repro.index import LibraryIndex
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.oms.search import HDOmsSearcher
from repro.service import (
    IndexRegistry,
    ProtocolError,
    SearchClient,
    SearchService,
    ServiceConfig,
    ServiceError,
    UnknownRouteError,
    route_from_payload,
    start_server,
    validate_route_name,
)
from repro.service.registry import DEFAULT_ROUTE, normalize_index_sources


@pytest.fixture(scope="module")
def workload_a(binning):
    return build_workload(
        WorkloadConfig(
            name="route-a", num_references=120, num_queries=20, seed=7
        )
    )


@pytest.fixture(scope="module")
def workload_b(binning):
    return build_workload(
        WorkloadConfig(
            name="route-b", num_references=140, num_queries=20, seed=21
        )
    )


def _build_index(workload, binning, source):
    return LibraryIndex.build(
        workload.references,
        space_config=HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        ),
        binning=binning,
        source=source,
    )


@pytest.fixture(scope="module")
def index_a(workload_a, binning):
    return _build_index(workload_a, binning, "route-a")


@pytest.fixture(scope="module")
def index_b(workload_b, binning):
    return _build_index(workload_b, binning, "route-b")


@pytest.fixture(scope="module")
def path_a(index_a, tmp_path_factory):
    return index_a.save(tmp_path_factory.mktemp("routing") / "a.npz")


@pytest.fixture(scope="module")
def path_b(index_b, tmp_path_factory):
    return index_b.save(tmp_path_factory.mktemp("routing") / "b.npz")


@pytest.fixture(scope="module")
def baseline_a(index_a, workload_a):
    """Route-a truth: index A searched with workload A's queries."""
    result = HDOmsSearcher.from_index(index_a).search(workload_a.queries)
    return {psm.query_id: psm for psm in result.psms}


@pytest.fixture(scope="module")
def baseline_b(index_b, workload_a):
    """Route-b truth for the *same* queries, against index B."""
    result = HDOmsSearcher.from_index(index_b).search(workload_a.queries)
    return {psm.query_id: psm for psm in result.psms}


def make_registry(path_a, path_b, **config_overrides):
    defaults = dict(max_batch=8, max_wait_ms=10.0)
    defaults.update(config_overrides)
    return IndexRegistry(
        {"alpha": path_a, "beta": path_b},
        default_route="alpha",
        config=ServiceConfig(**defaults),
    )


@pytest.fixture
def registry(path_a, path_b):
    with make_registry(path_a, path_b) as registry:
        yield registry


# ----------------------------------------------------------------------
# route name / spec plumbing
# ----------------------------------------------------------------------


class TestRoutePlumbing:
    @pytest.mark.parametrize("name", ["a", "yeast", "HEK293.tof-2", "0x1"])
    def test_valid_route_names(self, name):
        assert validate_route_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "-lead", ".lead", "sp ace", "a" * 65, 7, None, "a/b"]
    )
    def test_invalid_route_names(self, name):
        with pytest.raises(ProtocolError):
            validate_route_name(name)

    def test_route_from_payload(self):
        assert route_from_payload({"route": "yeast"}) == "yeast"
        assert route_from_payload({}) is None
        assert route_from_payload({"route": None}) is None
        assert route_from_payload("not a dict") is None
        with pytest.raises(ProtocolError):
            route_from_payload({"route": "bad name"})

    def test_normalize_bare_path_becomes_default_route(self, path_a):
        assert normalize_index_sources(path_a) == {DEFAULT_ROUTE: path_a}

    def test_normalize_rejects_empty_and_duplicates(self, path_a):
        with pytest.raises(ValueError):
            normalize_index_sources({})
        with pytest.raises(ValueError):
            normalize_index_sources([("a", path_a), ("a", path_a)])


class TestServeFlagParsing:
    def test_single_bare_path(self):
        routes = _parse_index_routes(["lib.npz"])
        assert routes == {"default": Path("lib.npz")}

    def test_named_routes(self):
        routes = _parse_index_routes(["yeast=y.npz", "human=h.npz"])
        assert sorted(routes) == ["human", "yeast"]
        assert str(routes["yeast"]) == "y.npz"

    def test_multiple_bare_paths_rejected(self):
        with pytest.raises(ValueError, match="route name"):
            _parse_index_routes(["a.npz", "b.npz"])

    def test_mixed_bare_and_named_rejected(self):
        with pytest.raises(ValueError, match="route name"):
            _parse_index_routes(["yeast=y.npz", "b.npz"])

    def test_duplicate_route_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _parse_index_routes(["a=x.npz", "a=y.npz"])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="empty path"):
            _parse_index_routes(["a="])

    def test_bare_path_containing_equals_stays_a_path(self):
        # "./results" is not route-shaped, so the whole entry is a path
        # (the pre-multi-index behaviour for any previously valid path).
        routes = _parse_index_routes(["./results=final/lib.npz"])
        assert routes == {"default": Path("./results=final/lib.npz")}

    def test_route_shaped_prefix_wins_over_path_reading(self):
        routes = _parse_index_routes(["v2=run/library.npz"])
        assert routes == {"v2": Path("run/library.npz")}


# ----------------------------------------------------------------------
# registry behaviour (no HTTP)
# ----------------------------------------------------------------------


class TestIndexRegistry:
    def test_default_route_resolution(self, registry):
        assert registry.get() is registry.get("alpha")
        assert registry.get("beta") is not registry.get("alpha")
        assert registry.default_route == "alpha"
        assert registry.route_names() == ["alpha", "beta"]
        assert "beta" in registry and "gamma" not in registry
        assert len(registry) == 2

    def test_unknown_route_raises(self, registry):
        with pytest.raises(UnknownRouteError, match="gamma"):
            registry.get("gamma")

    def test_bad_default_route_rejected(self, path_a):
        with pytest.raises(ValueError, match="default route"):
            IndexRegistry({"alpha": path_a}, default_route="nope")

    def test_bad_route_name_rejected(self, path_a):
        with pytest.raises(ProtocolError):
            IndexRegistry({"bad name": path_a})

    def test_failed_construction_closes_partial_services(
        self, path_a, tmp_path, monkeypatch
    ):
        # Route "alpha" loads fine; "beta" fails.  The already-built
        # alpha service (flusher thread + engine) must be closed, not
        # leaked, or retrying construction accumulates live threads.
        closed = []
        original_close = SearchService.close

        def recording_close(self, timeout=None):
            closed.append(self.route)
            return original_close(self, timeout=timeout)

        monkeypatch.setattr(SearchService, "close", recording_close)
        before = threading.active_count()
        with pytest.raises(OSError):
            IndexRegistry(
                {"alpha": path_a, "beta": tmp_path / "missing.npz"}
            )
        assert closed == ["alpha"]
        assert threading.active_count() <= before

    def test_bad_default_route_closes_built_services(
        self, path_a, path_b, monkeypatch
    ):
        # Validation failing *after* the services were built must not
        # leak their flusher threads either.
        closed = []
        original_close = SearchService.close

        def recording_close(self, timeout=None):
            closed.append(self.route)
            return original_close(self, timeout=timeout)

        monkeypatch.setattr(SearchService, "close", recording_close)
        with pytest.raises(ValueError, match="default route"):
            IndexRegistry(
                {"alpha": path_a, "beta": path_b}, default_route="typo"
            )
        assert sorted(closed) == ["alpha", "beta"]

    def test_concurrent_close_callers_both_wait(self, path_a, path_b):
        # Neither caller may return while the other is still draining:
        # serve()'s main thread reports "drained and closed" on return.
        registry = make_registry(path_a, path_b)
        flushers = [
            registry.get(name).scheduler._thread
            for name in registry.route_names()
        ]
        drained_at_return = []

        def closer():
            registry.close()
            drained_at_return.append(
                not any(thread.is_alive() for thread in flushers)
            )

        closers = [threading.Thread(target=closer) for _ in range(2)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=30)
        assert drained_at_return == [True, True]

    def test_from_service_wraps_single_route(self, path_a):
        service = SearchService(path_a, ServiceConfig(max_wait_ms=5.0))
        try:
            registry = IndexRegistry.from_service(service)
            assert registry.get() is service
            assert registry.metrics is service.metrics
            assert registry.route_names() == [service.route]
        finally:
            service.close()

    def test_close_added_routes_keeps_adopted_service(self, path_a, path_b):
        service = SearchService(path_a, ServiceConfig(max_wait_ms=5.0))
        try:
            registry = IndexRegistry.from_service(service)
            added = registry.reload_route("extra", path_b)
            registry.close_added_routes()
            # The hot-added route drained and closed...
            assert not added.scheduler._thread.is_alive()
            assert added._closed
            # ...but the adopted service stays live for its owner.
            assert not service._closed
            assert service.scheduler._thread.is_alive()
        finally:
            service.close()

    def test_server_close_reaps_hot_added_routes(
        self, path_a, path_b, workload_a
    ):
        # Back-compat single-service server: routes added over /reload
        # live only in the implicit registry; server_close must drain
        # and close them (nobody else has a handle).
        service = SearchService(path_a, ServiceConfig(max_wait_ms=5.0))
        server = start_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = SearchClient(f"http://{host}:{port}")
        try:
            client.reload(path_b, route="hot")
            client.search(workload_a.queries[0], route="hot")
            added = server.registry.get("hot")
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            assert added._closed
            assert not added.scheduler._thread.is_alive()
            assert not service._closed  # still the caller's to close
        finally:
            service.close()

    def test_routes_share_one_metrics_registry(self, registry):
        assert registry.get("alpha").metrics is registry.get("beta").metrics
        assert registry.get("alpha").metrics is registry.metrics

    def test_same_spectrum_two_routes_different_psms(
        self, registry, workload_a, baseline_a, baseline_b
    ):
        differing = 0
        for query in workload_a.queries:
            psm_a = registry.get("alpha").search_one(query)
            psm_b = registry.get("beta").search_one(query)
            assert psm_a == baseline_a.get(query.identifier)
            assert psm_b == baseline_b.get(query.identifier)
            if psm_a is not None and psm_b is not None and psm_a != psm_b:
                assert psm_a.reference_id.startswith("route-a")
                assert psm_b.reference_id.startswith("route-b")
                differing += 1
        # The two libraries are disjoint: routing actually matters.
        assert differing > 0

    def test_per_route_cache_isolation(self, registry, workload_a, baseline_b):
        query = workload_a.queries[0]
        alpha = registry.get("alpha")
        beta = registry.get("beta")
        _first, cached = alpha.search_one_detailed(query)
        assert not cached
        _second, cached = alpha.search_one_detailed(query)
        assert cached  # warm on alpha...
        psm_b, cached = beta.search_one_detailed(query)
        assert not cached  # ...but never pre-warms beta
        assert psm_b == baseline_b.get(query.identifier)
        assert alpha.cache.stats()["hits"] == 1
        assert beta.cache.stats()["hits"] == 0

    def test_reload_one_route_keeps_others_hot(self, registry, workload_a):
        query = workload_a.queries[0]
        beta = registry.get("beta")
        beta.search_one(query)
        registry.reload_route("alpha")
        # Beta's cache survived alpha's swap (reload clears only alpha).
        _psm, cached = beta.search_one_detailed(query)
        assert cached
        assert registry.get("alpha")._generation == 1
        assert beta._generation == 0

    def test_reload_route_in_place_returns_same_service(self, registry):
        service = registry.get("alpha")
        assert registry.reload_route("alpha") is service

    def test_reload_unknown_route_without_index_raises(self, registry):
        with pytest.raises(UnknownRouteError):
            registry.reload_route("gamma")

    def test_reload_adds_new_route(
        self, registry, path_b, workload_a, baseline_b
    ):
        added = registry.reload_route("gamma", path_b)
        assert registry.get("gamma") is added
        assert "gamma" in registry.route_names()
        query = workload_a.queries[1]
        assert added.search_one(query) == baseline_b.get(query.identifier)

    def test_remove_route(self, registry):
        registry.reload_route("gamma", registry.get("beta").index_path)
        registry.remove_route("gamma")
        assert "gamma" not in registry
        with pytest.raises(UnknownRouteError):
            registry.get("gamma")

    def test_remove_default_route_rejected(self, registry):
        with pytest.raises(ValueError, match="default"):
            registry.remove_route("alpha")
        assert "alpha" in registry

    def test_remove_unknown_route_raises(self, registry):
        with pytest.raises(UnknownRouteError):
            registry.remove_route("gamma")

    def test_close_is_idempotent(self, path_a, path_b):
        registry = make_registry(path_a, path_b)
        registry.close()
        registry.close()

    def test_reload_route_after_close_raises(self, registry, path_b):
        registry.close()
        with pytest.raises(RuntimeError, match="closed"):
            registry.reload_route("alpha")
        with pytest.raises(RuntimeError, match="closed"):
            registry.reload_route("late-add", path_b)
        assert "late-add" not in registry

    def test_service_reload_after_close_raises(self, path_a):
        service = SearchService(path_a, ServiceConfig(max_wait_ms=5.0))
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.reload()

    def test_reload_racing_close_aborts_swap(self, path_a, monkeypatch):
        # close() completes while reload() is mid-build (its entry
        # check already passed): the swap must abort and the fresh
        # engine must be released, not installed into a dead service.
        service = SearchService(path_a, ServiceConfig(max_wait_ms=5.0))
        original_build = service._build_engine
        engines = []

        def racing_build(index):
            service.close()  # close wins the race during the build
            built = original_build(index)
            engines.append(built[0])
            return built

        monkeypatch.setattr(service, "_build_engine", racing_build)
        with pytest.raises(RuntimeError, match="closed"):
            service.reload()
        (engine,) = engines
        assert service._engine is not engine  # never installed

    def test_reload_racing_remove_reports_unknown_route(
        self, registry, monkeypatch
    ):
        # remove_route wins the race after reload_route fetched the
        # service: the caller must get "route gone", not a success for
        # a route that is no longer served.
        real_reload = SearchService.reload

        def racing_reload(self, index_path=None):
            registry.remove_route("beta")
            return real_reload(self, index_path)

        monkeypatch.setattr(SearchService, "reload", racing_reload)
        with pytest.raises(UnknownRouteError):
            registry.reload_route("beta")
        assert "beta" not in registry

    def test_healthz_and_stats_aggregate_routes(self, registry, workload_a):
        registry.get("beta").search_one(workload_a.queries[0])
        health = registry.healthz()
        assert health["status"] == "ok"
        assert health["default_route"] == "alpha"
        assert set(health["routes"]) == {"alpha", "beta"}
        # Top level stays back-compatible: it is the default route's view.
        assert health["route"] == "alpha"
        stats = registry.stats()
        assert set(stats["routes"]) == {"alpha", "beta"}
        assert stats["routes"]["beta"]["requests"]["search"] == 1
        assert stats["requests"]["search"] == 0  # alpha untouched


# ----------------------------------------------------------------------
# HTTP routing
# ----------------------------------------------------------------------


@pytest.fixture
def http_registry(path_a, path_b):
    registry = make_registry(path_a, path_b)
    server = start_server(registry)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield registry, SearchClient(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    registry.close()


class TestHttpRouting:
    def test_route_field_selects_library(
        self, http_registry, workload_a, baseline_a, baseline_b
    ):
        _registry, client = http_registry
        query = workload_a.queries[0]
        assert client.search(query) == baseline_a.get(query.identifier)
        assert client.search(query, route="beta") == baseline_b.get(
            query.identifier
        )
        reply = client.search_detailed(query, route="beta")
        assert reply["route"] == "beta"

    def test_client_route_binding(
        self, http_registry, workload_a, baseline_b
    ):
        _registry, client = http_registry
        beta = client.for_route("beta")
        query = workload_a.queries[2]
        assert beta.search(query) == baseline_b.get(query.identifier)
        assert beta.search_batch([query]) == [
            baseline_b.get(query.identifier)
        ]

    def test_search_batch_route_field(
        self, http_registry, workload_a, baseline_b
    ):
        _registry, client = http_registry
        psms = client.search_batch(workload_a.queries[:5], route="beta")
        assert psms == [
            baseline_b.get(query.identifier)
            for query in workload_a.queries[:5]
        ]

    def test_unknown_route_is_404(self, http_registry, workload_a):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client.search(workload_a.queries[0], route="gamma")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.search_batch(workload_a.queries[:2], route="gamma")
        assert excinfo.value.status == 404

    def test_bad_route_name_is_400(self, http_registry, workload_a):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client.search(workload_a.queries[0], route="bad route")
        assert excinfo.value.status == 400

    def test_bare_spectrum_with_route_is_400(self, http_registry, workload_a):
        # The legacy unwrapped form cannot carry a route; ignoring it
        # would silently answer from the wrong library.
        from repro.service import spectrum_to_payload

        _registry, client = http_registry
        payload = spectrum_to_payload(workload_a.queries[0])
        payload["route"] = "beta"
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/search", payload)
        assert excinfo.value.status == 400
        assert "wrapped form" in str(excinfo.value)

    def test_healthz_lists_routes(self, http_registry):
        registry, client = http_registry
        health = client.healthz()
        assert set(health["routes"]) == {"alpha", "beta"}
        assert health["default_route"] == "alpha"
        # Top level mirrors the default route; the per-route entries
        # carry each library's own size.
        assert (
            health["num_references"]
            == registry.get("alpha").index.num_references
        )
        assert (
            health["routes"]["beta"]["num_references"]
            == registry.get("beta").index.num_references
        )

    def test_stats_lists_routes(self, http_registry, workload_a):
        _registry, client = http_registry
        client.search(workload_a.queries[0], route="beta")
        stats = client.stats()
        assert stats["routes"]["beta"]["requests"]["search"] == 1

    def test_reload_add_search_remove_cycle(
        self, http_registry, path_b, workload_a, baseline_b
    ):
        _registry, client = http_registry
        reply = client.reload(path_b, route="gamma")
        assert reply["status"] == "ok"
        assert reply["route"] == "gamma"
        assert "gamma" in reply["routes"]
        query = workload_a.queries[0]
        assert client.search(query, route="gamma") == baseline_b.get(
            query.identifier
        )
        reply = client.reload(route="gamma", remove=True)
        assert reply["removed"] == "gamma"
        assert "gamma" not in reply["routes"]
        with pytest.raises(ServiceError) as excinfo:
            client.search(query, route="gamma")
        assert excinfo.value.status == 404

    def test_reload_single_route_over_http(self, http_registry, workload_a):
        registry, client = http_registry
        query = workload_a.queries[0]
        client.search(query, route="beta")
        reply = client.reload(route="alpha")
        assert reply["route"] == "alpha"
        assert registry.get("alpha")._generation == 1
        # Beta kept its cache across alpha's reload.
        assert client.search_detailed(query, route="beta")["cached"] is True

    def test_remove_default_route_is_400(self, http_registry):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client.reload(route="alpha", remove=True)
        assert excinfo.value.status == 400

    def test_remove_unknown_route_is_404(self, http_registry):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client.reload(route="gamma", remove=True)
        assert excinfo.value.status == 404

    def test_remove_without_route_is_400(self, http_registry):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/reload", {"remove": True})
        assert excinfo.value.status == 400

    def test_remove_with_index_is_400(self, http_registry, path_b):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                "/reload",
                {"route": "beta", "remove": True, "index": str(path_b)},
            )
        assert excinfo.value.status == 400

    def test_client_rejects_remove_with_index(self, http_registry, path_b):
        # The client surfaces the contradiction instead of silently
        # dropping the index path and removing the route.
        _registry, client = http_registry
        with pytest.raises(ValueError, match="mutually exclusive"):
            client.reload(path_b, route="beta", remove=True)
        assert "beta" in client.healthz()["routes"]

    def test_non_bool_remove_is_400(self, http_registry):
        _registry, client = http_registry
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/reload", {"route": "beta", "remove": "yes"}
            )
        assert excinfo.value.status == 400
