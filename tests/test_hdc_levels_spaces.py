"""Tests for level hypervectors and the HDSpace codebooks."""

import numpy as np
import pytest

from repro.hdc.levels import (
    ChunkedLevels,
    chunked_levels,
    flip_levels,
    level_similarity_profile,
)
from repro.hdc.spaces import HDSpace, HDSpaceConfig


class TestFlipLevels:
    def test_shape_and_alphabet(self, rng):
        levels = flip_levels(512, 8, rng)
        assert levels.shape == (8, 512)
        assert set(np.unique(levels)) <= {-1, 1}

    def test_similarity_decreases_monotonically(self, rng):
        levels = flip_levels(1024, 16, rng)
        profile = level_similarity_profile(levels)
        assert profile[0] == pytest.approx(1.0)
        assert np.all(np.diff(profile) < 0)

    def test_extreme_levels_near_orthogonal_halfway(self, rng):
        # l_0 vs l_{Q-1} differ in (Q-1)*D/(2Q) ~ D/2 positions,
        # so similarity ~ 0.
        levels = flip_levels(2048, 16, rng)
        profile = level_similarity_profile(levels)
        assert abs(profile[-1]) < 0.15

    def test_adjacent_levels_flip_exact_block(self, rng):
        dim, num_levels = 1024, 8
        levels = flip_levels(dim, num_levels, rng)
        block = dim // (2 * num_levels)
        for j in range(1, num_levels):
            differing = int(np.sum(levels[j] != levels[j - 1]))
            assert differing == block

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            flip_levels(512, 1, rng)
        with pytest.raises(ValueError):
            flip_levels(8, 16, rng)


class TestChunkedLevels:
    def test_chunk_structure(self, rng):
        chunked = chunked_levels(512, 8, 32, rng)
        assert isinstance(chunked, ChunkedLevels)
        expanded = chunked.expand()
        assert expanded.shape == (8, 512)
        # Within every chunk, all values are identical at every level.
        for level in range(8):
            for chunk_slice in chunked.chunk_slices():
                chunk = expanded[level, chunk_slice]
                assert np.all(chunk == chunk[0])

    def test_chunk_slices_cover_dim_exactly(self, rng):
        chunked = chunked_levels(517, 4, 32, rng)  # non-divisible dim
        slices = chunked.chunk_slices()
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 517
        assert slices[0].start == 0
        assert slices[-1].stop == 517

    def test_similarity_monotone(self, rng):
        chunked = chunked_levels(2048, 16, 128, rng)
        profile = level_similarity_profile(chunked.expand())
        assert np.all(np.diff(profile) < 1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            chunked_levels(512, 8, 4, rng)  # fewer chunks than levels
        with pytest.raises(ValueError):
            chunked_levels(16, 8, 32, rng)  # dim < chunks


class TestHDSpace:
    def test_id_alphabets_per_precision(self, binning):
        for bits, magnitude in ((1, 1), (2, 2), (3, 4)):
            space = HDSpace(
                HDSpaceConfig(
                    dim=256,
                    num_bins=binning.num_bins,
                    id_precision_bits=bits,
                    seed=1,
                )
            )
            vector = space.id_vector(10)
            values = set(np.unique(vector).tolist())
            expected = set(range(-magnitude, 0)) | set(range(1, magnitude + 1))
            assert values <= expected
            assert 0 not in values

    def test_id_vectors_deterministic_and_cached(self, small_space):
        a = small_space.id_vector(5)
        b = small_space.id_vector(5)
        assert a is b  # cached object
        fresh = HDSpace(small_space.config)
        assert np.array_equal(a, fresh.id_vector(5))

    def test_id_vectors_read_only(self, small_space):
        vector = small_space.id_vector(3)
        with pytest.raises(ValueError):
            vector[0] = 5

    def test_different_bins_near_orthogonal(self, binning):
        space = HDSpace(
            HDSpaceConfig(dim=4096, num_bins=binning.num_bins, seed=2)
        )
        a = space.id_vector(0).astype(np.int32)
        b = space.id_vector(1).astype(np.int32)
        # normalised correlation of independent random vectors ~ 0
        corr = abs(float(a @ b) / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert corr < 0.1

    def test_id_matrix_stacks_rows(self, small_space):
        matrix = small_space.id_matrix([1, 2, 3])
        assert matrix.shape == (3, small_space.dim)
        assert np.array_equal(matrix[1], small_space.id_vector(2))

    def test_out_of_range_raises(self, small_space):
        with pytest.raises(IndexError):
            small_space.id_vector(small_space.config.num_bins)
        with pytest.raises(IndexError):
            small_space.level_vector(small_space.num_levels)

    def test_seed_changes_codebooks(self, binning):
        a = HDSpace(HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=1))
        b = HDSpace(HDSpaceConfig(dim=256, num_bins=binning.num_bins, seed=2))
        assert not np.array_equal(a.id_vector(0), b.id_vector(0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HDSpaceConfig(dim=2)
        with pytest.raises(ValueError):
            HDSpaceConfig(id_precision_bits=4)
        with pytest.raises(ValueError):
            HDSpaceConfig(num_levels=1)

    def test_chunked_space_has_chunk_values(self, small_space):
        assert small_space.chunked_levels is not None
        assert np.array_equal(
            small_space.chunked_levels.expand(), small_space.level_vectors
        )

    def test_unchunked_space(self, binning):
        space = HDSpace(
            HDSpaceConfig(
                dim=256, num_bins=binning.num_bins, chunked=False, seed=3
            )
        )
        assert space.chunked_levels is None
        assert space.level_vectors.shape == (32, 256)
