"""Tests for post-search delta-mass / modification analysis."""

import pytest

from repro.oms.modification_analysis import (
    analyze_modifications,
    annotate_delta_mass,
    delta_mass_histogram,
)
from repro.oms.psm import PSM


def psm(delta, query="q", score=100.0):
    return PSM(query, "r", "PEPK/2", score, False, delta)


class TestAnnotate:
    def test_exact_phospho(self):
        result = annotate_delta_mass(79.966331)
        assert result is not None
        assert result[0] == "Phospho"
        assert abs(result[1]) < 1e-9

    def test_within_tolerance(self):
        result = annotate_delta_mass(15.99, tolerance_da=0.02)
        assert result is not None
        assert result[0] == "Oxidation"

    def test_outside_tolerance(self):
        assert annotate_delta_mass(15.90, tolerance_da=0.02) is None

    def test_negative_shift_is_loss(self):
        result = annotate_delta_mass(-14.01565)
        assert result is not None
        assert result[0].endswith("(loss)")

    def test_nearest_wins(self):
        # Acetyl 42.010565 vs Trimethyl 42.046950: 42.02 is nearer Acetyl.
        result = annotate_delta_mass(42.015, tolerance_da=0.05)
        assert result[0] == "Acetyl"


class TestHistogram:
    def test_groups_recurring_shifts(self):
        psms = [psm(79.966, f"q{i}") for i in range(5)] + [
            psm(14.016, f"p{i}") for i in range(3)
        ]
        peaks = delta_mass_histogram(psms, min_count=2)
        assert len(peaks) == 2
        assert peaks[0].count == 5
        assert peaks[0].annotation == "Phospho"
        assert peaks[1].annotation == "Methyl"

    def test_unmodified_excluded(self):
        psms = [psm(0.001, f"q{i}") for i in range(10)]
        assert delta_mass_histogram(psms) == []

    def test_min_count_filters_singletons(self):
        psms = [psm(79.966), psm(42.011)]
        assert delta_mass_histogram(psms, min_count=2) == []
        assert len(delta_mass_histogram(psms, min_count=1)) == 2

    def test_unannotated_peak_survives(self):
        psms = [psm(123.456, f"q{i}") for i in range(4)]
        peaks = delta_mass_histogram(psms, min_count=2)
        assert len(peaks) == 1
        assert peaks[0].annotation is None

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            delta_mass_histogram([psm(10.0)], bin_width_da=0)


class TestReport:
    def test_counts_and_fraction(self):
        psms = (
            [psm(0.0, f"u{i}") for i in range(6)]
            + [psm(79.966, f"m{i}") for i in range(3)]
            + [psm(500.123, f"x{i}") for i in range(2)]
        )
        report = analyze_modifications(psms)
        assert report.num_psms == 11
        assert report.num_unmodified == 6
        assert report.num_modified == 5
        assert report.annotated_fraction == pytest.approx(3 / 5)

    def test_top_modifications(self):
        psms = [psm(79.966, f"a{i}") for i in range(4)] + [
            psm(15.9949, f"b{i}") for i in range(2)
        ]
        report = analyze_modifications(psms)
        top = report.top_modifications()
        assert top[0] == ("Phospho", 4)
        assert top[1] == ("Oxidation", 2)

    def test_render_contains_key_lines(self):
        report = analyze_modifications([psm(79.966, f"q{i}") for i in range(3)])
        text = report.render()
        assert "modified" in text
        assert "Phospho" in text

    def test_end_to_end_on_pipeline_output(self, small_workload):
        from repro.hdc import HDSpaceConfig
        from repro.oms import OmsPipeline, PipelineConfig

        pipeline = OmsPipeline.from_workload(
            small_workload,
            PipelineConfig(space=HDSpaceConfig(dim=1024, seed=4)),
        )
        result = pipeline.run_workload(small_workload)
        report = analyze_modifications(result.accepted_psms, min_count=1)
        assert report.num_psms == len(result.accepted_psms)
        # Every synthetic modification comes from the known PTM table,
        # so annotated fraction should be high when any are found.
        if report.num_modified >= 3:
            assert report.annotated_fraction >= 0.5
