"""Property-based tests (hypothesis) for the HDC core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hdc.encoder import sign_with_tiebreak
from repro.hdc.noise import flip_bits, measured_bit_error_rate
from repro.hdc.packing import (
    pack_bipolar,
    pack_cells,
    unpack_bipolar,
    unpack_cells,
)
from repro.hdc.similarity import (
    batch_dot_similarity,
    dot_similarity,
    hamming_similarity,
)

def bipolar_vectors(min_d=1, max_d=257):
    return arrays(
        np.int8,
        st.integers(min_d, max_d),
        elements=st.sampled_from([np.int8(-1), np.int8(1)]),
    )


@st.composite
def bipolar_pairs(draw, min_d=1, max_d=257):
    dim = draw(st.integers(min_d, max_d))
    def make():
        return draw(
            arrays(np.int8, dim, elements=st.sampled_from([np.int8(-1), np.int8(1)]))
        )
    return make(), make()


class TestPackingProperties:
    @given(vector=bipolar_vectors(), bits=st.sampled_from([1, 2, 3]))
    @settings(max_examples=80, deadline=None)
    def test_cell_pack_roundtrip(self, vector, bits):
        cells = pack_cells(vector, bits)
        assert np.array_equal(unpack_cells(cells, bits, len(vector)), vector)
        assert cells.max(initial=0) < 2**bits

    @given(vector=bipolar_vectors())
    @settings(max_examples=80, deadline=None)
    def test_bit_pack_roundtrip(self, vector):
        packed = pack_bipolar(vector)
        assert np.array_equal(unpack_bipolar(packed, len(vector)), vector)

    @given(vector=bipolar_vectors(), bits=st.sampled_from([1, 2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_cell_count_is_ceiling(self, vector, bits):
        cells = pack_cells(vector, bits)
        assert len(cells) == -(-len(vector) // bits)


class TestSimilarityProperties:
    @given(pair=bipolar_pairs())
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert dot_similarity(a, b) == dot_similarity(b, a)
        assert hamming_similarity(a, b) == hamming_similarity(b, a)

    @given(pair=bipolar_pairs())
    @settings(max_examples=80, deadline=None)
    def test_hamming_bounds_and_relation(self, pair):
        a, b = pair
        dim = len(a)
        similarity = hamming_similarity(a, b)
        assert 0 <= similarity <= dim
        assert dot_similarity(a, b) == 2 * similarity - dim

    @given(vector=bipolar_vectors())
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_maximal(self, vector):
        assert hamming_similarity(vector, vector) == len(vector)
        assert hamming_similarity(vector, -vector) == 0

    @given(pair=bipolar_pairs())
    @settings(max_examples=50, deadline=None)
    def test_batch_matches_scalar(self, pair):
        a, b = pair
        scores = batch_dot_similarity(a, b[np.newaxis, :])
        assert int(scores[0]) == dot_similarity(a, b)


class TestNoiseProperties:
    @given(
        vector=bipolar_vectors(min_d=64, max_d=512),
        ber=st.floats(0.0, 0.5),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_flip_rate_never_exceeds_alphabet(self, vector, ber, seed):
        rng = np.random.default_rng(seed)
        noisy = flip_bits(vector, ber, rng)
        assert noisy.shape == vector.shape
        assert set(np.unique(noisy)) <= {-1, 1}
        measured = measured_bit_error_rate(vector, noisy)
        assert 0.0 <= measured <= 1.0

    @given(vector=bipolar_vectors(min_d=32), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_zero_ber_identity(self, vector, seed):
        rng = np.random.default_rng(seed)
        assert np.array_equal(flip_bits(vector, 0.0, rng), vector)

    @given(
        vector=bipolar_vectors(min_d=64, max_d=512),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_double_flip_at_full_rate_restores(self, vector, seed):
        """BER=1 flips everything: flipping twice restores the input."""
        rng = np.random.default_rng(seed)
        flipped = flip_bits(vector, 1.0, rng)
        assert np.array_equal(-flipped, vector)


class TestSignProperties:
    @given(
        accumulator=arrays(
            np.float64,
            st.integers(1, 128),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_sign_output_always_bipolar(self, accumulator, seed):
        rng = np.random.default_rng(seed)
        tiebreak = (
            rng.integers(0, 2, len(accumulator), dtype=np.int8) * 2 - 1
        ).astype(np.int8)
        result = sign_with_tiebreak(accumulator, tiebreak)
        assert set(np.unique(result)) <= {-1, 1}
        positive = accumulator > 0
        negative = accumulator < 0
        assert np.all(result[positive] == 1)
        assert np.all(result[negative] == -1)
        zero = accumulator == 0
        assert np.all(result[zero] == tiebreak[zero])
