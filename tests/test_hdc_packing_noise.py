"""Tests for bit/cell packing and noise injection."""

import numpy as np
import pytest

from repro.hdc.noise import (
    flip_bits,
    measured_bit_error_rate,
    perturb_accumulator,
    shift_cell_levels,
)
from repro.hdc.packing import (
    bipolar_to_bits,
    bits_to_bipolar,
    cells_per_hypervector,
    pack_bipolar,
    pack_cells,
    popcount,
    unpack_bipolar,
    unpack_cells,
)


class TestBitPacking:
    def test_popcount_known_values(self):
        assert popcount(np.array([0], dtype=np.uint8))[()] == 0
        assert popcount(np.array([255], dtype=np.uint8))[()] == 8
        assert popcount(np.array([0b1010_0110], dtype=np.uint8))[()] == 4

    def test_popcount_paths_agree(self, rng):
        """The native np.bitwise_count path and the LUT fallback are
        bit-identical (dtype included) on every byte value and shape."""
        from repro.hdc.packing import _popcount_lut

        every_byte = np.arange(256, dtype=np.uint8)
        assert np.array_equal(popcount(every_byte), _popcount_lut(every_byte))
        words = rng.integers(0, 256, size=(7, 33), dtype=np.uint8)
        fast = popcount(words)
        lut = _popcount_lut(words)
        assert fast.dtype == np.int64
        assert lut.dtype == np.int64
        assert np.array_equal(fast, lut)
        if hasattr(np, "bitwise_count"):
            # On NumPy >= 2.0 the active path really is the native ufunc.
            assert np.array_equal(
                np.bitwise_count(words).astype(np.int64), lut
            )

    def test_pack_unpack_roundtrip(self, rng):
        for dim in (8, 64, 100, 513):
            vectors = (rng.integers(0, 2, (4, dim)) * 2 - 1).astype(np.int8)
            assert np.array_equal(
                unpack_bipolar(pack_bipolar(vectors), dim), vectors
            )

    def test_bipolar_bits_mapping(self):
        bipolar = np.array([-1, 1, 1, -1], dtype=np.int8)
        bits = bipolar_to_bits(bipolar)
        assert bits.tolist() == [0, 1, 1, 0]
        assert np.array_equal(bits_to_bipolar(bits), bipolar)


class TestCellPacking:
    @pytest.mark.parametrize("bits_per_cell", [1, 2, 3])
    def test_roundtrip_all_precisions(self, rng, bits_per_cell):
        for dim in (24, 100, 512, 1025):
            vectors = (rng.integers(0, 2, (3, dim)) * 2 - 1).astype(np.int8)
            cells = pack_cells(vectors, bits_per_cell)
            assert cells.dtype == np.uint8
            assert cells.max() < 2**bits_per_cell
            restored = unpack_cells(cells, bits_per_cell, dim)
            assert np.array_equal(restored, vectors)

    def test_known_packing(self):
        # bits 1,0,1 -> MSB-first value 5 at 3 bits/cell.
        vector = np.array([1, -1, 1], dtype=np.int8)
        assert pack_cells(vector, 3).tolist() == [5]
        # Two cells at 2 bits: (1,1)->3, (0,pad0)->0b10? No: (0,pad)->00
        vector = np.array([1, 1, -1], dtype=np.int8)
        assert pack_cells(vector, 2).tolist() == [3, 0]

    def test_single_vector_shape(self, rng):
        vector = (rng.integers(0, 2, 32) * 2 - 1).astype(np.int8)
        cells = pack_cells(vector, 2)
        assert cells.ndim == 1
        assert len(cells) == 16

    def test_cell_count_helper(self):
        assert cells_per_hypervector(8192, 1) == 8192
        assert cells_per_hypervector(8192, 2) == 4096
        assert cells_per_hypervector(8192, 3) == 2731  # ceil

    def test_storage_density_is_the_paper_claim(self):
        """3 bits/cell stores 3x the hypervectors of SLC in equal cells."""
        cells_budget = 3_000_000
        dim = 8192
        slc = cells_budget // cells_per_hypervector(dim, 1)
        mlc3 = cells_budget // cells_per_hypervector(dim, 3)
        assert mlc3 >= 2.99 * slc

    def test_invalid_bits_raise(self, rng):
        vector = (rng.integers(0, 2, 8) * 2 - 1).astype(np.int8)
        with pytest.raises(ValueError):
            pack_cells(vector, 4)
        with pytest.raises(ValueError):
            unpack_cells(np.zeros(4, dtype=np.uint8), 0, 8)


class TestNoise:
    def test_flip_bits_rate(self, rng):
        vectors = np.ones((100, 1000), dtype=np.int8)
        noisy = flip_bits(vectors, 0.1, rng)
        rate = measured_bit_error_rate(vectors, noisy)
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_flip_zero_rate_identity(self, rng):
        vectors = np.ones((4, 64), dtype=np.int8)
        noisy = flip_bits(vectors, 0.0, rng)
        assert np.array_equal(noisy, vectors)
        assert noisy is not vectors  # a copy, never aliased

    def test_flip_preserves_alphabet(self, rng):
        vectors = (rng.integers(0, 2, (8, 256)) * 2 - 1).astype(np.int8)
        noisy = flip_bits(vectors, 0.3, rng)
        assert set(np.unique(noisy)) <= {-1, 1}

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            flip_bits(np.ones(4, dtype=np.int8), 1.5, rng)

    def test_measured_ber_mismatched_shapes(self):
        with pytest.raises(ValueError):
            measured_bit_error_rate(np.ones(4), np.ones(5))

    def test_shift_cell_levels(self, rng):
        cells = rng.integers(0, 8, size=10_000).astype(np.uint8)
        noisy = shift_cell_levels(cells, 0.2, 8, rng)
        changed = np.mean(cells != noisy)
        # Interior cells always change when hit; boundary cells may clip
        # back, so the observed rate is a bit under the nominal 20%.
        assert 0.1 < changed <= 0.21
        assert noisy.max() < 8
        assert np.abs(noisy.astype(int) - cells.astype(int)).max() <= 1

    def test_perturb_accumulator_scaling(self, rng):
        accumulator = rng.normal(0, 10, 10_000)
        noisy = perturb_accumulator(accumulator, 0.5, rng)
        error = noisy - accumulator
        rms = np.sqrt(np.mean(accumulator**2))
        assert np.std(error) == pytest.approx(0.5 * rms, rel=0.1)

    def test_perturb_zero_noise(self, rng):
        accumulator = np.arange(10, dtype=float)
        assert np.array_equal(
            perturb_accumulator(accumulator, 0.0, rng), accumulator
        )
