"""Tests for the performance/energy models (Figure 12, Section 5.3.3)."""

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf import (
    ALL_BASELINES,
    ANN_SOLO_CPU,
    ANN_SOLO_GPU,
    HYPEROMS_GPU,
    AcceleratorPerfModel,
    PAPER_HEK293_SHAPE,
    PAPER_IPRG2012_SHAPE,
    WorkloadShape,
    energy_improvements,
    hd_operation_count,
    platform_costs,
    sdp_operation_count,
    speedups_vs_this_work,
)


class TestWorkloadShape:
    def test_open_candidates(self):
        shape = WorkloadShape(
            num_queries=100, num_references=1000, open_candidate_fraction=0.3
        )
        assert shape.avg_open_candidates == pytest.approx(300)

    def test_paper_shapes(self):
        assert PAPER_IPRG2012_SHAPE.num_queries == 16_000
        assert PAPER_IPRG2012_SHAPE.num_references == 1_000_000
        assert PAPER_HEK293_SHAPE.num_references == 3_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadShape(num_queries=1, num_references=0)
        with pytest.raises(ValueError):
            WorkloadShape(
                num_queries=1, num_references=1, open_candidate_fraction=0
            )


class TestOperationCounts:
    def test_sdp_scales_with_queries(self):
        small = WorkloadShape(num_queries=100, num_references=10_000)
        large = WorkloadShape(num_queries=200, num_references=10_000)
        assert sdp_operation_count(large) == pytest.approx(
            2 * sdp_operation_count(small)
        )

    def test_hd_scales_with_library(self):
        small = WorkloadShape(num_queries=100, num_references=10_000)
        large = WorkloadShape(num_queries=100, num_references=100_000)
        assert hd_operation_count(large) > 5 * hd_operation_count(small)

    def test_ann_probe_caps_sdp_work(self):
        # ANN-SoLo rescoring is capped by its index probe count, so SDP
        # op count saturates with library size.
        small = WorkloadShape(num_queries=10, num_references=10_000)
        large = WorkloadShape(num_queries=10, num_references=10_000_000)
        assert sdp_operation_count(large) == pytest.approx(
            sdp_operation_count(small)
        )


class TestAcceleratorModel:
    def test_stage_costs_positive(self):
        model = AcceleratorPerfModel()
        encode = model.encode_cost(PAPER_IPRG2012_SHAPE)
        search = model.search_cost(PAPER_IPRG2012_SHAPE)
        assert encode.cycles > 0 and encode.seconds > 0 and encode.joules > 0
        assert search.cycles > 0
        # Search dominates: the candidate sweep touches 300k references.
        assert search.joules > encode.joules

    def test_more_arrays_means_faster_search(self):
        few = AcceleratorPerfModel(AcceleratorConfig(num_arrays=16))
        many = AcceleratorPerfModel(AcceleratorConfig(num_arrays=1024))
        assert many.search_cost(PAPER_IPRG2012_SHAPE).seconds < few.search_cost(
            PAPER_IPRG2012_SHAPE
        ).seconds

    def test_total_is_sum_of_stages(self):
        model = AcceleratorPerfModel()
        total = model.total_cost(PAPER_IPRG2012_SHAPE)
        encode = model.encode_cost(PAPER_IPRG2012_SHAPE)
        search = model.search_cost(PAPER_IPRG2012_SHAPE)
        assert total.seconds == pytest.approx(encode.seconds + search.seconds)
        assert total.joules == pytest.approx(encode.joules + search.joules)


class TestPaperRatios:
    def test_speedups_near_paper(self):
        speedups = speedups_vs_this_work(PAPER_IPRG2012_SHAPE)
        # Paper Section 5.3.3: 76.7x / 24.8x / 1.7x.
        assert speedups[ANN_SOLO_CPU.name] == pytest.approx(76.7, rel=0.25)
        assert speedups[ANN_SOLO_GPU.name] == pytest.approx(24.8, rel=0.25)
        assert speedups[HYPEROMS_GPU.name] == pytest.approx(1.7, rel=0.35)

    def test_energy_ordering_matches_figure_12(self):
        improvements = energy_improvements(PAPER_IPRG2012_SHAPE)
        assert improvements[ANN_SOLO_CPU.name] == pytest.approx(1.0)
        assert (
            improvements[ANN_SOLO_CPU.name]
            < improvements[ANN_SOLO_GPU.name]
            < improvements[HYPEROMS_GPU.name]
            < improvements["this-work-mlc-rram"]
        )

    def test_three_orders_of_magnitude_energy_gap(self):
        improvements = energy_improvements(PAPER_IPRG2012_SHAPE)
        assert 500 <= improvements["this-work-mlc-rram"] <= 30_000

    def test_advantage_holds_at_hek293_scale(self):
        speedups = speedups_vs_this_work(PAPER_HEK293_SHAPE)
        assert all(value > 1.0 for value in speedups.values())

    def test_platform_costs_complete(self):
        costs = platform_costs(PAPER_IPRG2012_SHAPE)
        assert len(costs) == len(ALL_BASELINES) + 1
        assert all(cost.seconds > 0 and cost.joules > 0 for cost in costs.values())

    def test_cost_comparison_helpers(self):
        costs = platform_costs(PAPER_IPRG2012_SHAPE)
        ours = costs["this-work-mlc-rram"]
        cpu = costs[ANN_SOLO_CPU.name]
        assert ours.speedup_vs(cpu) == pytest.approx(
            cpu.seconds / ours.seconds
        )
        assert ours.energy_improvement_vs(cpu) == pytest.approx(
            cpu.joules / ours.joules
        )
