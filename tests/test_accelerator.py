"""Tests for the in-memory encoder/search backend and accelerator facade."""

import numpy as np
import pytest

from repro.accelerator.accelerator import OmsAccelerator, StoredQueryEncoder
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.im_encoder import InMemoryEncoder
from repro.accelerator.im_search import InMemorySearchBackend
from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.preprocessing import preprocess
from repro.ms.vectorize import BinningConfig, vectorize
from repro.rram.crossbar import CrossbarConfig
from repro.rram.device import DeviceConfig, RRAMDeviceModel

NOISELESS_DEVICE = DeviceConfig(
    sigma_program_us=0.0,
    sigma_relax_us_per_decade=0.0,
    tail_probability_per_decade=0.0,
    drift_fraction_per_decade=0.0,
)
CLEAN_CROSSBAR = CrossbarConfig(
    read_noise_us=0.0, driver_droop=0.0, offset_sigma_v=0.0, adc_bits=16
)


@pytest.fixture(scope="module")
def setup():
    from repro.ms.synthetic import WorkloadConfig, build_workload

    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=512,
            num_bins=binning.num_bins,
            num_levels=8,
            id_precision_bits=3,
            chunked=True,
            seed=5,
        )
    )
    exact = SpectrumEncoder(space, binning)
    workload = build_workload(
        WorkloadConfig(name="acc", num_references=40, num_queries=15, seed=21)
    )
    vectors = [
        vectorize(preprocess(s), binning) for s in workload.references[:8]
    ]
    return workload, exact, vectors, binning


class TestInMemoryEncoder:
    def test_clean_hardware_matches_exact_encoder(self, setup):
        _, exact, vectors, _ = setup
        encoder = InMemoryEncoder(
            exact,
            AcceleratorConfig(
                crossbar=CLEAN_CROSSBAR,
                device=NOISELESS_DEVICE,
                encoder_adc_bits=16,
                seed=9,
            ),
        )
        for vector in vectors[:4]:
            analog = encoder.encode_vector(vector)
            digital = exact.encode_vector(vector)
            # Dimensions with a zero accumulator are resolved by the
            # digital tiebreak, which the analog path cannot see — they
            # are excluded (cf. encoding_bit_error_rate).
            nonzero = exact.accumulate(vector) != 0
            assert np.array_equal(analog[nonzero], digital[nonzero])

    def test_noisy_hardware_close_but_not_exact(self, setup):
        _, exact, vectors, _ = setup
        encoder = InMemoryEncoder(exact, AcceleratorConfig(seed=9))
        ber = encoder.encoding_bit_error_rate(vectors)
        assert 0.0 < ber < 0.25

    def test_requires_chunked_space(self, setup, binning):
        space = HDSpace(
            HDSpaceConfig(
                dim=256, num_bins=binning.num_bins, chunked=False, seed=1
            )
        )
        exact = SpectrumEncoder(space, binning)
        with pytest.raises(ValueError, match="chunked"):
            InMemoryEncoder(exact)

    def test_codebook_rows_cached(self, setup):
        _, exact, vectors, _ = setup
        encoder = InMemoryEncoder(exact, AcceleratorConfig(seed=9))
        encoder.encode_vector(vectors[0])
        first = encoder.stats.programmed_rows
        encoder.encode_vector(vectors[0])
        assert encoder.stats.programmed_rows == first  # no reprogramming

    def test_stats_accumulate(self, setup):
        _, exact, vectors, _ = setup
        encoder = InMemoryEncoder(exact, AcceleratorConfig(seed=9))
        encoder.encode_vector(vectors[0])
        assert encoder.stats.spectra_encoded == 1
        assert encoder.stats.sensing_cycles > 0
        assert encoder.stats.adc_conversions >= encoder.space.dim


class TestInMemorySearchBackend:
    def test_clean_hardware_matches_exact_scores(self, rng):
        backend = InMemorySearchBackend(
            AcceleratorConfig(
                crossbar=CLEAN_CROSSBAR, device=NOISELESS_DEVICE, seed=3
            )
        )
        refs = (rng.integers(0, 2, (30, 256)) * 2 - 1).astype(np.int8)
        backend.prepare(refs)
        query = (rng.integers(0, 2, 256) * 2 - 1).astype(np.int8)
        positions = np.arange(30)
        analog = backend.scores(query, positions)
        exact = backend.exact_scores(query, positions)
        assert np.allclose(analog, exact, atol=1.0)

    def test_noisy_scores_preserve_ranking_of_strong_matches(self, rng):
        backend = InMemorySearchBackend(AcceleratorConfig(seed=3))
        refs = (rng.integers(0, 2, (50, 1024)) * 2 - 1).astype(np.int8)
        backend.prepare(refs)
        # The query IS reference 7 with 5% flips: its score dominates.
        query = refs[7].copy()
        flips = rng.choice(1024, size=51, replace=False)
        query[flips] = -query[flips]
        scores = backend.scores(query, np.arange(50))
        assert int(np.argmax(scores)) == 7

    def test_search_nrmse_in_plausible_range(self, rng):
        backend = InMemorySearchBackend(AcceleratorConfig(seed=3))
        refs = (rng.integers(0, 2, (40, 512)) * 2 - 1).astype(np.int8)
        backend.prepare(refs)
        query = (rng.integers(0, 2, 512) * 2 - 1).astype(np.int8)
        nrmse = backend.search_nrmse(query, np.arange(40))
        assert 0.0 < nrmse < 0.3

    def test_unprepared_backend_raises(self, rng):
        backend = InMemorySearchBackend(AcceleratorConfig(seed=3))
        with pytest.raises(RuntimeError):
            backend.scores(np.ones(8, dtype=np.int8), np.arange(2))

    def test_stats(self, rng):
        config = AcceleratorConfig(seed=3)
        backend = InMemorySearchBackend(config)
        refs = (rng.integers(0, 2, (10, 256)) * 2 - 1).astype(np.int8)
        backend.prepare(refs)
        query = (rng.integers(0, 2, 256) * 2 - 1).astype(np.int8)
        backend.scores(query, np.arange(10))
        chunks = -(-256 // config.crossbar.max_active_pairs)
        assert backend.stats.queries == 1
        assert backend.stats.sensing_cycles == chunks
        assert backend.stats.adc_conversions == chunks * 10


class TestStoredQueryEncoder:
    def test_roundtrip_through_storage_adds_bounded_errors(self, setup):
        _, exact, vectors, _ = setup
        device = RRAMDeviceModel(seed=4)
        stored = StoredQueryEncoder(
            exact, bits_per_cell=3, device=device, storage_time_s=3600.0, seed=5
        )
        from repro.ms.synthetic import WorkloadConfig, build_workload

        workload = build_workload(
            WorkloadConfig(name="sq", num_references=3, num_queries=0, seed=2)
        )
        spectrum = preprocess(workload.references[0])
        clean = exact.encode(spectrum)
        noisy = stored.encode(spectrum)
        ber = float(np.mean(clean != noisy))
        assert 0.0 < ber < 0.2  # 3 bpc after 1h: noticeable, tolerable


class TestOmsAcceleratorFacade:
    def test_end_to_end_search_quality(self, setup):
        workload, _, _, _ = setup
        accelerator = OmsAccelerator(
            config=AcceleratorConfig(seed=7),
            space_config=HDSpaceConfig(
                dim=512, num_levels=8, id_precision_bits=3, seed=3
            ),
        )
        searcher = accelerator.build_searcher(workload.references)
        result = searcher.search(workload.queries)
        assert result.backend_name == "mlc-rram"
        correct = sum(
            1
            for psm in result.psms
            if workload.truth.get(psm.query_id) == psm.peptide_key
        )
        assert correct >= 0.6 * len(result.psms)

    def test_space_forced_chunked(self):
        accelerator = OmsAccelerator(
            space_config=HDSpaceConfig(dim=256, chunked=False, seed=1)
        )
        assert accelerator.space.chunked_levels is not None

    def test_perf_model_accessible(self):
        accelerator = OmsAccelerator(
            space_config=HDSpaceConfig(dim=256, seed=1)
        )
        from repro.accelerator.perf import WorkloadShape

        cost = accelerator.perf_model().total_cost(
            WorkloadShape(num_queries=100, num_references=1000)
        )
        assert cost.seconds > 0
        assert cost.joules > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(storage_bits_per_cell=5)
        with pytest.raises(ValueError):
            AcceleratorConfig(num_arrays=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_mhz=0)
