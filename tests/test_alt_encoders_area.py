"""Tests for alternative encoders (Sec 3.2) and the area model."""

import numpy as np
import pytest

from repro.hdc.alt_encoders import PermutationEncoder, RandomProjectionEncoder
from repro.rram.area import AreaModel


@pytest.fixture(scope="module")
def alt_setup():
    from repro.hdc.spaces import HDSpace, HDSpaceConfig
    from repro.ms.preprocessing import preprocess
    from repro.ms.synthetic import WorkloadConfig, build_workload
    from repro.ms.vectorize import BinningConfig, vectorize

    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=512, num_bins=binning.num_bins, num_levels=8, seed=13
        )
    )
    workload = build_workload(
        WorkloadConfig(name="alt", num_references=12, num_queries=0, seed=6)
    )
    vectors = [
        vectorize(preprocess(s), binning) for s in workload.references
    ]
    return space, binning, vectors


class TestAlternativeEncoders:
    @pytest.mark.parametrize(
        "encoder_cls", [RandomProjectionEncoder, PermutationEncoder]
    )
    def test_output_bipolar_and_deterministic(self, alt_setup, encoder_cls):
        space, binning, vectors = alt_setup
        encoder = encoder_cls(space, binning)
        a = encoder.encode_vector(vectors[0])
        b = encoder.encode_vector(vectors[0])
        assert a.dtype == np.int8
        assert set(np.unique(a)) <= {-1, 1}
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "encoder_cls", [RandomProjectionEncoder, PermutationEncoder]
    )
    def test_distinct_spectra_distinct_codes(self, alt_setup, encoder_cls):
        space, binning, vectors = alt_setup
        encoder = encoder_cls(space, binning)
        hvs = encoder.encode_batch(vectors[:6])
        dim = space.dim
        for i in range(6):
            for j in range(i + 1, 6):
                agreement = int(np.sum(hvs[i] == hvs[j]))
                assert agreement < 0.8 * dim  # not collapsed

    @pytest.mark.parametrize(
        "encoder_cls", [RandomProjectionEncoder, PermutationEncoder]
    )
    def test_empty_vector_falls_back_to_tiebreak(self, alt_setup, encoder_cls):
        from repro.ms.vectorize import SparseVector

        space, binning, _ = alt_setup
        encoder = encoder_cls(space, binning)
        empty = SparseVector(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            binning.num_bins,
        )
        assert np.array_equal(encoder.encode_vector(empty), space.tiebreak)

    def test_batch_shapes(self, alt_setup):
        space, binning, vectors = alt_setup
        encoder = RandomProjectionEncoder(space, binning)
        batch = encoder.encode_batch(vectors[:5])
        assert batch.shape == (5, space.dim)

    def test_bin_count_mismatch_raises(self, alt_setup):
        from repro.ms.vectorize import BinningConfig

        space, _, _ = alt_setup
        wrong = BinningConfig(min_mz=100, max_mz=200, bin_width=1.0)
        with pytest.raises(ValueError):
            RandomProjectionEncoder(space, wrong)
        with pytest.raises(ValueError):
            PermutationEncoder(space, wrong)


class TestAreaModel:
    def test_slc_rram_is_3x_sram(self):
        model = AreaModel()
        assert model.density_vs_sram(1) == pytest.approx(3.0, rel=0.01)

    def test_mlc_scales_linearly(self):
        model = AreaModel()
        assert model.density_vs_sram(3) == pytest.approx(9.0, rel=0.01)
        assert model.rram_bits_per_mm2(3) == pytest.approx(
            3 * model.rram_bits_per_mm2(1)
        )

    def test_hypervector_density(self):
        model = AreaModel()
        # 3 bits/cell needs a third of the cells (ceil), so ~3x the HVs.
        slc = model.hypervectors_per_mm2(8192, 1)
        mlc = model.hypervectors_per_mm2(8192, 3)
        assert mlc == pytest.approx(3 * slc, rel=0.01)

    def test_library_area_scales_with_spectra(self):
        model = AreaModel()
        one = model.library_area_mm2(1_000, 8192, 3)
        ten = model.library_area_mm2(10_000, 8192, 3)
        assert ten == pytest.approx(10 * one)

    def test_node_scaling(self):
        # Same layout at a smaller node occupies less area.
        coarse = AreaModel(feature_nm=130.0)
        fine = AreaModel(feature_nm=22.0)
        assert fine.rram_cell_area_um2() < coarse.rram_cell_area_um2()
        # Density RATIO is node-independent.
        assert fine.density_vs_sram(2) == pytest.approx(
            coarse.density_vs_sram(2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaModel(feature_nm=0)
        with pytest.raises(ValueError):
            AreaModel(periphery_overhead=0.5)
        with pytest.raises(ValueError):
            AreaModel().rram_bits_per_mm2(0)
