"""Cross-module integration tests: the paper's claims end to end."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, OmsAccelerator
from repro.hdc import HDSpaceConfig
from repro.ms import append_decoys, build_workload, WorkloadConfig
from repro.oms import (
    HDSearchConfig,
    OmsPipeline,
    PipelineConfig,
    grouped_fdr,
)
from repro.oms.pipeline import decoy_factory_for


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(
            name="integration",
            num_references=250,
            num_queries=60,
            modification_probability=0.5,
            foreign_fraction=0.15,
            seed=2024,
        )
    )


class TestOpenVsStandard:
    """Section 1: OMS's reason to exist."""

    def test_open_search_recovers_modified_peptides(self, workload):
        results = {}
        for mode in ("standard", "open"):
            config = PipelineConfig(
                space=HDSpaceConfig(dim=1024, id_precision_bits=3, seed=3),
                search=HDSearchConfig(mode=mode),
            )
            pipeline = OmsPipeline.from_workload(workload, config)
            results[mode] = pipeline.run_workload(workload)
        modified_open = sum(
            1 for psm in results["open"].accepted_psms if psm.is_modified_match
        )
        modified_standard = sum(
            1
            for psm in results["standard"].accepted_psms
            if psm.is_modified_match
        )
        assert modified_standard == 0  # narrow window cannot see PTMs
        assert modified_open > 0
        assert (
            results["open"].num_identifications
            > results["standard"].num_identifications
        )

    def test_foreign_queries_mostly_rejected(self, workload):
        config = PipelineConfig(
            space=HDSpaceConfig(dim=1024, id_precision_bits=3, seed=3)
        )
        pipeline = OmsPipeline.from_workload(workload, config)
        result = pipeline.run_workload(workload)
        foreign_accepted = sum(
            1
            for psm in result.accepted_psms
            if workload.truth.get(psm.query_id) is None
        )
        # At 1% FDR nearly all foreign spectra must be filtered out.
        assert foreign_accepted <= max(2, 0.05 * len(result.accepted_psms))


class TestHDRobustnessClaim:
    """Abstract: 'tolerate up to 10% memory errors'."""

    def test_identifications_survive_10pct_ber(self, workload):
        clean_config = PipelineConfig(
            space=HDSpaceConfig(dim=2048, id_precision_bits=3, seed=3)
        )
        noisy_config = PipelineConfig(
            space=HDSpaceConfig(dim=2048, id_precision_bits=3, seed=3),
            search=HDSearchConfig(query_ber=0.10, reference_ber=0.10),
        )
        clean = OmsPipeline.from_workload(workload, clean_config).run_workload(
            workload
        )
        noisy = OmsPipeline.from_workload(workload, noisy_config).run_workload(
            workload
        )
        assert noisy.num_identifications >= 0.75 * clean.num_identifications
        # Accuracy of what is identified barely moves.
        if noisy.accepted_psms:
            assert noisy.evaluation["precision"] >= 0.85


class TestAcceleratorEquivalence:
    """Section 5.3.1: the RRAM path agrees with the digital tools."""

    def test_rram_and_digital_agree_on_most_identifications(self, workload):
        library = append_decoys(
            workload.references, decoy_factory_for(workload), seed=4
        )
        space_config = HDSpaceConfig(
            dim=1024, num_levels=16, id_precision_bits=3, seed=5
        )
        digital = OmsPipeline(
            library[: len(workload.references)],
            decoy_factory_for(workload),
            PipelineConfig(space=space_config),
        ).run_workload(workload)

        accelerator = OmsAccelerator(
            config=AcceleratorConfig(seed=6), space_config=space_config
        )
        searcher = accelerator.build_searcher(library)
        accepted = grouped_fdr(searcher.search(workload.queries).psms, 0.01)
        rram_ids = {psm.peptide_key for psm in accepted if psm.peptide_key}

        digital_ids = digital.identified_peptides
        if digital_ids:
            overlap = len(rram_ids & digital_ids) / len(digital_ids)
            assert overlap >= 0.7


class TestStorageDensityClaim:
    """Abstract: '3x better storage capacity per area'."""

    def test_mlc_stores_3x_with_tolerable_errors(self, rng):
        from repro.rram import HypervectorStore, MLCRRAMChip

        chip = MLCRRAMChip(seed=3)
        dim = 2048
        assert chip.storage_capacity_hypervectors(
            dim, 3
        ) >= 2.99 * chip.storage_capacity_hypervectors(dim, 1)
        store = chip.new_store(bits_per_cell=3)
        hvs = (rng.integers(0, 2, (16, dim)) * 2 - 1).astype(np.int8)
        store.write(hvs)
        ber = store.read(2 * 3600.0).bit_error_rate
        # Within the ~10% tolerance demonstrated by Figure 11.
        assert ber < 0.15
