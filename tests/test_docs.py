"""Documentation integrity: relative links resolve, docs tree exists.

CI's docs job runs this file (it is also part of the default tier-1
run): every relative markdown link in ``README.md`` and ``docs/*.md``
must point at a file that exists in the repository, and the three core
docs pages the README advertises must be present.  External links
(``http(s)://``, ``mailto:``) are out of scope — checking them would
make the suite network-dependent and flaky.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: ``[text](target)`` markdown links, excluding images' surrounding ``!``
#: is irrelevant here — image targets must resolve too.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

REQUIRED_PAGES = (
    "architecture.md",
    "ann-tuning.md",
    "config-reference.md",
    "performance.md",
)


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    if DOCS_DIR.is_dir():
        files.extend(sorted(DOCS_DIR.glob("*.md")))
    return files


def _relative_targets(text):
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_docs_tree_exists():
    assert DOCS_DIR.is_dir(), "docs/ directory is missing"
    for page in REQUIRED_PAGES:
        assert (DOCS_DIR / page).is_file(), f"docs/{page} is missing"


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme, (
        "README must link to the architecture overview"
    )


@pytest.mark.parametrize(
    "markdown_path",
    _markdown_files(),
    ids=lambda p: str(p.relative_to(REPO_ROOT)),
)
def test_relative_links_resolve(markdown_path):
    """Every relative link in this markdown file points at a real file."""
    text = markdown_path.read_text(encoding="utf-8")
    broken = []
    for target in _relative_targets(text):
        if not target:
            continue
        resolved = (markdown_path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{markdown_path.relative_to(REPO_ROOT)} has broken relative "
        f"links: {broken}"
    )
