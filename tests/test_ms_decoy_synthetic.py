"""Tests for decoy generation and the synthetic workload builder."""

import random

import numpy as np
import pytest

from repro.ms.decoy import (
    append_decoys,
    make_decoy_spectrum,
    reverse_sequence,
    shuffle_sequence,
)
from repro.ms.modifications import COMMON_MODIFICATIONS, ModificationSampler
from repro.ms.peptide import Peptide
from repro.ms.synthetic import (
    PeptideSampler,
    REFERENCE_NOISE,
    SpectrumSimulator,
    WorkloadConfig,
    build_workload,
    scaled_config,
)


class TestDecoySequences:
    def test_shuffle_preserves_composition_and_terminus(self):
        rng = random.Random(1)
        sequence = "ELVISLIVESK"
        decoy = shuffle_sequence(sequence, rng)
        assert sorted(decoy) == sorted(sequence)
        assert decoy[-1] == sequence[-1]
        assert decoy != sequence

    def test_reverse_sequence(self):
        assert reverse_sequence("ABCDK") == "DCBAK"
        assert reverse_sequence("AK") == "AK"

    def test_decoy_spectrum_preserves_precursor(self, small_workload):
        simulator = SpectrumSimulator(seed=0)
        def factory(pep, charge, ident):
            return simulator.spectrum(pep, charge, ident, noise=REFERENCE_NOISE)
        reference = small_workload.references[0]
        decoy = make_decoy_spectrum(reference, factory, random.Random(2))
        assert decoy is not None
        assert decoy.is_decoy
        # Shuffling preserves the residue multiset, hence the mass.
        assert decoy.neutral_mass == pytest.approx(
            reference.neutral_mass, abs=1e-6
        )
        assert decoy.precursor_charge == reference.precursor_charge

    def test_append_decoys_doubles_library(self, small_workload):
        simulator = SpectrumSimulator(seed=0)
        def factory(pep, charge, ident):
            return simulator.spectrum(pep, charge, ident, noise=REFERENCE_NOISE)
        library = append_decoys(small_workload.references, factory, seed=3)
        targets = [s for s in library if not s.is_decoy]
        decoys = [s for s in library if s.is_decoy]
        assert len(targets) == len(small_workload.references)
        # Nearly every target yields a decoy (degenerate sequences may not).
        assert len(decoys) >= 0.9 * len(targets)

    def test_append_decoys_deterministic(self, small_workload):
        simulator = SpectrumSimulator(seed=0)
        def factory(pep, charge, ident):
            return simulator.spectrum(pep, charge, ident, noise=REFERENCE_NOISE)
        a = append_decoys(small_workload.references, factory, seed=3)
        b = append_decoys(small_workload.references, factory, seed=3)
        assert [s.identifier for s in a] == [s.identifier for s in b]


class TestModificationSampler:
    def test_sampled_modification_is_valid(self):
        sampler = ModificationSampler(rng=random.Random(5))
        for _ in range(50):
            modification = sampler.sample("ELVISLIVESK")
            assert modification is not None
            mod_type = next(
                m for m in COMMON_MODIFICATIONS if m.name == modification.name
            )
            residue = "ELVISLIVESK"[modification.position]
            assert mod_type.applies_to(residue)

    def test_eligible_sites(self):
        sampler = ModificationSampler(rng=random.Random(5))
        phospho = next(m for m in COMMON_MODIFICATIONS if m.name == "Phospho")
        assert sampler.eligible_sites("STYAK", phospho) == [0, 1, 2]


class TestPeptideSampler:
    def test_unique_tryptic_sequences(self):
        sampler = PeptideSampler(min_length=7, max_length=12, seed=1)
        sequences = sampler.sample_many(200)
        assert len(set(sequences)) == 200
        assert all(s[-1] in "KR" for s in sequences)
        assert all(7 <= len(s) <= 12 for s in sequences)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeptideSampler(min_length=1)
        with pytest.raises(ValueError):
            PeptideSampler(min_length=10, max_length=5)


class TestSpectrumSimulator:
    def test_pattern_deterministic_per_sequence(self):
        simulator = SpectrumSimulator(seed=3)
        b1, y1 = simulator.base_pattern("ELVISLIVESK")
        b2, y2 = simulator.base_pattern("ELVISLIVESK")
        assert np.array_equal(b1, b2)
        assert np.array_equal(y1, y2)

    def test_modified_and_unmodified_share_pattern(self):
        """The core OMS geometry: same fragmentation, shifted masses."""
        simulator = SpectrumSimulator(seed=3)
        from repro.ms.modifications import Modification

        base = Peptide("ELVISLIVESK")
        modified = base.with_modification(Modification("Methyl", 10, 14.01565))
        b_base, _ = simulator.base_pattern(base.sequence)
        b_mod, _ = simulator.base_pattern(modified.sequence)
        assert np.array_equal(b_base, b_mod)

    def test_spectrum_precursor_matches_peptide(self):
        simulator = SpectrumSimulator(seed=3)
        peptide = Peptide("SAMPLEPEPTIDEK")
        spectrum = simulator.spectrum(peptide, 2, "x", noise=REFERENCE_NOISE)
        assert spectrum.precursor_mz == pytest.approx(
            peptide.precursor_mz(2), abs=1e-9
        )
        assert spectrum.peptide is peptide

    def test_reference_spectrum_contains_most_fragments(self):
        simulator = SpectrumSimulator(seed=3)
        peptide = Peptide("ELVISLIVESK")
        spectrum = simulator.spectrum(peptide, 2, "y", noise=REFERENCE_NOISE)
        fragments = peptide.fragment_mzs()
        in_range = fragments[(fragments >= 100) & (fragments <= 1500)]
        matched = sum(
            1
            for mz in in_range
            if np.min(np.abs(spectrum.mz - mz)) < 0.05
        )
        assert matched >= 0.9 * len(in_range)


class TestBuildWorkload:
    def test_sizes(self, small_workload):
        assert len(small_workload.references) == 60
        assert len(small_workload.queries) == 24
        assert len(small_workload.truth) == 24

    def test_determinism(self):
        config = WorkloadConfig(name="d", num_references=30, num_queries=10, seed=5)
        a = build_workload(config)
        b = build_workload(config)
        assert [s.identifier for s in a.queries] == [s.identifier for s in b.queries]
        assert np.array_equal(a.queries[0].mz, b.queries[0].mz)

    def test_foreign_queries_have_no_truth(self, small_workload):
        foreign = [
            q for q in small_workload.queries if "foreign" in q.identifier
        ]
        assert foreign, "expected some foreign queries"
        for query in foreign:
            assert small_workload.truth[query.identifier] is None

    def test_library_queries_truth_points_at_library(self, small_workload):
        library_keys = {
            ref.peptide_key() for ref in small_workload.references
        }
        for query in small_workload.queries:
            truth = small_workload.truth[query.identifier]
            if truth is not None:
                assert truth in library_keys

    def test_modified_queries_have_mass_shift(self, small_workload):
        for query in small_workload.queries:
            if query.peptide is not None and query.peptide.is_modified:
                unmodified_mass = query.peptide.unmodified().neutral_mass
                assert abs(query.neutral_mass - unmodified_mass) > 0.5

    def test_scaled_config(self):
        base = WorkloadConfig(name="s", num_references=100, num_queries=50)
        half = scaled_config(base, 0.5)
        assert half.num_references == 50
        assert half.num_queries == 25
        with pytest.raises(ValueError):
            scaled_config(base, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(modification_probability=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(foreign_fraction=-0.1)
        with pytest.raises(ValueError):
            WorkloadConfig(num_references=0)
