"""Zero-copy executor tests: arena lifecycle, pipeline, 3-way parity.

The contract under test is the tentpole guarantee of ``repro.exec``:
serial, thread-pool, and process-pool scoring return **bit-identical**
results from the same shared-memory arena, the encode/score pipeline
never reorders results, and no execution path — graceful close,
terminate fallback, crashing pool initializer, SIGTERM mid-storm — can
leak a shared-memory segment.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import AnnConfig
from repro.exec import (
    ArenaSpec,
    ProcessShardExecutor,
    SharedShardArena,
    ShardScorer,
    ThreadShardExecutor,
    pipeline_map,
    shard_payload,
)
from repro.exec.arena import ARENA_ALIGN
from repro.exec.pool import arena_shard_payload

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PATH = str(REPO_ROOT / "src")

DIM = 256
NUM_ROWS = 96
NUM_SHARDS = 3


def _library_arrays(seed: int = 5):
    rng = np.random.default_rng(seed)
    bipolar = rng.choice(np.array([-1, 1], dtype=np.int8), size=(NUM_ROWS, DIM))
    packed = np.packbits((bipolar > 0).astype(np.uint8), axis=-1)
    masses = np.sort(rng.uniform(300.0, 1500.0, NUM_ROWS))
    charges = rng.integers(2, 4, NUM_ROWS).astype(np.int64)
    return bipolar, packed, masses, charges


def _bounds(num_rows: int, num_shards: int):
    base, extra = divmod(num_rows, num_shards)
    bounds, start = [], 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


# ----------------------------------------------------------------------
# arena
# ----------------------------------------------------------------------


class TestSharedShardArena:
    def test_roundtrip_attach_by_spec(self):
        arrays = {
            "packed": np.arange(24, dtype=np.uint8).reshape(3, 8),
            "masses": np.linspace(0.5, 9.5, 7),
            "charges": np.array([2, 3, 2], dtype=np.int64),
            # Non-contiguous source: the arena must copy values, not
            # assume layout.
            "strided": np.arange(20, dtype=np.int32)[::2],
        }
        with SharedShardArena.create(arrays) as owner:
            assert set(owner.keys()) == set(arrays)
            assert owner.nbytes == owner.spec().size
            for _, offset, _, _ in owner.spec().layout:
                assert offset % ARENA_ALIGN == 0
            attached = SharedShardArena.attach(owner.spec())
            try:
                for key, value in arrays.items():
                    np.testing.assert_array_equal(owner.array(key), value)
                    np.testing.assert_array_equal(attached.array(key), value)
                # Worker-side views alias the owner's segment.
                owner.array("charges")[0] = 9
                assert attached.array("charges")[0] == 9
            finally:
                attached.close()

    def test_spec_is_picklable(self):
        import pickle

        spec = ArenaSpec(
            name="x", size=64, layout=(("a", 0, "<i8", (4,)),)
        )
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_empty_arrays_rejected(self):
        with pytest.raises(ValueError, match="at least one array"):
            SharedShardArena.create({})

    def test_unknown_key_and_closed_access(self):
        arena = SharedShardArena.create({"a": np.zeros(3)})
        with pytest.raises(KeyError):
            arena.array("missing")
        arena.close()
        assert arena.closed
        with pytest.raises(RuntimeError, match="closed"):
            arena.array("a")
        arena.close()  # idempotent

    def test_owner_close_unlinks_segment(self):
        arena = SharedShardArena.create({"a": np.ones(5)})
        name = arena.name.lstrip("/")
        assert name in os.listdir("/dev/shm")
        arena.close()
        assert name not in os.listdir("/dev/shm")

    def test_attacher_close_does_not_unlink(self):
        owner = SharedShardArena.create({"a": np.ones(5)})
        name = owner.name.lstrip("/")
        try:
            attached = SharedShardArena.attach(owner.spec())
            attached.close()
            assert name in os.listdir("/dev/shm")
        finally:
            owner.close()
        assert name not in os.listdir("/dev/shm")


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------


class TestPipelineMap:
    def test_single_item_runs_inline(self):
        thread_names = []

        def func(item):
            thread_names.append(threading.current_thread().name)
            return item * 2

        assert list(pipeline_map(func, [21])) == [42]
        assert thread_names == [threading.current_thread().name]

    def test_results_in_submit_order_with_producer_ahead(self):
        """Batch k+1 encodes before batch k is consumed; order holds."""
        ahead = threading.Event()
        produced = []

        def encode(item):
            produced.append(item)
            if item == 1:
                ahead.set()
            return item

        consumed = []
        for result in pipeline_map(encode, [0, 1, 2, 3]):
            if result == 0:
                # The producer must be able to finish item 1 while item
                # 0 sits unconsumed — that is the overlap.
                assert ahead.wait(timeout=5.0)
            consumed.append(result)
        assert consumed == [0, 1, 2, 3]
        assert produced == [0, 1, 2, 3]

    def test_error_propagates_at_position(self):
        def encode(item):
            if item == 2:
                raise RuntimeError("boom at 2")
            return item

        received = []
        with pytest.raises(RuntimeError, match="boom at 2"):
            for result in pipeline_map(encode, [0, 1, 2, 3]):
                received.append(result)
        assert received == [0, 1]

    def test_early_close_stops_producer(self):
        started = []

        def encode(item):
            started.append(item)
            return item

        generator = pipeline_map(encode, list(range(100)))
        assert next(generator) == 0
        generator.close()
        time.sleep(0.2)
        # Producer stopped promptly: at most the in-flight + queued
        # depth was encoded, not all 100 items.
        assert len(started) <= 5

    def test_depth_validated(self):
        with pytest.raises(ValueError, match="depth"):
            list(pipeline_map(lambda x: x, [1, 2], depth=0))


# ----------------------------------------------------------------------
# 3-way executor parity (hypothesis)
# ----------------------------------------------------------------------


def _make_setup(arrays, *, backend, ann=None, ann_provenance=None, block=None):
    return {
        "dim": DIM,
        "backend": backend,
        "charge_aware": True,
        "bounds": _bounds(NUM_ROWS, NUM_SHARDS),
        "ann": ann,
        "ann_provenance": ann_provenance,
        "score_block_rows": block,
    }


@pytest.fixture(scope="module")
def parity_env():
    """One arena + one process pool + one thread pool, shared by all
    hypothesis examples (pool startup is far too slow per-example)."""
    from repro.ann import HammingLSHIndex

    _, packed, masses, charges = _library_arrays()
    ann = AnnConfig(ann_threshold=1, candidate_budget=16, seed=3)
    arrays = {"packed": packed, "masses": masses, "charges": charges}
    provenance = []
    for start, stop in _bounds(NUM_ROWS, NUM_SHARDS):
        lsh = HammingLSHIndex.build(packed[start:stop], DIM, ann)
        provenance.append(lsh.provenance())
        for key, value in lsh.to_arrays().items():
            arrays[f"shard{len(provenance) - 1}.{key}"] = value
    arena = SharedShardArena.create(arrays)

    envs = {}
    for label, backend, ann_cfg, prov, block in [
        ("dense", "dense", None, None, None),
        ("packed-blocked", "packed", None, None, 5),
        ("dense-ann", "dense", ann, tuple(provenance), None),
    ]:
        setup = dict(
            _make_setup(
                arrays,
                backend=backend,
                ann=ann_cfg,
                ann_provenance=prov,
                block=block,
            ),
            spec=arena.spec(),
        )
        process = ProcessShardExecutor(setup, num_workers=2)
        thread = ThreadShardExecutor(arena, setup, num_workers=2)
        serial = [
            ShardScorer(arena_shard_payload(arena, setup, shard_id))
            for shard_id in range(NUM_SHARDS)
        ]
        envs[label] = (process, thread, serial)
    yield envs, masses
    for process, thread, _ in envs.values():
        process.close(timeout=5.0)
        thread.close(timeout=5.0)
    arena.close()


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_three_way_scores_bit_identical(parity_env, data):
    envs, masses = parity_env
    label = data.draw(
        st.sampled_from(["dense", "packed-blocked", "dense-ann"])
    )
    num_queries = data.draw(st.integers(1, 5))
    seed = data.draw(st.integers(0, 2**31 - 1))
    # Huge half-width produces full-coverage windows (the backend fast
    # path); tiny ones produce empty/sparse windows.
    half_width = data.draw(st.sampled_from([0.01, 5.0, 250.0, 1e9]))
    rng = np.random.default_rng(seed)
    query_hvs = rng.choice(
        np.array([-1, 1], dtype=np.int8), size=(num_queries, DIM)
    )
    query_masses = rng.uniform(float(masses[0]), float(masses[-1]), num_queries)
    query_charges = rng.integers(2, 4, num_queries).astype(np.int64)

    tasks = [
        (shard_id, query_hvs, query_masses, query_charges, half_width)
        for shard_id in range(NUM_SHARDS)
    ]
    process, thread, serial = envs[label]
    from_process = process.run(tasks)
    from_thread = thread.run(tasks)
    from_serial = [
        (task[0], 0.0) + serial[task[0]].score_batch(*task[1:])
        for task in tasks
    ]
    for result_p, result_t, result_s in zip(
        from_process, from_thread, from_serial
    ):
        assert result_p[0] == result_t[0] == result_s[0]
        for column in range(2, 8):
            np.testing.assert_array_equal(result_p[column], result_s[column])
            np.testing.assert_array_equal(result_t[column], result_s[column])


def test_full_coverage_window_hits_fast_path(parity_env):
    """half_width=1e9 covers every row; parity already asserted above —
    this pins that the window really is full-coverage (fast path)."""
    envs, masses = parity_env
    _, thread, _ = envs["dense"]
    query_hvs = np.ones((2, DIM), dtype=np.int8)
    query_masses = np.array([masses[0], masses[-1]])
    query_charges = np.array([2, 3], dtype=np.int64)
    tasks = [
        (shard_id, query_hvs, query_masses, query_charges, 1e9)
        for shard_id in range(NUM_SHARDS)
    ]
    results = thread.run(tasks)
    _, packed, _, charges = _library_arrays()
    for shard_id, (start, stop) in enumerate(_bounds(NUM_ROWS, NUM_SHARDS)):
        for row in range(2):
            expected = int(
                np.sum(charges[start:stop] == query_charges[row])
            )
            assert int(results[shard_id][2][row]) == expected


# ----------------------------------------------------------------------
# executor error handling
# ----------------------------------------------------------------------


def test_process_pool_start_failure_raises_cleanly(monkeypatch):
    """A crashing pool initializer becomes RuntimeError, not a hang."""
    import repro.exec.pool as pool_module

    _, packed, masses, charges = _library_arrays()
    arena = SharedShardArena.create(
        {"packed": packed, "masses": masses, "charges": charges}
    )
    try:
        setup = dict(_make_setup(None, backend="dense"), spec=arena.spec())

        def bad_init(_setup):
            raise RuntimeError("initializer died")

        monkeypatch.setattr(pool_module, "_init_arena_worker", bad_init)
        executor = ProcessShardExecutor(setup, num_workers=2, start_timeout=3.0)
        tasks = [
            (0, np.ones((1, DIM), dtype=np.int8), masses[:1], charges[:1], 1.0)
        ]
        with pytest.raises(RuntimeError, match="failed to start"):
            executor.run(tasks)
        executor.close()
    finally:
        arena.close()
    assert arena.name.lstrip("/") not in os.listdir("/dev/shm")


# ----------------------------------------------------------------------
# lifecycle regressions (subprocess, -W error::UserWarning)
# ----------------------------------------------------------------------


def _run_lifecycle_script(body: str, *, timeout: float = 120.0):
    """Run a lifecycle scenario in a clean interpreter with warnings
    escalated — a leaked shared_memory segment surfaces as the resource
    tracker's UserWarning at interpreter exit and fails the script."""
    return subprocess.run(
        [sys.executable, "-W", "error::UserWarning", "-c", body],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={**os.environ, "PYTHONPATH": SRC_PATH},
        cwd=str(REPO_ROOT),
    )


_SCRIPT_PRELUDE = """
import os, sys, time
import numpy as np
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.hdc.spaces import HDSpaceConfig
from repro.index.library import LibraryIndex
from repro.index.sharded import ShardedSearcher

wl = build_workload(WorkloadConfig(name="t", num_references=40, num_queries=8, seed=9))
binning = BinningConfig()
space = HDSpaceConfig(dim=256, num_bins=binning.num_bins, num_levels=8,
                      id_precision_bits=3, chunked=True, seed=11)
index = LibraryIndex.build(wl.references, space_config=space, binning=binning)
before = set(os.listdir("/dev/shm"))
"""

_SCRIPT_CHECK = """
leftover = set(os.listdir("/dev/shm")) - before
assert not leftover, f"leaked segments: {leftover}"
print("CLEAN")
"""


class TestLifecycleRegressions:
    def _assert_clean(self, completed):
        assert completed.returncode == 0, completed.stderr
        assert "CLEAN" in completed.stdout, completed.stdout
        assert "leaked" not in completed.stderr.lower(), completed.stderr

    def test_normal_close_unlinks(self):
        body = _SCRIPT_PRELUDE + """
with ShardedSearcher(index, num_shards=2, num_workers=2) as searcher:
    searcher.search(wl.queries)
""" + _SCRIPT_CHECK
        self._assert_clean(_run_lifecycle_script(body))

    def test_terminate_fallback_still_unlinks(self):
        """close() with a wedged worker terminates the pool AND unlinks."""
        body = _SCRIPT_PRELUDE + """
import threading
import repro.exec.pool as pool_module

original = pool_module._score_arena_task
def slow_task(task):
    time.sleep(60.0)
    return original(task)
# Patched before the pool forks, so workers inherit the slow task.
pool_module._score_arena_task = slow_task

searcher = ShardedSearcher(index, num_shards=2, num_workers=2)
runner = threading.Thread(
    target=lambda: searcher.search(wl.queries), daemon=True
)
runner.start()
time.sleep(1.5)  # let the pool start and the map() get stuck
searcher.close(timeout=0.5)  # wedged join -> terminate fallback
""" + _SCRIPT_CHECK
        self._assert_clean(_run_lifecycle_script(body))

    def test_initializer_crash_unlinks(self):
        """A pool initializer that raises mid-startup cannot leak."""
        body = _SCRIPT_PRELUDE + """
import repro.exec.pool as pool_module
pool_module.POOL_START_TIMEOUT = 3.0

def bad_init(setup):
    raise RuntimeError("initializer died")
pool_module._init_arena_worker = bad_init

searcher = ShardedSearcher(index, num_shards=2, num_workers=2)
try:
    searcher.search(wl.queries)
except RuntimeError as error:
    assert "failed to start" in str(error), error
else:
    raise AssertionError("expected pool startup failure")
searcher.close()
""" + _SCRIPT_CHECK
        self._assert_clean(_run_lifecycle_script(body))

    def test_sigterm_during_search_storm_unlinks(self, tmp_path):
        """SIGTERM mid-storm: the atexit/SIGTERM hook unlinks arenas."""
        ready = tmp_path / "ready"
        body = _SCRIPT_PRELUDE + f"""
searcher = ShardedSearcher(index, num_shards=2, num_workers=2)
searcher.search(wl.queries)  # warm the pool
open({str(ready)!r}, "w").write(searcher._arena.name)
while True:
    searcher.search(wl.queries)
"""
        process = subprocess.Popen(
            [sys.executable, "-c", body],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC_PATH},
            cwd=str(REPO_ROOT),
        )
        try:
            deadline = time.time() + 60.0
            while not ready.exists() and time.time() < deadline:
                time.sleep(0.05)
            assert ready.exists(), process.stderr.read() if process.stderr else ""
            segment = ready.read_text().lstrip("/")
            assert segment in os.listdir("/dev/shm")
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        # Died by SIGTERM (the hook re-raises it) and nothing leaked.
        assert process.returncode == -signal.SIGTERM
        deadline = time.time() + 10.0
        while segment in os.listdir("/dev/shm") and time.time() < deadline:
            time.sleep(0.05)
        assert segment not in os.listdir("/dev/shm")


# ----------------------------------------------------------------------
# pipelined search ordering (end to end)
# ----------------------------------------------------------------------


def test_pipelined_search_matches_single_batch():
    """Multi-chunk pipelined search equals the one-chunk schedule."""
    from repro.ms.synthetic import WorkloadConfig, build_workload
    from repro.ms.vectorize import BinningConfig
    from repro.hdc.spaces import HDSpaceConfig
    from repro.index.library import LibraryIndex
    from repro.index.sharded import ShardedSearcher
    from repro.oms.search import HDSearchConfig

    wl = build_workload(
        WorkloadConfig(name="t", num_references=40, num_queries=17, seed=21)
    )
    binning = BinningConfig()
    space = HDSpaceConfig(
        dim=256,
        num_bins=binning.num_bins,
        num_levels=8,
        id_precision_bits=3,
        chunked=True,
        seed=11,
    )
    index = LibraryIndex.build(wl.references, space_config=space, binning=binning)

    def run(pipeline_batch, query_ber=0.0):
        with ShardedSearcher(
            index,
            num_shards=2,
            num_workers=2,
            executor="thread",
            config=HDSearchConfig(mode="cascade", query_ber=query_ber),
            pipeline_batch=pipeline_batch,
        ) as searcher:
            result = searcher.search(wl.queries)
        return [
            (psm.query_id, psm.reference_id, psm.score, psm.mode)
            for psm in result.psms
        ]

    # 17 queries with batch 3 -> 6 chunks in flight through the pipeline.
    assert run(pipeline_batch=1000) == run(pipeline_batch=3)
    # BER noise draws in the consumer stay in arrival order too.
    assert run(1000, query_ber=0.01) == run(3, query_ber=0.01)
