"""Tests for the hdoms command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_search_defaults(self):
        args = build_parser().parse_args(
            ["search", "--library", "l.msp", "--queries", "q.mgf"]
        )
        assert args.dim == 8192
        assert args.id_bits == 3
        assert args.mode == "open"
        assert args.backend == "dense"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "--library", "l", "--queries", "q", "--backend", "gpu"]
            )


class TestInfo:
    def test_info_prints_version(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hdoms" in out
        assert "DAC 2024" in out


class TestWorkloadCommand:
    def test_generates_files(self, tmp_path, capsys):
        code = main(
            [
                "workload",
                "--preset",
                "custom",
                "--references",
                "50",
                "--queries",
                "10",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "library.msp").exists()
        assert (tmp_path / "queries.mgf").exists()
        truth = (tmp_path / "truth.tsv").read_text().splitlines()
        assert truth[0] == "query_id\ttrue_peptide"
        assert len(truth) == 11

    def test_preset_scaling(self, tmp_path):
        main(
            [
                "workload",
                "--preset",
                "iprg2012",
                "--scale",
                "0.01",
                "--output-dir",
                str(tmp_path),
            ]
        )
        msp = (tmp_path / "library.msp").read_text()
        assert msp.count("Name:") == 40  # 4000 * 0.01


class TestSearchCommand:
    def test_end_to_end_files(self, tmp_path, capsys):
        main(
            [
                "workload",
                "--preset",
                "custom",
                "--references",
                "120",
                "--queries",
                "25",
                "--seed",
                "3",
                "--output-dir",
                str(tmp_path),
            ]
        )
        output = tmp_path / "psms.tsv"
        code = main(
            [
                "search",
                "--library",
                str(tmp_path / "library.msp"),
                "--queries",
                str(tmp_path / "queries.mgf"),
                "--dim",
                "1024",
                "--output",
                str(output),
                "--seed",
                "3",
            ]
        )
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines[0].startswith("query_id\treference_id")
        assert len(lines) > 5  # found real matches
        out = capsys.readouterr().out
        assert "accepted" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--index", "i.npz"])
        assert args.host == "127.0.0.1"
        assert args.port == 8337
        assert args.max_batch == 32
        assert args.max_wait_ms == 5.0
        assert args.cache_size == 1024
        assert args.engine == "auto"
        assert args.mode == "open"

    def test_serve_requires_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_rejects_bad_flag_combination(self, capsys):
        code = main(
            [
                "serve",
                "--index",
                "idx.npz",
                "--engine",
                "batched",
                "--mode",
                "cascade",
            ]
        )
        assert code == 2
        assert "cascade" in capsys.readouterr().err

    def test_serve_reports_missing_index(self, tmp_path, capsys):
        code = main(["serve", "--index", str(tmp_path / "nope.npz")])
        assert code == 2
        assert "serve:" in capsys.readouterr().err


class TestIndexSearchJsonl:
    @pytest.fixture(scope="class")
    def built_index(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("jsonl-cli")
        assert (
            main(
                [
                    "workload",
                    "--preset",
                    "custom",
                    "--references",
                    "80",
                    "--queries",
                    "15",
                    "--seed",
                    "3",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "index",
                    "build",
                    "--library",
                    str(tmp_path / "library.msp"),
                    "--output",
                    str(tmp_path / "library.npz"),
                    "--dim",
                    "512",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        return tmp_path

    def test_jsonl_streams_all_psms(self, built_index, tmp_path):
        import json

        output = tmp_path / "psms.jsonl"
        code = main(
            [
                "index",
                "search",
                "--index",
                str(built_index / "library.npz"),
                "--queries",
                str(built_index / "queries.mgf"),
                "--output",
                str(output),
                "--output-format",
                "jsonl",
                "--chunk-size",
                "4",
            ]
        )
        assert code == 0
        from repro.oms.psm import PSM

        psms = [
            PSM.from_dict(json.loads(line))
            for line in output.read_text().splitlines()
        ]
        assert len(psms) > 5
        # Pre-FDR stream: q-values are never assigned.
        assert all(psm.q_value is None for psm in psms)
        # Chunked streaming must not change any PSM: compare against a
        # direct one-shot search over the same index.
        from repro.index import LibraryIndex
        from repro.ms.mgf import read_mgf
        from repro.oms.search import HDOmsSearcher

        index = LibraryIndex.load(built_index / "library.npz")
        queries = list(read_mgf(built_index / "queries.mgf"))
        direct = HDOmsSearcher.from_index(index).search(queries)
        assert psms == direct.psms

    def test_jsonl_to_stdout_keeps_stream_clean(self, built_index, capsys):
        import json

        code = main(
            [
                "index",
                "search",
                "--index",
                str(built_index / "library.npz"),
                "--queries",
                str(built_index / "queries.mgf"),
                "--output-format",
                "jsonl",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # stdout is pure JSONL; all chatter went to stderr.
        for line in captured.out.splitlines():
            json.loads(line)
        assert "loaded index" in captured.err

    def test_explicit_fdr_with_jsonl_warns(
        self, built_index, tmp_path, capsys
    ):
        code = main(
            [
                "index",
                "search",
                "--index",
                str(built_index / "library.npz"),
                "--queries",
                str(built_index / "queries.mgf"),
                "--output",
                str(tmp_path / "psms.jsonl"),
                "--output-format",
                "jsonl",
                "--fdr",
                "0.05",
            ]
        )
        assert code == 0
        assert "--fdr is ignored" in capsys.readouterr().err

    def test_rejects_bad_chunk_size(self, built_index):
        code = main(
            [
                "index",
                "search",
                "--index",
                str(built_index / "library.npz"),
                "--queries",
                str(built_index / "queries.mgf"),
                "--chunk-size",
                "0",
            ]
        )
        assert code == 2


class TestExperimentCommand:
    def test_fig12_runs(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Energy efficiency" in out
        assert "this-work-mlc-rram" in out

    def test_fig7_runs(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "Bit error rate" in capsys.readouterr().out
