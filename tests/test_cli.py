"""Tests for the hdoms command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_search_defaults(self):
        args = build_parser().parse_args(
            ["search", "--library", "l.msp", "--queries", "q.mgf"]
        )
        assert args.dim == 8192
        assert args.id_bits == 3
        assert args.mode == "open"
        assert args.backend == "dense"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "--library", "l", "--queries", "q", "--backend", "gpu"]
            )


class TestInfo:
    def test_info_prints_version(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hdoms" in out
        assert "DAC 2024" in out


class TestWorkloadCommand:
    def test_generates_files(self, tmp_path, capsys):
        code = main(
            [
                "workload",
                "--preset",
                "custom",
                "--references",
                "50",
                "--queries",
                "10",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "library.msp").exists()
        assert (tmp_path / "queries.mgf").exists()
        truth = (tmp_path / "truth.tsv").read_text().splitlines()
        assert truth[0] == "query_id\ttrue_peptide"
        assert len(truth) == 11

    def test_preset_scaling(self, tmp_path):
        main(
            [
                "workload",
                "--preset",
                "iprg2012",
                "--scale",
                "0.01",
                "--output-dir",
                str(tmp_path),
            ]
        )
        msp = (tmp_path / "library.msp").read_text()
        assert msp.count("Name:") == 40  # 4000 * 0.01


class TestSearchCommand:
    def test_end_to_end_files(self, tmp_path, capsys):
        main(
            [
                "workload",
                "--preset",
                "custom",
                "--references",
                "120",
                "--queries",
                "25",
                "--seed",
                "3",
                "--output-dir",
                str(tmp_path),
            ]
        )
        output = tmp_path / "psms.tsv"
        code = main(
            [
                "search",
                "--library",
                str(tmp_path / "library.msp"),
                "--queries",
                str(tmp_path / "queries.mgf"),
                "--dim",
                "1024",
                "--output",
                str(output),
                "--seed",
                "3",
            ]
        )
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines[0].startswith("query_id\treference_id")
        assert len(lines) > 5  # found real matches
        out = capsys.readouterr().out
        assert "accepted" in out


class TestExperimentCommand:
    def test_fig12_runs(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Energy efficiency" in out
        assert "this-work-mlc-rram" in out

    def test_fig7_runs(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "Bit error rate" in capsys.readouterr().out
