"""Benchmark trajectory files must share one schema.

``benchmarks/results/BENCH_*.json`` files are append-only per-machine
perf trajectories (gitignored).  Dashboards and the docs treat them as
one format, so every file must be a JSON list of entries carrying the
core keys ``BENCH_encode.json`` established; ``BENCH_score.json``
additionally pins its executor-comparison fields.  The checks are
no-ops (not skips) when a file has not been produced on this machine
yet — run the benchmarks to populate them.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"

#: Keys every trajectory entry must carry (the BENCH_encode format).
CORE_KEYS = {"bench", "timestamp", "batch", "dim", "speedup"}

#: Extra keys the score trajectory pins for the executor comparison.
SCORE_KEYS = {
    "num_shards",
    "num_workers",
    "cpu_count",
    "process_cold_seconds",
    "thread_cold_seconds",
    "process_warm_seconds",
    "thread_warm_seconds",
    "warm_speedup",
    "arena_mb",
    "rss_extra_mb",
}

_TIMESTAMP = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}$")


def _entries(path: Path):
    history = json.loads(path.read_text())
    assert isinstance(history, list), f"{path.name}: trajectory must be a list"
    assert history, f"{path.name}: trajectory must not be empty"
    return history


#: Trajectories following the full BENCH_encode entry format (other
#: BENCH files, e.g. the ANN recall curve, carry bench-specific bodies
#: but still must be identified lists of timestamped entries).
ENCODE_FORMAT_FILES = ("BENCH_encode.json", "BENCH_score.json")


def test_all_trajectories_are_timestamped_entry_lists():
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        for entry in _entries(path):
            assert isinstance(entry, dict), f"{path.name}: non-dict entry"
            for key in ("bench", "timestamp"):
                assert key in entry, f"{path.name}: entry missing {key!r}"
            assert isinstance(entry["bench"], str)
            assert _TIMESTAMP.match(entry["timestamp"]), (
                f"{path.name}: bad timestamp {entry['timestamp']!r}"
            )


def test_speedup_trajectories_share_the_core_schema():
    for name in ENCODE_FORMAT_FILES:
        path = RESULTS_DIR / name
        if not path.exists():
            continue  # not produced on this machine yet
        for entry in _entries(path):
            missing = CORE_KEYS - entry.keys()
            assert not missing, f"{path.name}: entry missing {sorted(missing)}"
            for key in ("batch", "dim", "speedup"):
                assert isinstance(entry[key], (int, float)), (
                    f"{path.name}: {key} must be numeric"
                )


def test_score_trajectory_matches_encode_format():
    path = RESULTS_DIR / "BENCH_score.json"
    if not path.exists():
        return  # not produced on this machine yet; schema trivially holds
    for entry in _entries(path):
        assert entry["bench"] == "score_zero_copy"
        missing = (CORE_KEYS | SCORE_KEYS) - entry.keys()
        assert not missing, f"entry missing {sorted(missing)}"
        assert entry["batch"] == 256
        assert entry["num_workers"] >= 1
        assert entry["thread_cold_seconds"] > 0
        assert entry["process_cold_seconds"] > 0


#: Keys the streaming-ingest memory trajectory pins.
STORE_KEYS = {
    "bench",
    "timestamp",
    "references",
    "dim",
    "segment_rows",
    "segments",
    "baseline_mb",
    "monolithic_rss_mb",
    "streaming_rss_mb",
    "rss_cap_mb",
    "memory_ratio",
    "seconds",
}


#: Keys the coordinator scale-out trajectory pins.
COORD_KEYS = {
    "bench",
    "timestamp",
    "scale",
    "num_references",
    "num_queries",
    "seconds_one_worker",
    "seconds_two_workers",
    "speedup",
    "queries_per_second",
    "cpu_count",
}


def test_coord_trajectory_pins_the_scale_out_gate():
    path = RESULTS_DIR / "BENCH_coord.json"
    if not path.exists():
        return  # not produced on this machine yet; schema trivially holds
    for entry in _entries(path):
        assert entry["bench"] == "coordinator-scale-out"
        missing = COORD_KEYS - entry.keys()
        assert not missing, f"entry missing {sorted(missing)}"
        assert entry["num_references"] >= 100
        assert entry["num_queries"] >= 16
        assert entry["seconds_one_worker"] > 0
        assert entry["seconds_two_workers"] > 0
        assert entry["speedup"] > 0
        assert entry["cpu_count"] >= 1
        # Every recorded full-scale run must have passed its gate
        # (1.8x with >= 2 cores, bounded coordination tax on 1).
        if entry["scale"] >= 1.0:
            floor = 1.8 if entry["cpu_count"] >= 2 else 0.5
            assert entry["speedup"] >= floor


def test_store_trajectory_pins_the_rss_gate():
    path = RESULTS_DIR / "BENCH_store.json"
    if not path.exists():
        return  # not produced on this machine yet; schema trivially holds
    for entry in _entries(path):
        assert entry["bench"] == "store_streaming_ingest"
        missing = STORE_KEYS - entry.keys()
        assert not missing, f"entry missing {sorted(missing)}"
        assert entry["references"] >= 4000
        assert entry["segments"] >= 2
        # Every recorded run must have passed its self-calibrated gate.
        assert entry["streaming_rss_mb"] <= entry["rss_cap_mb"]
        assert entry["monolithic_rss_mb"] > entry["baseline_mb"]
        assert 0.0 <= entry["memory_ratio"] < 1.0
