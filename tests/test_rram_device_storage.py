"""Tests for the RRAM device model and hypervector storage."""

import numpy as np
import pytest

from repro.rram.device import (
    DEFAULT_COMPUTE_READ_TIME_S,
    DeviceConfig,
    PAPER_TIME_POINTS_S,
    RRAMDeviceModel,
)
from repro.rram.metrics import (
    bit_error_rate,
    level_error_rate,
    normalized_rmse,
    sign_error_rate,
)
from repro.rram.storage import HypervectorStore


class TestDeviceModel:
    def test_level_targets_span_range(self):
        device = RRAMDeviceModel(seed=1)
        targets = device.level_targets(8)
        assert targets[0] == 0.0
        assert targets[-1] == pytest.approx(50.0)
        assert len(targets) == 8
        assert np.all(np.diff(targets) > 0)

    def test_programming_noise_is_tight(self, rng):
        device = RRAMDeviceModel(seed=1)
        targets = np.full(20_000, 25.0)
        programmed = device.program(targets, rng)
        assert np.std(programmed) == pytest.approx(
            device.config.sigma_program_us, rel=0.1
        )
        assert programmed.min() >= 0.0
        assert programmed.max() <= 50.0

    def test_relaxation_grows_with_time(self, rng):
        device = RRAMDeviceModel(seed=1)
        targets = np.full(20_000, 25.0)
        programmed = device.program(targets, rng)
        spreads = []
        for time_s in (1.0, 1800.0, 86400.0):
            relaxed = device.relax(programmed, time_s, rng)
            spreads.append(float(np.std(relaxed)))
        assert spreads[0] < spreads[1] < spreads[2]

    def test_relax_at_time_zero_is_identity(self, rng):
        device = RRAMDeviceModel(seed=1)
        programmed = device.program(np.full(100, 30.0), rng)
        relaxed = device.relax(programmed, 0.0, rng)
        assert np.array_equal(relaxed, programmed)

    def test_drift_pulls_toward_attractor(self):
        config = DeviceConfig(
            sigma_program_us=0.0,
            sigma_relax_us_per_decade=0.0,
            tail_probability_per_decade=0.0,
            drift_fraction_per_decade=0.05,
        )
        device = RRAMDeviceModel(config, seed=1)
        rng = np.random.default_rng(0)
        high = device.relax(np.full(10, 50.0), 86400.0, rng)
        low = device.relax(np.full(10, 0.0), 86400.0, rng)
        assert np.all(high < 50.0)  # pulled down toward 20 µS
        assert np.all(low > 0.0)  # pulled up toward 20 µS

    def test_read_levels_nearest(self):
        device = RRAMDeviceModel(seed=1)
        conductances = np.array([0.0, 3.0, 4.0, 24.0, 50.0])
        # 8 levels: spacing 50/7 = 7.142 µS.
        levels = device.read_levels(conductances, 8)
        assert levels.tolist() == [0, 0, 1, 3, 7]

    def test_conductances_clip_to_physical_range(self, rng):
        config = DeviceConfig(tail_probability_per_decade=0.5, tail_sigma_us=100.0)
        device = RRAMDeviceModel(config, seed=1)
        relaxed = device.program_and_relax(np.full(5000, 25.0), 86400.0, rng)
        assert relaxed.min() >= 0.0
        assert relaxed.max() <= 50.0

    def test_decades_validation(self):
        config = DeviceConfig()
        with pytest.raises(ValueError):
            config.decades(-1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeviceConfig(gmax_us=0)
        with pytest.raises(ValueError):
            DeviceConfig(attractor_fraction=2.0)
        with pytest.raises(ValueError):
            DeviceConfig(sigma_program_us=-1)

    def test_paper_time_points(self):
        assert PAPER_TIME_POINTS_S["after_1day"] == 86400.0
        assert DEFAULT_COMPUTE_READ_TIME_S == 7200.0


class TestHypervectorStore:
    @pytest.mark.parametrize("bits_per_cell", [1, 2, 3])
    def test_immediate_read_is_nearly_exact(self, rng, bits_per_cell):
        hvs = (rng.integers(0, 2, (16, 512)) * 2 - 1).astype(np.int8)
        store = HypervectorStore(bits_per_cell, seed=bits_per_cell)
        store.write(hvs)
        readout = store.read(0.0)
        # Fresh programming: write-verify keeps cells well within level
        # margins at every density.
        assert readout.bit_error_rate < 0.02
        assert readout.hypervectors.shape == hvs.shape

    def test_noiseless_device_roundtrip_exact(self, rng):
        config = DeviceConfig(
            sigma_program_us=0.0,
            sigma_relax_us_per_decade=0.0,
            tail_probability_per_decade=0.0,
            drift_fraction_per_decade=0.0,
        )
        for bits in (1, 2, 3):
            hvs = (rng.integers(0, 2, (4, 127)) * 2 - 1).astype(np.int8)
            store = HypervectorStore(
                bits, device=RRAMDeviceModel(config, seed=1), seed=2
            )
            store.write(hvs)
            readout = store.read(86400.0)
            assert readout.bit_error_rate == 0.0
            assert np.array_equal(readout.hypervectors, hvs)

    def test_ber_ordering_by_density_after_relaxation(self, rng):
        hvs = (rng.integers(0, 2, (32, 2048)) * 2 - 1).astype(np.int8)
        bers = []
        for bits in (1, 2, 3):
            store = HypervectorStore(bits, seed=bits)
            store.write(hvs)
            bers.append(store.read(86400.0).bit_error_rate)
        assert bers[0] <= bers[1] <= bers[2]
        assert bers[2] > 0.03  # MLC density costs real errors

    def test_cell_count_scales_with_density(self, rng):
        hvs = (rng.integers(0, 2, (2, 600)) * 2 - 1).astype(np.int8)
        counts = {}
        for bits in (1, 2, 3):
            store = HypervectorStore(bits, seed=1)
            store.write(hvs)
            counts[bits] = store.num_cells
        assert counts[1] == 2 * 600
        assert counts[2] == 2 * 300
        assert counts[3] == 2 * 200

    def test_read_before_write_raises(self):
        with pytest.raises(RuntimeError):
            HypervectorStore(2, seed=1).read(0.0)

    def test_invalid_bits_per_cell(self):
        with pytest.raises(ValueError):
            HypervectorStore(4)


class TestMetrics:
    def test_bit_error_rate(self):
        a = np.array([1, -1, 1, -1])
        b = np.array([1, 1, 1, -1])
        assert bit_error_rate(a, b) == pytest.approx(0.25)
        assert level_error_rate(a, b) == pytest.approx(0.25)

    def test_bit_error_rate_empty(self):
        assert bit_error_rate(np.empty(0), np.empty(0)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            normalized_rmse(np.ones(3), np.ones(4))

    def test_normalized_rmse(self):
        expected = np.array([0.0, 10.0])
        actual = np.array([1.0, 9.0])
        # rmse = 1, scale = 10.
        assert normalized_rmse(expected, actual) == pytest.approx(0.1)

    def test_normalized_rmse_constant_expected(self):
        expected = np.full(4, 5.0)
        actual = expected + 1.0
        assert normalized_rmse(expected, actual) == pytest.approx(1.0 / 5.0)

    def test_sign_error_rate(self):
        expected = np.array([3.0, -2.0, 0.0, 5.0])
        actual = np.array([1.0, 2.0, 1.0, 5.0])
        # mismatches: index 1 only (index 2: 0 and 1 both count as >= 0).
        assert sign_error_rate(expected, actual) == pytest.approx(0.25)
