"""Property-based tests for the RRAM device and storage invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.rram.device import DeviceConfig, RRAMDeviceModel
from repro.rram.storage import HypervectorStore

conductance_arrays = arrays(
    np.float64,
    st.integers(1, 256),
    elements=st.floats(0.0, 50.0, allow_nan=False),
)


class TestDeviceProperties:
    @given(
        targets=conductance_arrays,
        time_s=st.floats(0.0, 1e6, allow_nan=False),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_conductances_stay_physical(self, targets, time_s, seed):
        device = RRAMDeviceModel(seed=seed)
        rng = np.random.default_rng(seed)
        relaxed = device.program_and_relax(targets, time_s, rng)
        assert relaxed.shape == targets.shape
        assert relaxed.min() >= 0.0
        assert relaxed.max() <= device.config.gmax_us

    @given(
        num_levels=st.integers(2, 16),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_read_levels_inverts_targets_exactly(self, num_levels, seed):
        """With zero noise, decode(program(level)) == level."""
        config = DeviceConfig(
            sigma_program_us=0.0,
            sigma_relax_us_per_decade=0.0,
            tail_probability_per_decade=0.0,
            drift_fraction_per_decade=0.0,
        )
        device = RRAMDeviceModel(config, seed=seed)
        levels = np.arange(num_levels)
        targets = device.level_targets(num_levels)[levels]
        decoded = device.read_levels(targets, num_levels)
        assert np.array_equal(decoded, levels)

    @given(
        conductances=conductance_arrays,
        num_levels=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_read_levels_in_range(self, conductances, num_levels):
        device = RRAMDeviceModel(seed=0)
        levels = device.read_levels(conductances, num_levels)
        assert levels.min() >= 0
        assert levels.max() <= num_levels - 1

    @given(time_a=st.floats(0, 1e5), time_b=st.floats(0, 1e5))
    @settings(max_examples=40, deadline=None)
    def test_decades_monotone_in_time(self, time_a, time_b):
        config = DeviceConfig()
        if time_a <= time_b:
            assert config.decades(time_a) <= config.decades(time_b)
        else:
            assert config.decades(time_a) >= config.decades(time_b)


class TestStorageProperties:
    @given(
        bits=st.sampled_from([1, 2, 3]),
        dim=st.integers(12, 300),
        rows=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_noiseless_roundtrip_is_identity(self, bits, dim, rows, seed):
        config = DeviceConfig(
            sigma_program_us=0.0,
            sigma_relax_us_per_decade=0.0,
            tail_probability_per_decade=0.0,
            drift_fraction_per_decade=0.0,
        )
        rng = np.random.default_rng(seed)
        hvs = (rng.integers(0, 2, (rows, dim)) * 2 - 1).astype(np.int8)
        store = HypervectorStore(
            bits, device=RRAMDeviceModel(config, seed=seed), seed=seed + 1
        )
        store.write(hvs)
        readout = store.read(86400.0)
        assert np.array_equal(readout.hypervectors, hvs)
        assert readout.bit_error_rate == 0.0

    @given(
        bits=st.sampled_from([1, 2, 3]),
        dim=st.integers(12, 200),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_readout_shape_and_alphabet(self, bits, dim, seed):
        rng = np.random.default_rng(seed)
        hvs = (rng.integers(0, 2, (3, dim)) * 2 - 1).astype(np.int8)
        store = HypervectorStore(bits, seed=seed)
        store.write(hvs)
        readout = store.read(3600.0)
        assert readout.hypervectors.shape == hvs.shape
        assert set(np.unique(readout.hypervectors)) <= {-1, 1}
        assert 0.0 <= readout.bit_error_rate <= 1.0
