"""Tests for the Spectrum container."""

import numpy as np
import pytest

from repro.ms.peptide import Peptide
from repro.ms.spectrum import Spectrum


def make_spectrum(**overrides):
    defaults = dict(
        identifier="s1",
        precursor_mz=500.25,
        precursor_charge=2,
        mz=np.array([100.0, 200.0, 300.0]),
        intensity=np.array([1.0, 5.0, 2.0]),
    )
    defaults.update(overrides)
    return Spectrum(**defaults)


class TestConstruction:
    def test_basic_construction(self):
        spectrum = make_spectrum()
        assert len(spectrum) == 3
        assert spectrum.mz.dtype == np.float64
        assert spectrum.intensity.dtype == np.float32

    def test_peaks_sorted_on_construction(self):
        spectrum = make_spectrum(
            mz=np.array([300.0, 100.0, 200.0]),
            intensity=np.array([3.0, 1.0, 2.0]),
        )
        assert np.array_equal(spectrum.mz, [100.0, 200.0, 300.0])
        assert np.array_equal(spectrum.intensity, [1.0, 2.0, 3.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            make_spectrum(intensity=np.array([1.0]))

    def test_negative_intensity_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_spectrum(intensity=np.array([1.0, -2.0, 3.0]))

    def test_bad_charge_raises(self):
        with pytest.raises(ValueError, match="precursor_charge"):
            make_spectrum(precursor_charge=0)

    def test_bad_precursor_mz_raises(self):
        with pytest.raises(ValueError, match="precursor_mz"):
            make_spectrum(precursor_mz=-5.0)

    def test_empty_spectrum_allowed(self):
        spectrum = make_spectrum(mz=np.empty(0), intensity=np.empty(0))
        assert len(spectrum) == 0
        assert spectrum.base_peak_intensity == 0.0


class TestProperties:
    def test_neutral_mass(self):
        spectrum = make_spectrum(precursor_mz=500.0, precursor_charge=2)
        assert spectrum.neutral_mass == pytest.approx(
            2 * 500.0 - 2 * 1.007276466621
        )

    def test_base_peak_and_tic(self):
        spectrum = make_spectrum()
        assert spectrum.base_peak_intensity == pytest.approx(5.0)
        assert spectrum.total_ion_current == pytest.approx(8.0)

    def test_peptide_key_with_annotation(self):
        spectrum = make_spectrum(peptide=Peptide("PEPTIDEK"))
        assert spectrum.peptide_key() == "PEPTIDEK/2"

    def test_peptide_key_without_annotation(self):
        assert make_spectrum().peptide_key() is None

    def test_copy_with_peaks_preserves_metadata(self):
        spectrum = make_spectrum(peptide=Peptide("ACDK"), is_decoy=True)
        copy = spectrum.copy_with_peaks(
            np.array([150.0]), np.array([1.0])
        )
        assert copy.peptide is spectrum.peptide
        assert copy.is_decoy
        assert len(copy) == 1
        assert len(spectrum) == 3  # original untouched
