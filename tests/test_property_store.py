"""Property-based tests for segmented-store incremental-build identity.

The store's core contract: because each row's hypervector is a pure
function of (spectrum, config) and segments concatenate in ingestion
order, *any* split of a spectrum stream across ``build_store`` /
``append_store`` calls — under any ``segment_rows`` — followed by any
``merge_store`` compaction, yields packed rows (and therefore search
results) bit-identical to a single-shot build.  Hypothesis explores the
split/segment-size/compaction space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdc.spaces import HDSpaceConfig
from repro.index.library import LibraryIndex
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig
from repro.store import (
    SegmentedStore,
    StoreCompatibilityError,
    append_store,
    build_store,
    merge_store,
)

BINNING = BinningConfig()
SPACE = HDSpaceConfig(dim=256, num_bins=BINNING.num_bins, seed=29)
REFERENCES = build_workload(
    WorkloadConfig(name="prop", num_references=30, num_queries=0, seed=31)
).references
BASELINE = LibraryIndex.build(
    REFERENCES, space_config=SPACE, binning=BINNING
)


def _assert_matches_baseline(store: SegmentedStore) -> None:
    merged = store.to_index()
    np.testing.assert_array_equal(merged.packed, BASELINE.packed)
    np.testing.assert_array_equal(
        merged.neutral_masses, BASELINE.neutral_masses
    )
    assert list(merged.identifiers) == list(BASELINE.identifiers)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    splits=st.lists(
        st.integers(min_value=1, max_value=len(REFERENCES) - 1),
        max_size=3,
        unique=True,
    ),
    segment_rows=st.integers(min_value=1, max_value=len(REFERENCES) + 5),
    merge_target=st.none() | st.integers(min_value=1, max_value=40),
)
def test_any_split_and_merge_is_bit_identical(
    tmp_path_factory, splits, segment_rows, merge_target
):
    """build → append* → merge ≡ single-shot build, for every split."""
    root = tmp_path_factory.mktemp("prop-store") / "store"
    bounds = [0, *sorted(splits), len(REFERENCES)]
    chunks = [
        REFERENCES[lo:hi]
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    store = build_store(
        chunks[0],
        root,
        space_config=SPACE,
        binning=BINNING,
        segment_rows=segment_rows,
    )
    store.close()
    for chunk in chunks[1:]:
        append_store(root, chunk, segment_rows=segment_rows).close()
    with SegmentedStore.open(root) as grown:
        _assert_matches_baseline(grown)
    with merge_store(root, target_rows=merge_target) as compacted:
        _assert_matches_baseline(compacted)
        if merge_target is None:
            assert compacted.num_segments == 1


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    dim=st.sampled_from([128, 512]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_append_rejects_any_provenance_drift(tmp_path_factory, dim, seed):
    """Appending under a different space config never succeeds."""
    root = tmp_path_factory.mktemp("prop-store") / "store"
    build_store(
        REFERENCES[:10], root, space_config=SPACE, binning=BINNING
    ).close()
    drifted = HDSpaceConfig(dim=dim, num_bins=BINNING.num_bins, seed=seed)
    assert drifted != SPACE
    with pytest.raises(StoreCompatibilityError, match="provenance mismatch"):
        append_store(root, REFERENCES[10:], space_config=drifted)
