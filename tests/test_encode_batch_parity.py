"""Scalar-vs-fused encode parity: the fused batch pipeline must be
bit-identical to per-spectrum encoding for every input shape.

The fused path (:meth:`SpectrumEncoder.accumulate_batch` /
:meth:`SpectrumEncoder.encode_batch`) concatenates all peaks, gathers
codebook rows with fancy indexing, and segment-sums per spectrum; the
scalar path walks one spectrum at a time.  Both are pure integer
arithmetic, so equality is exact — any mismatch is a bug, not noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.encoder import SpectrumEncoder
from repro.hdc.spaces import HDSpace, HDSpaceConfig
from repro.ms.preprocessing import preprocess
from repro.ms.spectrum import Spectrum
from repro.ms.synthetic import WorkloadConfig, build_workload
from repro.ms.vectorize import BinningConfig, SparseVector, vectorize

BINNING = BinningConfig(min_mz=100.0, max_mz=600.0, bin_width=1.0005)


def make_encoder(
    dim=256, num_levels=8, id_precision_bits=3, chunked=True, seed=23
):
    space = HDSpace(
        HDSpaceConfig(
            dim=dim,
            num_bins=BINNING.num_bins,
            num_levels=num_levels,
            id_precision_bits=id_precision_bits,
            chunked=chunked,
            seed=seed,
        )
    )
    return SpectrumEncoder(space, BINNING)


def empty_vector():
    return SparseVector(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        BINNING.num_bins,
    )


def random_vector(rng, max_peaks=64):
    num_peaks = int(rng.integers(1, max_peaks + 1))
    indices = np.sort(
        rng.choice(BINNING.num_bins, size=num_peaks, replace=False)
    ).astype(np.int64)
    values = rng.gamma(2.0, 50.0, size=num_peaks)
    return SparseVector(indices, values, BINNING.num_bins)


class TestEncodeBatchParity:
    @given(
        seed=st.integers(0, 2**16),
        batch=st.integers(1, 24),
        precision=st.sampled_from([1, 2, 3]),
        chunked=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_spectra_bit_identical(
        self, seed, batch, precision, chunked
    ):
        """Property: fused == scalar for random sparse vectors."""
        encoder = make_encoder(
            id_precision_bits=precision, chunked=chunked, seed=seed % 7
        )
        rng = np.random.default_rng(seed)
        vectors = [random_vector(rng) for _ in range(batch)]
        fused = encoder.encode_batch(vectors)
        assert fused.dtype == np.int8
        for row, vector in enumerate(vectors):
            assert np.array_equal(fused[row], encoder.encode_vector(vector))

    @given(seed=st.integers(0, 2**16), batch=st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_accumulate_batch_matches_scalar_accumulate(self, seed, batch):
        encoder = make_encoder(seed=seed % 5)
        rng = np.random.default_rng(seed)
        vectors = [random_vector(rng) for _ in range(batch)]
        accumulators = encoder.accumulate_batch(vectors)
        assert accumulators.dtype == np.int32
        for row, vector in enumerate(vectors):
            assert np.array_equal(
                accumulators[row], encoder.accumulate(vector)
            )

    def test_empty_sparse_vector_rows_take_tiebreak(self):
        encoder = make_encoder()
        rng = np.random.default_rng(3)
        vectors = [
            empty_vector(),
            random_vector(rng),
            empty_vector(),
            random_vector(rng),
            empty_vector(),
        ]
        fused = encoder.encode_batch(vectors)
        for row in (0, 2, 4):
            assert np.array_equal(fused[row], encoder.space.tiebreak)
        for row in (1, 3):
            assert np.array_equal(
                fused[row], encoder.encode_vector(vectors[row])
            )

    def test_all_empty_batch(self):
        encoder = make_encoder()
        fused = encoder.encode_batch([empty_vector(), empty_vector()])
        assert np.array_equal(
            fused, np.broadcast_to(encoder.space.tiebreak, fused.shape)
        )

    def test_zero_length_batch(self):
        encoder = make_encoder()
        fused = encoder.encode_batch([])
        assert fused.shape == (0, encoder.space.dim)
        assert fused.dtype == np.int8

    def test_single_peak_spectra(self):
        encoder = make_encoder()
        vectors = [
            SparseVector(
                np.array([bin_index], dtype=np.int64),
                np.array([42.0]),
                BINNING.num_bins,
            )
            for bin_index in (0, 7, BINNING.num_bins - 1)
        ]
        fused = encoder.encode_batch(vectors)
        for row, vector in enumerate(vectors):
            assert np.array_equal(fused[row], encoder.encode_vector(vector))

    def test_forced_zero_accumulator_tiebreak(self):
        """Two 1-bit-ID peaks cancel in ~half the dimensions, forcing
        the tiebreak path; fused and scalar must resolve identically."""
        encoder = make_encoder(id_precision_bits=1, num_levels=2, seed=5)
        vector = SparseVector(
            np.array([10, 11], dtype=np.int64),
            np.array([5.0, 5.0]),
            BINNING.num_bins,
        )
        accumulator = encoder.accumulate(vector)
        assert (accumulator == 0).any(), "fixture must exercise the tiebreak"
        fused = encoder.encode_batch([vector])
        assert np.array_equal(fused[0], encoder.encode_vector(vector))
        zero = accumulator == 0
        assert np.array_equal(fused[0][zero], encoder.space.tiebreak[zero])

    def test_mixed_spectrum_and_sparse_vector_input(self):
        encoder = make_encoder()
        workload = build_workload(
            WorkloadConfig(
                name="parity", num_references=6, num_queries=0, seed=4
            )
        )
        spectra = [preprocess(s) for s in workload.references]
        spectra = [s for s in spectra if s is not None]
        mixed = [
            spectra[0],
            vectorize(spectra[1], BINNING),
            empty_vector(),
            spectra[2],
        ]
        fused = encoder.encode_batch(mixed)
        assert np.array_equal(fused[0], encoder.encode(spectra[0]))
        assert np.array_equal(
            fused[1], encoder.encode_vector(vectorize(spectra[1], BINNING))
        )
        assert np.array_equal(fused[2], encoder.space.tiebreak)
        assert np.array_equal(fused[3], encoder.encode(spectra[2]))

    def test_zero_intensity_spectrum_quantises_to_level_zero(self):
        """A spectrum whose max intensity is 0 hits the scale<=0 branch."""
        encoder = make_encoder()
        vector = SparseVector(
            np.array([3, 9], dtype=np.int64),
            np.array([0.0, 0.0]),
            BINNING.num_bins,
        )
        fused = encoder.encode_batch([vector, random_vector(np.random.default_rng(1))])
        assert np.array_equal(fused[0], encoder.encode_vector(vector))

    def test_large_spectrum_spans_block_cap(self):
        """One spectrum bigger than the flat-peak block cap still works."""
        from repro.hdc import encoder as encoder_module

        encoder = make_encoder()
        rng = np.random.default_rng(8)
        big = random_vector(rng, max_peaks=BINNING.num_bins - 1)
        small = random_vector(rng, max_peaks=8)
        original_cap = encoder_module._MAX_FLAT_PEAKS
        encoder_module._MAX_FLAT_PEAKS = 16
        try:
            fused = encoder.encode_batch([small, big, small, big])
        finally:
            encoder_module._MAX_FLAT_PEAKS = original_cap
        for row, vector in enumerate([small, big, small, big]):
            assert np.array_equal(fused[row], encoder.encode_vector(vector))

    def test_out_of_range_bin_raises(self):
        encoder = make_encoder()
        bad = SparseVector(
            np.array([BINNING.num_bins], dtype=np.int64),
            np.array([1.0]),
            BINNING.num_bins,
        )
        with pytest.raises(IndexError):
            encoder.encode_batch([bad])
        negative = SparseVector(
            np.array([-1], dtype=np.int64), np.array([1.0]), BINNING.num_bins
        )
        with pytest.raises(IndexError):
            encoder.encode_batch([negative])


class TestIdBank:
    def test_bank_matches_lazy_rows(self):
        space = HDSpace(
            HDSpaceConfig(dim=128, num_bins=40, num_levels=4, seed=13)
        )
        # Touch a few rows first so the bank has to reuse cached rows.
        lazy = {b: space.id_vector(b).copy() for b in (0, 7, 39)}
        bank = space.id_bank()
        assert bank.shape == (40, 128)
        assert bank.dtype == np.int8
        for b, row in lazy.items():
            assert np.array_equal(bank[b], row)
        # Rows never touched lazily must match fresh generation too.
        fresh = HDSpace(space.config)
        for b in (3, 20, 38):
            assert np.array_equal(bank[b], fresh.id_vector(b))

    def test_bank_is_read_only_and_cached(self):
        space = HDSpace(
            HDSpaceConfig(dim=64, num_bins=10, num_levels=4, seed=1)
        )
        bank = space.id_bank()
        assert bank is space.id_bank()
        with pytest.raises(ValueError):
            bank[0, 0] = 3
        # id_vector served from the bank stays read-only and cached.
        vector = space.id_vector(4)
        assert vector is space.id_vector(4)
        with pytest.raises(ValueError):
            vector[0] = 3

    def test_id_matrix_accepts_ndarray_and_list(self):
        space = HDSpace(
            HDSpaceConfig(dim=64, num_bins=12, num_levels=4, seed=2)
        )
        from_list = space.id_matrix([1, 5, 5, 0])
        from_array = space.id_matrix(np.array([1, 5, 5, 0], dtype=np.int64))
        assert np.array_equal(from_list, from_array)
        for row, b in enumerate((1, 5, 5, 0)):
            assert np.array_equal(from_list[row], space.id_vector(b))

    def test_id_matrix_bounds(self):
        space = HDSpace(
            HDSpaceConfig(dim=64, num_bins=12, num_levels=4, seed=2)
        )
        with pytest.raises(IndexError):
            space.id_matrix(np.array([12]))
        with pytest.raises(IndexError):
            space.id_matrix([-1])
        assert space.id_matrix(np.empty(0, dtype=np.int64)).shape == (0, 64)


class TestSearcherEncodingParity:
    def test_search_matches_search_one(self):
        """The block-encoding search loop is bit-identical to per-query
        search_one calls, including BER injection draw order."""
        from repro.oms.candidates import WindowConfig
        from repro.oms.search import HDOmsSearcher, HDSearchConfig

        workload = build_workload(
            WorkloadConfig(
                name="parity-search",
                num_references=40,
                num_queries=12,
                seed=6,
            )
        )
        binning = BinningConfig()
        space = HDSpace(
            HDSpaceConfig(
                dim=512, num_bins=binning.num_bins, num_levels=8, seed=3
            )
        )
        encoder = SpectrumEncoder(space, binning)
        for mode in ("open", "standard", "cascade"):
            config = HDSearchConfig(mode=mode, query_ber=0.01, noise_seed=77)
            blocked = HDOmsSearcher(
                encoder,
                workload.references,
                windows=WindowConfig(),
                config=config,
            ).search(workload.queries)
            one_by_one = HDOmsSearcher(
                encoder,
                workload.references,
                windows=WindowConfig(),
                config=config,
            )
            expected = [
                one_by_one.search_one(query) for query in workload.queries
            ]
            expected = [psm for psm in expected if psm is not None]
            assert blocked.psms == expected, mode
