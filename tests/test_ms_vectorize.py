"""Tests for m/z binning and sparse vectors."""

import numpy as np
import pytest

from repro.ms.spectrum import Spectrum
from repro.ms.vectorize import (
    BinningConfig,
    cosine_similarity,
    quantize_intensities,
    vectorize,
)


def spectrum_with(mz, intensity):
    return Spectrum(
        identifier="v",
        precursor_mz=700.0,
        precursor_charge=2,
        mz=np.asarray(mz, float),
        intensity=np.asarray(intensity, float),
    )


class TestBinningConfig:
    def test_num_bins(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        assert config.num_bins == 100

    def test_bin_index(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        assert config.bin_index(np.array([100.0, 100.9, 199.9])).tolist() == [0, 0, 99]

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            BinningConfig(bin_width=0.0)
        with pytest.raises(ValueError):
            BinningConfig(min_mz=500, max_mz=100)


class TestVectorize:
    def test_intensities_summed_within_bin(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        vector = vectorize(spectrum_with([150.2, 150.7], [1.0, 2.0]), config)
        assert len(vector) == 1
        assert vector.values[0] == pytest.approx(3.0)

    def test_out_of_range_peaks_dropped(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        vector = vectorize(spectrum_with([50.0, 150.0, 250.0], [1, 1, 1]), config)
        assert len(vector) == 1

    def test_empty_spectrum(self):
        config = BinningConfig()
        vector = vectorize(spectrum_with([], []), config)
        assert len(vector) == 0
        assert vector.norm == 0.0

    def test_indices_sorted_unique(self, small_workload, binning):
        vector = vectorize(small_workload.references[0], binning)
        assert np.all(np.diff(vector.indices) > 0)

    def test_to_dense_roundtrip(self):
        config = BinningConfig(min_mz=100.0, max_mz=110.0, bin_width=1.0)
        vector = vectorize(spectrum_with([101.5, 105.5], [2.0, 3.0]), config)
        dense = vector.to_dense()
        assert dense.shape == (10,)
        assert dense[1] == pytest.approx(2.0)
        assert dense[5] == pytest.approx(3.0)
        assert dense.sum() == pytest.approx(5.0)


class TestCosine:
    def test_self_similarity_is_one(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        vector = vectorize(spectrum_with([120, 130, 140], [1, 2, 3]), config)
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_disjoint_vectors_zero(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        a = vectorize(spectrum_with([120], [1.0]), config)
        b = vectorize(spectrum_with([130], [1.0]), config)
        assert cosine_similarity(a, b) == 0.0

    def test_symmetry(self):
        config = BinningConfig(min_mz=100.0, max_mz=200.0, bin_width=1.0)
        a = vectorize(spectrum_with([120, 140], [1.0, 2.0]), config)
        b = vectorize(spectrum_with([120, 160], [3.0, 1.0]), config)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    def test_empty_vector_zero(self):
        config = BinningConfig()
        a = vectorize(spectrum_with([], []), config)
        b = vectorize(spectrum_with([120], [1.0]), config)
        assert cosine_similarity(a, b) == 0.0


class TestQuantize:
    def test_levels_in_range(self):
        values = np.array([0.0, 0.3, 0.5, 1.0])
        levels, scale = quantize_intensities(values, 16)
        assert scale == pytest.approx(1.0)
        assert levels.min() >= 0
        assert levels.max() == 15

    def test_max_value_gets_top_level(self):
        levels, _ = quantize_intensities(np.array([0.1, 1.0]), 8)
        assert levels[1] == 7

    def test_monotone_in_value(self):
        values = np.linspace(0, 1, 50)
        levels, _ = quantize_intensities(values, 16)
        assert np.all(np.diff(levels) >= 0)

    def test_zero_values(self):
        levels, scale = quantize_intensities(np.zeros(4), 16)
        assert scale == 0.0
        assert np.all(levels == 0)

    def test_empty(self):
        levels, scale = quantize_intensities(np.empty(0), 16)
        assert len(levels) == 0

    def test_too_few_levels_raises(self):
        with pytest.raises(ValueError):
            quantize_intensities(np.array([1.0]), 1)
