"""Tests for the MGF and MSP codecs."""

import io

import numpy as np
import pytest

from repro.ms.mgf import MgfFormatError, read_mgf, write_mgf
from repro.ms.msp import MspFormatError, read_msp, write_msp
from repro.ms.peptide import Peptide
from repro.ms.spectrum import Spectrum


def sample_spectra():
    return [
        Spectrum(
            identifier="scan=1",
            precursor_mz=523.7765,
            precursor_charge=2,
            mz=np.array([110.07, 221.15, 350.2]),
            intensity=np.array([120.0, 34.5, 999.0]),
            peptide=Peptide("PEPTIDEK"),
            retention_time=13.25,
        ),
        Spectrum(
            identifier="scan=2",
            precursor_mz=801.4,
            precursor_charge=3,
            mz=np.array([200.2, 300.3]),
            intensity=np.array([1.0, 2.0]),
        ),
    ]


class TestMgf:
    def test_roundtrip(self):
        buffer = io.StringIO()
        count = write_mgf(sample_spectra(), buffer)
        assert count == 2
        buffer.seek(0)
        loaded = list(read_mgf(buffer))
        assert len(loaded) == 2
        assert loaded[0].identifier == "scan=1"
        assert loaded[0].precursor_mz == pytest.approx(523.7765, abs=1e-4)
        assert loaded[0].precursor_charge == 2
        assert loaded[0].peptide.sequence == "PEPTIDEK"
        assert loaded[0].retention_time == pytest.approx(13.25)
        assert np.allclose(loaded[0].mz, [110.07, 221.15, 350.2], atol=1e-4)
        assert loaded[1].peptide is None

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "spectra.mgf"
        write_mgf(sample_spectra(), path)
        loaded = list(read_mgf(path))
        assert len(loaded) == 2

    def test_charge_notations(self):
        text = (
            "BEGIN IONS\nTITLE=a\nPEPMASS=500.1\nCHARGE=2+\n"
            "100.0 1.0\nEND IONS\n"
            "BEGIN IONS\nTITLE=b\nPEPMASS=500.1\nCHARGE=+3\n"
            "100.0 1.0\nEND IONS\n"
        )
        loaded = list(read_mgf(io.StringIO(text)))
        assert [s.precursor_charge for s in loaded] == [2, 3]

    def test_missing_pepmass_raises(self):
        text = "BEGIN IONS\nTITLE=a\n100.0 1.0\nEND IONS\n"
        with pytest.raises(MgfFormatError, match="PEPMASS"):
            list(read_mgf(io.StringIO(text)))

    def test_unterminated_block_raises(self):
        text = "BEGIN IONS\nTITLE=a\nPEPMASS=500\n100.0 1.0\n"
        with pytest.raises(MgfFormatError, match="ended inside"):
            list(read_mgf(io.StringIO(text)))

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n\nBEGIN IONS\nTITLE=a\nPEPMASS=500.1\n"
            "CHARGE=2+\n100.0 1.0\n\nEND IONS\n"
        )
        assert len(list(read_mgf(io.StringIO(text)))) == 1


class TestMsp:
    def test_roundtrip(self):
        buffer = io.StringIO()
        count = write_msp(sample_spectra(), buffer)
        assert count == 2
        buffer.seek(0)
        loaded = list(read_msp(buffer))
        assert len(loaded) == 2
        assert loaded[0].peptide.sequence == "PEPTIDEK"
        assert loaded[0].precursor_charge == 2
        assert loaded[0].precursor_mz == pytest.approx(523.7765, abs=1e-4)
        assert not loaded[0].is_decoy

    def test_decoy_flag_roundtrip(self):
        decoy = Spectrum(
            identifier="DECOY_x",
            precursor_mz=400.0,
            precursor_charge=2,
            mz=np.array([150.0]),
            intensity=np.array([1.0]),
            peptide=Peptide("KEDITPEPK"),
            is_decoy=True,
        )
        buffer = io.StringIO()
        write_msp([decoy] + sample_spectra(), buffer)
        buffer.seek(0)
        loaded = list(read_msp(buffer))
        assert loaded[0].is_decoy
        assert not loaded[1].is_decoy  # Decoy=false must not match

    def test_mw_converted_to_mz(self):
        text = "Name: PEPTIDEK/2\nMW: 927.4549\nNum peaks: 1\n100.0\t1.0\n\n"
        loaded = list(read_msp(io.StringIO(text)))
        expected = (927.4549 + 2 * 1.007276466621) / 2
        assert loaded[0].precursor_mz == pytest.approx(expected, abs=1e-4)

    def test_peak_count_mismatch_raises(self):
        text = "Name: AK/1\nPrecursorMZ: 300.0\nNum peaks: 2\n100.0\t1.0\n\n"
        with pytest.raises(MspFormatError, match="expected 2 peaks"):
            list(read_msp(io.StringIO(text)))

    def test_missing_mass_raises(self):
        text = "Name: AK/1\nNum peaks: 1\n100.0\t1.0\n\n"
        with pytest.raises(MspFormatError, match="neither"):
            list(read_msp(io.StringIO(text)))

    def test_workload_roundtrip(self, small_workload, tmp_path):
        path = tmp_path / "lib.msp"
        write_msp(small_workload.references, path)
        loaded = list(read_msp(path))
        assert len(loaded) == len(small_workload.references)
        for original, reloaded in zip(small_workload.references, loaded):
            assert reloaded.peptide.sequence == original.peptide.sequence
            assert reloaded.precursor_charge == original.precursor_charge
            assert len(reloaded) == len(original)
