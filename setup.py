"""Setuptools shim.

The offline environment lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path through this file.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
