"""Setuptools entry point.

The offline environment lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path through this file.  Metadata is
declared here (rather than in ``pyproject.toml``'s ``[project]`` table)
to keep that legacy path working on old setuptools; ``pyproject.toml``
carries the build-system pin and tool configuration (ruff).
"""

import os

from setuptools import find_packages, setup

long_description = ""
if os.path.exists("README.md"):
    with open("README.md", encoding="utf-8") as handle:
        long_description = handle.read()

setup(
    name="repro-hdoms",
    version="1.0.0",
    description=(
        "Reproduction of 'Efficient Open Modification Spectral Library "
        "Searching in High-Dimensional Space with Multi-Level-Cell Memory' "
        "(Fan et al., DAC 2024)"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "dev": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "ruff",
        ],
    },
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "hdoms = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Bio-Informatics",
    ],
)
