"""Physical and proteomics constants shared across the package.

All masses are monoisotopic and expressed in Dalton (Da) unless noted
otherwise.  Values follow the CODATA/IUPAC recommendations commonly used
by proteomics toolkits.
"""

from __future__ import annotations

#: Mass of a proton (Da).  Used to convert between neutral mass and m/z.
PROTON_MASS = 1.007276466621

#: Mass of a hydrogen atom (Da).
HYDROGEN_MASS = 1.0078250319

#: Mass of a water molecule (Da).  A peptide's neutral mass is the sum of
#: its residue masses plus one water (the N-terminal H and C-terminal OH).
WATER_MASS = 18.0105646863

#: Mass of ammonia (Da), used for neutral-loss ions.
AMMONIA_MASS = 17.0265491015

#: Mass of a CO group (Da); ``a``-ions are ``b``-ions minus CO.
CO_MASS = 27.9949146221

#: Default fragment m/z range retained during preprocessing (Da).
#: Mirrors the ranges used by ANN-SoLo / HyperOMS style pipelines.
DEFAULT_MIN_MZ = 100.0
DEFAULT_MAX_MZ = 1500.0

#: Default m/z bin width (Da) used when vectorising spectra.  1.000508 is
#: the classic "peptide mass cluster" spacing that keeps isotopic peaks of
#: the same nominal mass in one bin.
DEFAULT_BIN_WIDTH = 1.0005079

#: Default intensity threshold relative to the base peak (paper Section
#: 3.1: "typically set at 1% of the greatest peak intensity").
DEFAULT_MIN_INTENSITY_FRACTION = 0.01

#: Default cap on the number of peaks retained per spectrum (paper
#: Section 3.1: "a refined set of 50 to 150 peaks").
DEFAULT_MAX_PEAKS = 150

#: Default width of the *open* precursor window in Dalton.  Chick et al.
#: (the HEK293 study the paper evaluates on) use a 500 Da mass-tolerant
#: window; ANN-SoLo and HyperOMS adopt the same convention.
DEFAULT_OPEN_WINDOW_DA = 500.0

#: Default width of the *standard* (narrow) precursor window in Dalton.
DEFAULT_STANDARD_WINDOW_DA = 0.05

#: Default false-discovery-rate threshold applied by the FDR filter.
DEFAULT_FDR_THRESHOLD = 0.01
