"""Unified engine-construction configuration.

The knobs that control *how* a searcher executes — shard count, worker
pool, executor kind, similarity backend, score-block tiling, pipeline
batching, and the ANN prefilter — accreted independently onto
:class:`~repro.index.sharded.ShardedSearcher`,
:class:`~repro.service.server.ServiceConfig`, and three separate CLI
flag groups, drifting a little with every addition.
:class:`EngineConfig` is now the single source of truth: every entry
point accepts one (the ``engine=`` keyword on the searchers, the
``engine_config`` field on :class:`~repro.service.server.ServiceConfig`,
the shared flag group built by :func:`repro.cli.add_engine_args`), the
legacy kwargs keep working behind :class:`DeprecationWarning` shims,
and the service reports the fully resolved config under
``/stats``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Union

from .ann import AnnConfig

#: The engine families a config can request.  ``auto`` defers the
#: choice to the consumer (the service picks ``batched`` for trivially
#: serial configs, ``segmented`` for manifest-backed stores, and
#: ``sharded`` otherwise).
ENGINE_KINDS = ("auto", "batched", "sharded", "segmented")

#: The supported parallel execution modes.
EXECUTOR_KINDS = ("process", "thread")


@dataclass(frozen=True)
class EngineConfig:
    """How to build and drive a search engine.

    Attributes:
        kind: Engine family — one of :data:`ENGINE_KINDS`.  ``auto``
            lets the consumer pick.
        backend: ``"dense"``, ``"packed"``, or a picklable
            zero-argument factory returning a
            :class:`~repro.oms.search.SimilarityBackend`.
        num_shards: Contiguous row partitions per index (each becomes
            one scoring task per query micro-batch).
        num_workers: Worker count; ``None`` auto-sizes to
            ``min(num_shards, cpu_count)``, ``0`` scores serially
            in-process.
        executor: ``"process"`` or ``"thread"`` (ignored when
            ``num_workers == 0``; segmented searchers always score
            in-process and treat ``"process"`` as ``"thread"``).
        score_block_rows: Rows per scoring block for backends that
            tile (``None`` = auto-size, ``0`` = untiled).  Never
            changes results.
        pipeline_batch: Queries per encode micro-batch; ``None`` uses
            :data:`~repro.oms.search.ENCODE_BLOCK_SIZE`.
        ann: Optional :class:`~repro.ann.AnnConfig` enabling the
            Hamming-LSH candidate prefilter.
    """

    kind: str = "auto"
    backend: Union[str, Callable] = "dense"
    num_shards: int = 1
    num_workers: Optional[int] = 0
    executor: str = "process"
    score_block_rows: Optional[int] = None
    pipeline_batch: Optional[int] = None
    ann: Optional[AnnConfig] = None

    def __post_init__(self) -> None:
        if self.kind not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine kind {self.kind!r}; expected one of {ENGINE_KINDS}"
            )
        if not callable(self.backend) and self.backend not in ("dense", "packed"):
            raise ValueError(
                f"unknown backend {self.backend!r}; expected 'dense', 'packed', "
                "or a backend factory"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.num_workers is not None and self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0 or None, got {self.num_workers}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTOR_KINDS}"
            )
        if self.score_block_rows is not None and self.score_block_rows < 0:
            raise ValueError(
                f"score_block_rows must be >= 0 or None, got {self.score_block_rows}"
            )
        if self.pipeline_batch is not None and self.pipeline_batch < 1:
            raise ValueError(
                f"pipeline_batch must be >= 1, got {self.pipeline_batch}"
            )

    @property
    def backend_label(self) -> str:
        """Human-readable backend name (factories report ``__name__``)."""
        if isinstance(self.backend, str):
            return self.backend
        return getattr(self.backend, "__name__", "custom")

    def replace(self, **changes) -> "EngineConfig":
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe view of the fully resolved config (for ``/stats``)."""
        return {
            "kind": self.kind,
            "backend": self.backend_label,
            "num_shards": self.num_shards,
            "num_workers": self.num_workers,
            "executor": self.executor,
            "score_block_rows": self.score_block_rows,
            "pipeline_batch": self.pipeline_batch,
            "ann": dataclasses.asdict(self.ann) if self.ann is not None else None,
        }

    def build_backend(self):
        """Instantiate the similarity backend this config names.

        Applies ``score_block_rows`` when the backend supports tiling.
        Imported lazily to keep :mod:`repro.engine` dependency-free at
        import time.
        """
        from .exec.scorer import resolve_backend

        backend = resolve_backend(self.backend)()
        if self.score_block_rows is not None and hasattr(backend, "set_block_rows"):
            backend.set_block_rows(self.score_block_rows)
        return backend
