"""Configuration of the proposed OMS accelerator."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rram.crossbar import CrossbarConfig
from ..rram.device import DEFAULT_COMPUTE_READ_TIME_S, DeviceConfig


@dataclass(frozen=True)
class AcceleratorConfig:
    """Hardware parameters of the in-memory OMS engine.

    ``max_active_pairs`` defaults to the paper's operating point of 64
    activated rows with 8-level cells (Section 5.2.2).  ``encoder_adc_bits``
    may be lower than the search ADC resolution because encoding only
    binarises the MAC output (Section 4.2.3).
    """

    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    device: DeviceConfig = field(default_factory=DeviceConfig)
    #: Bits per cell for dense query-hypervector storage (Section 4.3).
    storage_bits_per_cell: int = 3
    #: ADC resolution used during in-memory encoding.  Encoding only
    #: binarises the MAC (Section 4.2.3), so a coarse converter
    #: suffices; 5 bits keeps the quantisation error visible in the
    #: Figure 9a row sweep without drowning the sign information.
    encoder_adc_bits: int = 5
    #: Number of physical crossbar arrays available for the search stage
    #: (column tiles beyond this count are processed sequentially).
    num_arrays: int = 256
    #: Sensing-cycle clock (open-circuit voltage settle + ADC), MHz.
    clock_mhz: float = 10.0
    #: Time after programming at which all computing happens (the paper
    #: measures at least 2 hours post-programming).
    compute_read_time_s: float = DEFAULT_COMPUTE_READ_TIME_S
    seed: int = 0

    def __post_init__(self) -> None:
        if self.storage_bits_per_cell not in (1, 2, 3):
            raise ValueError("storage_bits_per_cell must be 1, 2 or 3")
        if not 1 <= self.encoder_adc_bits <= 16:
            raise ValueError("encoder_adc_bits must be in [1, 16]")
        if self.num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be > 0")

    @property
    def cycle_seconds(self) -> float:
        """Duration of one sensing cycle."""
        return 1.0 / (self.clock_mhz * 1e6)
