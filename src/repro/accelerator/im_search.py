"""In-memory Hamming similarity search (paper Section 4.1, Figure 4a).

Reference hypervectors are stored **vertically**: each reference is a
column of differential pairs, dimensions run down the rows.  A query is
broadcast as differential bit-line voltages; every activated column
produces one MAC (= dot product = affine Hamming similarity) per
row-chunk sweep.  Chunks of at most ``max_active_pairs`` rows are
sensed per cycle (the paper's chip drives 64 rows of 8-level cells) and
partial MACs accumulate digitally.

Implements the :class:`repro.oms.search.SimilarityBackend` protocol so
:class:`~repro.oms.search.HDOmsSearcher` can run unchanged on simulated
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rram.adc import ADC
from ..rram.crossbar import sense_chunk
from ..rram.device import RRAMDeviceModel
from ..rram.metrics import normalized_rmse
from .config import AcceleratorConfig


@dataclass
class SearchStats:
    """Operation counters for the performance model."""

    queries: int = 0
    sensing_cycles: int = 0
    adc_conversions: int = 0
    stored_references: int = 0


class InMemorySearchBackend:
    """Analog Hamming-search backend over RRAM-stored references."""

    name = "mlc-rram"

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()
        self.device = RRAMDeviceModel(self.config.device, seed=self.config.seed + 7)
        self.adc = ADC(self.config.crossbar.adc_config())
        self._rng = np.random.default_rng(self.config.seed + 23)
        self._g_plus: Optional[np.ndarray] = None
        self._g_minus: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        self._dim = 0
        self.stats = SearchStats()
        self._exact_refs: Optional[np.ndarray] = None

    def prepare(self, reference_hvs: np.ndarray) -> None:
        """Program the reference library into the crossbar fabric.

        Weight layout is (dim, num_refs): dimension d of reference r
        lives at row-pair d, column r.  Conductances are programmed once
        and relaxed to the compute read time, matching the measurement
        protocol of Section 5.2.1.
        """
        reference_hvs = np.asarray(reference_hvs)
        if reference_hvs.ndim != 2:
            raise ValueError("reference_hvs must be (n, dim)")
        weights = reference_hvs.T.astype(np.float64)  # (dim, n)
        self._dim = weights.shape[0]
        gmax = self.device.config.gmax_us
        target_plus = 0.5 * (1.0 + weights) * gmax
        target_minus = 0.5 * (1.0 - weights) * gmax
        self._g_plus = self.device.program_and_relax(
            target_plus, self.config.compute_read_time_s, self._rng
        ).astype(np.float32)
        self._g_minus = self.device.program_and_relax(
            target_minus, self.config.compute_read_time_s, self._rng
        ).astype(np.float32)
        self._offsets = self._rng.normal(
            0.0, self.config.crossbar.offset_sigma_v, weights.shape[1]
        )
        self._exact_refs = reference_hvs.astype(np.float32)
        self.stats.stored_references = weights.shape[1]

    def scores(self, query_hv: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Analog MAC scores of the query against candidate columns."""
        if self._g_plus is None:
            raise RuntimeError("backend not prepared")
        positions = np.asarray(positions, dtype=np.int64)
        query = np.asarray(query_hv, dtype=np.float64)
        if query.shape != (self._dim,):
            raise ValueError(f"query shape {query.shape} != ({self._dim},)")
        max_active = self.config.crossbar.max_active_pairs
        totals = np.zeros(len(positions), dtype=np.float64)
        g_plus = self._g_plus[:, positions].astype(np.float64)
        g_minus = self._g_minus[:, positions].astype(np.float64)
        offsets = self._offsets[positions]
        for start in range(0, self._dim, max_active):
            rows = slice(start, min(start + max_active, self._dim))
            totals += sense_chunk(
                query[rows],
                g_plus[rows],
                g_minus[rows],
                offsets,
                self.config.crossbar,
                self.device.config.gmax_us,
                1.0,
                self.adc,
                self._rng,
            )
            self.stats.sensing_cycles += 1
            self.stats.adc_conversions += len(positions)
        self.stats.queries += 1
        return totals

    def exact_scores(
        self, query_hv: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Noise-free reference scores (digital dot products)."""
        if self._exact_refs is None:
            raise RuntimeError("backend not prepared")
        subset = self._exact_refs[np.asarray(positions, dtype=np.int64)]
        return subset @ query_hv.astype(np.float32)

    def search_nrmse(
        self, query_hv: np.ndarray, positions: np.ndarray
    ) -> float:
        """Normalised RMSE of analog vs. exact scores (Figure 9b)."""
        analog = self.scores(query_hv, positions)
        exact = self.exact_scores(query_hv, positions)
        return normalized_rmse(exact, analog)
