"""The proposed accelerator, assembled (paper Sections 4 + 5.3).

:class:`OmsAccelerator` bundles everything "this work" adds on top of
the plain HD pipeline: in-memory chunked encoding, in-memory Hamming
search, and (optionally) MLC round-tripping of query hypervectors
through dense n-bit storage.  ``build_searcher`` returns a standard
:class:`~repro.oms.search.HDOmsSearcher`, so the accelerator slots into
the same pipeline and FDR machinery as every baseline — the only
difference is that encode and similarity run on simulated RRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig
from ..oms.candidates import WindowConfig
from ..oms.search import HDOmsSearcher, HDSearchConfig
from ..rram.device import RRAMDeviceModel
from ..rram.storage import HypervectorStore
from .config import AcceleratorConfig
from .im_encoder import InMemoryEncoder
from .im_search import InMemorySearchBackend
from .perf import AcceleratorPerfModel, EnergyParams


class StoredQueryEncoder:
    """Encoder wrapper that round-trips hypervectors through MLC storage.

    Models the dense non-differential storage of Section 4.3: after
    encoding, the hypervector is written at ``bits_per_cell`` bits per
    cell and read back after ``storage_time_s`` of relaxation, so
    storage bit errors flow into the search exactly as on the chip.
    """

    def __init__(
        self,
        inner,
        bits_per_cell: int,
        device: RRAMDeviceModel,
        storage_time_s: float,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.space = inner.space
        self.storage_time_s = storage_time_s
        self._store = HypervectorStore(bits_per_cell, device=device, seed=seed)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one spectrum into a bipolar hypervector."""
        hypervector = self.inner.encode(spectrum)
        self._store.write(hypervector)
        return self._store.read(self.storage_time_s).hypervectors[0]

    def encode_batch(self, spectra: Sequence) -> np.ndarray:
        """Encode many spectra; output rows align with the input order."""
        hypervectors = self.inner.encode_batch(spectra)
        self._store.write(hypervectors)
        return self._store.read(self.storage_time_s).hypervectors


@dataclass
class OmsAccelerator:
    """This work: HD open modification search on MLC RRAM.

    Parameters
    ----------
    config:
        Hardware configuration (array geometry, bits/cell, ADCs).
    space_config / binning / preprocessing / windows / search:
        Algorithm-side settings, mirroring the software pipeline; the
        space is forced to the chunked-level scheme the hardware needs.
    store_query_hypervectors:
        When True, query hypervectors take the Section-4.3 storage
        round trip before searching.
    """

    config: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    space_config: HDSpaceConfig = field(default_factory=HDSpaceConfig)
    binning: BinningConfig = field(default_factory=BinningConfig)
    preprocessing: PreprocessingConfig = field(default_factory=PreprocessingConfig)
    windows: WindowConfig = field(default_factory=WindowConfig)
    search: HDSearchConfig = field(default_factory=HDSearchConfig)
    store_query_hypervectors: bool = False
    storage_time_s: float = 3600.0

    def __post_init__(self) -> None:
        space_config = replace(
            self.space_config, chunked=True, num_bins=self.binning.num_bins
        )
        self.space = HDSpace(space_config)
        self.exact_encoder = SpectrumEncoder(self.space, self.binning)
        self.im_encoder = InMemoryEncoder(self.exact_encoder, self.config)
        encoder = self.im_encoder
        if self.store_query_hypervectors:
            encoder = StoredQueryEncoder(
                self.im_encoder,
                self.config.storage_bits_per_cell,
                RRAMDeviceModel(self.config.device, seed=self.config.seed + 91),
                self.storage_time_s,
                seed=self.config.seed + 13,
            )
        self.encoder = encoder
        self.backend = InMemorySearchBackend(self.config)

    def build_searcher(self, references: Sequence[Spectrum]) -> HDOmsSearcher:
        """Index a reference library on the simulated hardware."""
        return HDOmsSearcher(
            self.encoder,
            references,
            preprocessing=self.preprocessing,
            windows=self.windows,
            config=self.search,
            backend=self.backend,
        )

    def perf_model(
        self, energy: Optional[EnergyParams] = None
    ) -> AcceleratorPerfModel:
        """Analytical performance/energy model for this configuration."""
        return AcceleratorPerfModel(self.config, energy or EnergyParams())
