"""In-memory spectrum encoding (paper Section 4.2, Figure 5c).

The ID codebook is held in RRAM: each m/z bin's ID hypervector occupies
one (differential) row bank across the array columns.  Encoding a
spectrum activates exactly the rows of its peaks' bins — this is why
"number of activated rows" is the error knob of Figure 9a — and feeds
the corresponding level hypervectors as inputs.

With classic level hypervectors this is an element-wise MAC: for output
dimension ``d`` the input of peak ``i`` is ``LV_i[d]``, different for
every column, so only one column per cycle is valid (Figure 5a).  The
chunked level scheme (Section 4.2.1) makes the input *constant within a
chunk*: driving the peaks' rows with the chunk value yields valid MAC
outputs for every column of the chunk simultaneously — MVM-style
throughput (Figure 5c).

This implementation reuses the exact sensing physics of
:func:`repro.rram.crossbar.sense_chunk` with lazily programmed codebook
rows (only bins a workload touches are materialised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..hdc.encoder import SpectrumEncoder, sign_with_tiebreak
from ..ms.spectrum import Spectrum
from ..ms.vectorize import SparseVector, vectorize
from ..rram.adc import ADC, ADCConfig
from ..rram.crossbar import sense_chunk
from ..rram.device import RRAMDeviceModel
from .config import AcceleratorConfig


@dataclass
class EncoderStats:
    """Operation counters for the performance model."""

    spectra_encoded: int = 0
    sensing_cycles: int = 0
    adc_conversions: int = 0
    programmed_rows: int = 0


class InMemoryEncoder:
    """RRAM-backed implementation of Eq. 1 using the chunked-LV trick.

    Drop-in replacement for :class:`~repro.hdc.encoder.SpectrumEncoder`
    (exposes ``space``, ``encode``, ``encode_batch``); the accumulator is
    produced by simulated analog MACs instead of exact integer math.
    """

    def __init__(
        self,
        exact_encoder: SpectrumEncoder,
        config: Optional[AcceleratorConfig] = None,
    ) -> None:
        space = exact_encoder.space
        if space.chunked_levels is None:
            raise ValueError(
                "in-memory encoding requires a chunked-level HDSpace "
                "(HDSpaceConfig(chunked=True))"
            )
        self.exact_encoder = exact_encoder
        self.space = space
        self.binning = exact_encoder.binning
        self.config = config or AcceleratorConfig()
        self.device = RRAMDeviceModel(self.config.device, seed=self.config.seed)
        self.adc = ADC(
            ADCConfig(
                bits=self.config.encoder_adc_bits,
                v_min=self.config.crossbar.v_ref - self.config.crossbar.v_pulse,
                v_max=self.config.crossbar.v_ref + self.config.crossbar.v_pulse,
            )
        )
        self._rng = np.random.default_rng(self.config.seed + 55)
        self._w_max = float(2 ** (space.config.id_precision_bits - 1))
        self._offsets = self._rng.normal(
            0.0, self.config.crossbar.offset_sigma_v, space.dim
        )
        self._row_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._chunk_slices = space.chunked_levels.chunk_slices()
        self.stats = EncoderStats()

    def _codebook_row(self, bin_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Relaxed conductance pair for one ID row (lazily programmed)."""
        cached = self._row_cache.get(bin_index)
        if cached is None:
            weights = self.space.id_vector(bin_index).astype(np.float64)
            gmax = self.device.config.gmax_us
            target_plus = 0.5 * (1.0 + weights / self._w_max) * gmax
            target_minus = 0.5 * (1.0 - weights / self._w_max) * gmax
            g_plus = self.device.program_and_relax(
                target_plus, self.config.compute_read_time_s, self._rng
            ).astype(np.float32)
            g_minus = self.device.program_and_relax(
                target_minus, self.config.compute_read_time_s, self._rng
            ).astype(np.float32)
            cached = (g_plus, g_minus)
            self._row_cache[bin_index] = cached
            self.stats.programmed_rows += 1
        return cached

    def accumulate(self, vector: SparseVector) -> np.ndarray:
        """Analog estimate of Eq. 1's accumulator (float64, (dim,))."""
        dim = self.space.dim
        if len(vector) == 0:
            return np.zeros(dim, dtype=np.float64)
        ids_g = [self._codebook_row(int(b)) for b in vector.indices]
        g_plus = np.stack([pair[0] for pair in ids_g]).astype(np.float64)
        g_minus = np.stack([pair[1] for pair in ids_g]).astype(np.float64)
        _ids, levels = self.exact_encoder.peak_operands(vector)
        chunk_values = self.space.chunked_levels.chunk_values
        max_active = self.config.crossbar.max_active_pairs
        num_peaks = len(vector)
        accumulator = np.zeros(dim, dtype=np.float64)
        groups = [
            np.arange(start, min(start + max_active, num_peaks))
            for start in range(0, num_peaks, max_active)
        ]
        for chunk_index, chunk_slice in enumerate(self._chunk_slices):
            inputs_full = chunk_values[levels, chunk_index].astype(np.float64)
            for group in groups:
                accumulator[chunk_slice] += sense_chunk(
                    inputs_full[group],
                    g_plus[group][:, chunk_slice],
                    g_minus[group][:, chunk_slice],
                    self._offsets[chunk_slice],
                    self.config.crossbar,
                    self.device.config.gmax_us,
                    self._w_max,
                    self.adc,
                    self._rng,
                )
                self.stats.sensing_cycles += 1
                self.stats.adc_conversions += (
                    chunk_slice.stop - chunk_slice.start
                )
        return accumulator

    def encode_vector(self, vector: SparseVector) -> np.ndarray:
        """Encode one sparse vector through the analog path."""
        accumulator = self.accumulate(vector)
        self.stats.spectra_encoded += 1
        return sign_with_tiebreak(accumulator, self.space.tiebreak)

    def encode(self, spectrum: Spectrum) -> np.ndarray:
        """Encode one preprocessed spectrum."""
        return self.encode_vector(vectorize(spectrum, self.binning))

    def encode_batch(self, spectra: Sequence) -> np.ndarray:
        """Encode many spectra into an (n, dim) int8 matrix."""
        out = np.empty((len(spectra), self.space.dim), dtype=np.int8)
        for row, item in enumerate(spectra):
            if isinstance(item, SparseVector):
                out[row] = self.encode_vector(item)
            else:
                out[row] = self.encode(item)
        return out

    def encoding_bit_error_rate(self, vectors: Sequence[SparseVector]) -> float:
        """Mean sign-disagreement vs. the exact encoder (Figure 9a).

        Dimensions whose exact accumulator is zero are excluded: their
        sign is resolved by the digital tiebreak, so neither outcome is
        an "error".  The exact accumulators come from the fused
        :meth:`~repro.hdc.encoder.SpectrumEncoder.accumulate_batch`
        (bit-identical to per-spectrum ``accumulate``, one vectorized
        pass), so only the analog side pays per-spectrum cost.
        """
        mismatches = 0
        comparable = 0
        vectors = list(vectors)
        exact_accumulators = self.exact_encoder.accumulate_batch(vectors)
        for vector, exact in zip(vectors, exact_accumulators):
            analog = self.accumulate(vector)
            nonzero = exact != 0
            mismatches += int(
                np.sum((exact[nonzero] > 0) != (analog[nonzero] > 0))
            )
            comparable += int(nonzero.sum())
        return mismatches / comparable if comparable else 0.0
