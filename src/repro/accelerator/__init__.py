"""The proposed OMS accelerator (paper Section 4).

In-memory encoding, in-memory Hamming search, MLC query storage, and
the performance/energy models behind Figure 12 and Section 5.3.3.
"""

from .config import AcceleratorConfig
from .im_encoder import EncoderStats, InMemoryEncoder
from .im_search import InMemorySearchBackend, SearchStats
from .accelerator import OmsAccelerator, StoredQueryEncoder
from .perf import (
    ALL_BASELINES,
    ANN_SOLO_CPU,
    ANN_SOLO_GPU,
    HYPEROMS_GPU,
    AcceleratorPerfModel,
    DigitalPlatformModel,
    EnergyParams,
    PAPER_HEK293_SHAPE,
    PAPER_IPRG2012_SHAPE,
    PlatformCost,
    StageCost,
    WorkloadShape,
    energy_improvements,
    hd_operation_count,
    platform_costs,
    sdp_operation_count,
    speedups_vs_this_work,
)

__all__ = [
    "AcceleratorConfig",
    "EncoderStats",
    "InMemoryEncoder",
    "InMemorySearchBackend",
    "SearchStats",
    "OmsAccelerator",
    "StoredQueryEncoder",
    "ALL_BASELINES",
    "ANN_SOLO_CPU",
    "ANN_SOLO_GPU",
    "HYPEROMS_GPU",
    "AcceleratorPerfModel",
    "DigitalPlatformModel",
    "EnergyParams",
    "PAPER_HEK293_SHAPE",
    "PAPER_IPRG2012_SHAPE",
    "PlatformCost",
    "StageCost",
    "WorkloadShape",
    "energy_improvements",
    "hd_operation_count",
    "platform_costs",
    "sdp_operation_count",
    "speedups_vs_this_work",
]
