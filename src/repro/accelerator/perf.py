"""Performance and energy models (paper Section 5.3.3, Figure 12).

The accelerator's side is computed from first principles: sensing-cycle
counts follow from the dataflow (chunked encoding, row-chunked search
MVMs, array-count-limited column parallelism) and energy from per-ADC
and per-cell-read constants in the range published for RRAM
compute-in-memory macros (Wan et al. 2022; Xue et al. 2019).

The digital baselines cannot be measured in this offline environment
(no RTX 4090 / i7-11700K, no ANN-SoLo install), so they are modelled as
operation counts divided by an *effective sustained throughput*.  The
throughput and power constants below were calibrated once so the
modelled iPRG2012-scale ratios land near the paper's reported
1.7x / 24.8x / 76.7x speedups; energies then follow as time x power
with physically plausible sustained powers.  The Figure 12 bench
reports how close the modelled ratios come to the paper's — they are a
*model*, not a measurement, and EXPERIMENTS.md discusses the one place
the paper's own numbers cannot be reconciled with any single
(time, power) assignment (HyperOMS energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .config import AcceleratorConfig


@dataclass(frozen=True)
class WorkloadShape:
    """Abstract size of an OMS workload for analytical cost models."""

    num_queries: int
    num_references: int
    avg_peaks: float = 100.0
    #: Fraction of the library inside a +-500 Da open window (tryptic
    #: precursor masses span roughly 700-3500 Da, so a wide window
    #: covers on the order of a third of the library).
    open_candidate_fraction: float = 0.30
    hd_dim: int = 8192
    num_chunks: int = 128
    #: Candidates ANN-SoLo's ANN index forwards to exact re-scoring.
    ann_probe_candidates: int = 1024

    def __post_init__(self) -> None:
        if self.num_queries < 0 or self.num_references < 1:
            raise ValueError("workload sizes must be positive")
        if not 0 < self.open_candidate_fraction <= 1:
            raise ValueError("open_candidate_fraction must be in (0, 1]")

    @property
    def avg_open_candidates(self) -> float:
        """Mean candidate rows scored per open-search query."""
        return self.open_candidate_fraction * self.num_references


#: The paper's two workloads (Table 1).
PAPER_IPRG2012_SHAPE = WorkloadShape(num_queries=16_000, num_references=1_000_000)
PAPER_HEK293_SHAPE = WorkloadShape(num_queries=47_000, num_references=3_000_000)


@dataclass(frozen=True)
class StageCost:
    """Cycles/latency/energy of one pipeline stage."""

    cycles: int
    seconds: float
    joules: float


@dataclass(frozen=True)
class PlatformCost:
    """End-to-end cost of one platform on one workload."""

    name: str
    seconds: float
    joules: float

    def speedup_vs(self, other: "PlatformCost") -> float:
        """How much faster *self* is than *other* (>1 means faster)."""
        return other.seconds / self.seconds

    def energy_improvement_vs(self, other: "PlatformCost") -> float:
        """How much less energy *self* uses than *other*."""
        return other.joules / self.joules


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation energy constants for the RRAM accelerator."""

    #: Energy per ADC conversion (pJ).  8-bit SAR ADCs in mature nodes
    #: land in the low-pJ range.
    adc_energy_pj: float = 4.0
    #: Energy per cell read per sensing cycle (fJ): open-circuit voltage
    #: sensing avoids static current, keeping this in the tens of fJ.
    cell_read_energy_fj: float = 10.0
    #: Digital accumulation / control overhead as a fraction of the
    #: analog energy.
    digital_overhead: float = 0.20


class AcceleratorPerfModel:
    """Analytical cost of the proposed in-memory OMS engine."""

    name = "this-work-mlc-rram"

    def __init__(
        self,
        config: AcceleratorConfig = AcceleratorConfig(),
        energy: EnergyParams = EnergyParams(),
    ) -> None:
        self.config = config
        self.energy = energy

    def _cycle_energy_j(self, active_pairs: int, columns: int) -> float:
        """Energy of one sensing cycle across ``columns`` outputs."""
        adc = columns * self.energy.adc_energy_pj * 1e-12
        cells = (
            columns
            * 2
            * active_pairs
            * self.energy.cell_read_energy_fj
            * 1e-15
        )
        return (adc + cells) * (1.0 + self.energy.digital_overhead)

    def encode_cost(self, shape: WorkloadShape) -> StageCost:
        """Chunked in-memory encoding of all query spectra (Sec. 4.2.1).

        Per spectrum: every chunk needs ``ceil(peaks / max_active)``
        sensing cycles; a cycle converts the chunk's columns.
        """
        max_active = self.config.crossbar.max_active_pairs
        row_groups = math.ceil(shape.avg_peaks / max_active)
        cycles_per_spectrum = shape.num_chunks * row_groups
        chunk_cols = shape.hd_dim / shape.num_chunks
        energy_per_spectrum = cycles_per_spectrum * self._cycle_energy_j(
            min(max_active, int(shape.avg_peaks)), int(chunk_cols)
        )
        total_cycles = cycles_per_spectrum * shape.num_queries
        return StageCost(
            cycles=total_cycles,
            seconds=total_cycles * self.config.cycle_seconds,
            joules=energy_per_spectrum * shape.num_queries,
        )

    def search_cost(self, shape: WorkloadShape) -> StageCost:
        """In-memory Hamming search over the open candidate set (Sec. 4.1).

        Column tiles run on parallel arrays (up to ``num_arrays`` at a
        time); the D dimensions are sensed in row chunks of
        ``max_active_pairs``.
        """
        cfg = self.config
        max_active = cfg.crossbar.max_active_pairs
        row_chunks = math.ceil(shape.hd_dim / max_active)
        col_tiles = math.ceil(shape.avg_open_candidates / cfg.crossbar.cols)
        waves = math.ceil(col_tiles / cfg.num_arrays)
        cycles_per_query = row_chunks * waves
        # Energy counts every conversion regardless of wave scheduling.
        energy_per_query = (
            row_chunks
            * self._cycle_energy_j(max_active, 1)
            * shape.avg_open_candidates
        )
        total_cycles = cycles_per_query * shape.num_queries
        return StageCost(
            cycles=total_cycles,
            seconds=total_cycles * self.config.cycle_seconds,
            joules=energy_per_query * shape.num_queries,
        )

    def total_cost(self, shape: WorkloadShape) -> PlatformCost:
        """Encode + search (preprocessing is offline, per Section 4)."""
        encode = self.encode_cost(shape)
        search = self.search_cost(shape)
        return PlatformCost(
            name=self.name,
            seconds=encode.seconds + search.seconds,
            joules=encode.joules + search.joules,
        )


def sdp_operation_count(shape: WorkloadShape) -> float:
    """Float ops of an ANN-SoLo-style run: ANN probe + SDP re-scoring."""
    per_candidate = 4.0 * shape.avg_peaks + 64.0
    probes = min(shape.ann_probe_candidates, shape.avg_open_candidates)
    return shape.num_queries * probes * per_candidate


def hd_operation_count(shape: WorkloadShape) -> float:
    """Binary MAC count of a HyperOMS-style run: encode + full search."""
    encode = shape.hd_dim * shape.avg_peaks
    search = shape.avg_open_candidates * shape.hd_dim
    return shape.num_queries * (encode + search)


@dataclass(frozen=True)
class DigitalPlatformModel:
    """A CPU/GPU baseline as effective throughput + sustained power.

    ``effective_ops_per_s`` is *sustained end-to-end* throughput on this
    workload class (irregular candidate gathers, index traversal,
    framework overhead) — far below peak FLOPS, calibrated to the
    paper's reported relative runtimes.
    """

    name: str
    effective_ops_per_s: float
    power_w: float
    algorithm: str  # "sdp" or "hd"

    def operation_count(self, shape: WorkloadShape) -> float:
        """Primitive operations needed to run ``shape`` on this platform."""
        if self.algorithm == "sdp":
            return sdp_operation_count(shape)
        if self.algorithm == "hd":
            return hd_operation_count(shape)
        raise ValueError(f"unknown algorithm {self.algorithm!r}")

    def cost(self, shape: WorkloadShape) -> PlatformCost:
        """Cost estimate for running ``shape`` on this platform."""
        seconds = self.operation_count(shape) / self.effective_ops_per_s
        return PlatformCost(
            name=self.name, seconds=seconds, joules=seconds * self.power_w
        )


#: Calibrated baselines (see module docstring for provenance).
ANN_SOLO_CPU = DigitalPlatformModel(
    name="ann-solo-cpu-i7-11700K",
    effective_ops_per_s=0.069e9,
    power_w=125.0,
    algorithm="sdp",
)
ANN_SOLO_GPU = DigitalPlatformModel(
    name="ann-solo-gpu-rtx4090",
    effective_ops_per_s=0.214e9,
    power_w=275.0,
    algorithm="sdp",
)
HYPEROMS_GPU = DigitalPlatformModel(
    name="hyperoms-gpu-rtx4090",
    effective_ops_per_s=1.6e13,
    power_w=450.0,
    algorithm="hd",
)

ALL_BASELINES = (ANN_SOLO_CPU, ANN_SOLO_GPU, HYPEROMS_GPU)


def platform_costs(
    shape: WorkloadShape,
    accel_model: AcceleratorPerfModel = None,
) -> Dict[str, PlatformCost]:
    """Cost of every platform on *shape*, keyed by platform name."""
    accel_model = accel_model or AcceleratorPerfModel()
    costs = {model.name: model.cost(shape) for model in ALL_BASELINES}
    ours = accel_model.total_cost(shape)
    costs[ours.name] = ours
    return costs


def energy_improvements(
    shape: WorkloadShape,
    accel_model: AcceleratorPerfModel = None,
) -> Dict[str, float]:
    """Figure 12: energy improvement of each platform vs. ANN-SoLo CPU."""
    costs = platform_costs(shape, accel_model)
    reference = costs[ANN_SOLO_CPU.name]
    return {
        name: reference.joules / cost.joules for name, cost in costs.items()
    }


def speedups_vs_this_work(
    shape: WorkloadShape,
    accel_model: AcceleratorPerfModel = None,
) -> Dict[str, float]:
    """Section 5.3.3: how much faster this work is than each baseline."""
    accel_model = accel_model or AcceleratorPerfModel()
    costs = platform_costs(shape, accel_model)
    ours = costs[accel_model.name]
    return {
        name: cost.seconds / ours.seconds
        for name, cost in costs.items()
        if name != accel_model.name
    }
