"""Spectrum container shared by every stage of the pipeline.

A :class:`Spectrum` is an immutable-ish record of one MS/MS scan: peak
m/z and intensity arrays plus precursor information and (for library
spectra) the generating peptide.  Arrays are kept sorted by m/z and
validated on construction so downstream code can rely on invariants
instead of re-checking them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from .peptide import Peptide, neutral_mass_from_mz


@dataclass
class Spectrum:
    """One MS/MS spectrum.

    Parameters
    ----------
    identifier:
        Unique string id (scan title for queries, library accession for
        references).
    precursor_mz:
        Measured precursor mass-to-charge ratio.
    precursor_charge:
        Precursor charge state (>= 1).
    mz:
        Peak m/z values, 1-D float array.  Sorted ascending on
        construction.
    intensity:
        Peak intensities, same length as ``mz``, non-negative.
    peptide:
        The annotated peptide for library/ground-truth spectra, or None
        for unidentified queries.
    is_decoy:
        True for decoy library entries used by the FDR filter.
    """

    identifier: str
    precursor_mz: float
    precursor_charge: int
    mz: np.ndarray
    intensity: np.ndarray
    peptide: Optional[Peptide] = None
    is_decoy: bool = False
    retention_time: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self.mz = np.asarray(self.mz, dtype=np.float64)
        self.intensity = np.asarray(self.intensity, dtype=np.float32)
        if self.mz.ndim != 1 or self.intensity.ndim != 1:
            raise ValueError("mz and intensity must be 1-D arrays")
        if len(self.mz) != len(self.intensity):
            raise ValueError(
                f"mz ({len(self.mz)}) and intensity ({len(self.intensity)}) "
                "must have the same length"
            )
        if self.precursor_charge < 1:
            raise ValueError(f"precursor_charge must be >= 1, got {self.precursor_charge}")
        if self.precursor_mz <= 0:
            raise ValueError(f"precursor_mz must be > 0, got {self.precursor_mz}")
        if len(self.intensity) and float(self.intensity.min()) < 0:
            raise ValueError("intensities must be non-negative")
        order = np.argsort(self.mz, kind="stable")
        if not np.array_equal(order, np.arange(len(order))):
            self.mz = self.mz[order]
            self.intensity = self.intensity[order]

    def __len__(self) -> int:
        return len(self.mz)

    @property
    def neutral_mass(self) -> float:
        """Neutral (uncharged) precursor mass in Dalton."""
        return neutral_mass_from_mz(self.precursor_mz, self.precursor_charge)

    @property
    def base_peak_intensity(self) -> float:
        """Intensity of the most intense peak (0.0 for empty spectra)."""
        return float(self.intensity.max()) if len(self.intensity) else 0.0

    @property
    def total_ion_current(self) -> float:
        """Sum of all peak intensities."""
        return float(self.intensity.sum())

    def copy_with_peaks(self, mz: np.ndarray, intensity: np.ndarray) -> "Spectrum":
        """Return a copy of this spectrum with replaced peak arrays."""
        return replace(self, mz=np.asarray(mz), intensity=np.asarray(intensity))

    def peptide_key(self) -> Optional[str]:
        """Canonical peptide string used to compare identifications.

        Identifications from different tools are compared at the level
        of the *unmodified* sequence plus charge (open search localises
        neither the modification nor its identity).
        """
        if self.peptide is None:
            return None
        return f"{self.peptide.sequence}/{self.precursor_charge}"
