"""Synthetic OMS workload generation.

The paper evaluates on public datasets (iPRG2012 queries vs. a 1M-spectrum
human/yeast library; HEK293 vs. a 3M-spectrum human library) that cannot
be downloaded in this offline environment.  This module builds the
closest synthetic equivalent that exercises the same code paths:

* a *reference library* of tryptic-like peptides with theoretical b/y-ion
  spectra (consensus-quality: tiny m/z jitter, no dropout);
* *query spectra* re-measured from library peptides with realistic noise
  (m/z jitter, intensity jitter, peak dropout, background noise peaks),
  where a configurable fraction carries a random PTM — shifting the
  precursor mass and every fragment containing the modified residue —
  and another fraction is *foreign* (peptides absent from the library,
  exercising the FDR machinery).

Crucially, fragment intensities are drawn from a per-sequence seeded RNG
so the modified query and its unmodified reference share the same
fragmentation pattern, exactly the geometry that makes open modification
search work on real data.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_MAX_MZ, DEFAULT_MIN_MZ
from .elements import AMINO_ACIDS, NATURAL_FREQUENCIES
from .modifications import COMMON_MODIFICATIONS, ModificationSampler
from .peptide import Peptide
from .spectrum import Spectrum


def _stable_hash(text: str) -> int:
    """64-bit stable hash of a string (Python's ``hash`` is salted)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class NoiseModel:
    """Measurement-noise knobs for simulated spectra.

    ``mz_jitter_sd`` is the per-peak mass error (Da); ``intensity_jitter_sd``
    the sigma of the multiplicative log-normal intensity error;
    ``dropout_probability`` the chance each fragment peak is missed;
    ``noise_peaks`` the expected count of background peaks;
    ``noise_intensity_fraction`` their intensity scale relative to the
    base peak.
    """

    mz_jitter_sd: float = 0.01
    intensity_jitter_sd: float = 0.25
    dropout_probability: float = 0.15
    noise_peaks: int = 25
    noise_intensity_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.dropout_probability < 1:
            raise ValueError("dropout_probability must be in [0, 1)")
        if self.noise_peaks < 0:
            raise ValueError("noise_peaks must be >= 0")


#: Consensus-library quality: essentially noiseless.
REFERENCE_NOISE = NoiseModel(
    mz_jitter_sd=0.002,
    intensity_jitter_sd=0.05,
    dropout_probability=0.0,
    noise_peaks=3,
    noise_intensity_fraction=0.02,
)

#: Single-scan query quality.
QUERY_NOISE = NoiseModel()


@dataclass
class PeptideSampler:
    """Sample unique tryptic-like peptides.

    Sequences are drawn with human-proteome residue frequencies, end in
    K or R (trypsin cleaves after K/R), and are deduplicated.
    """

    min_length: int = 7
    max_length: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_length < 2:
            raise ValueError("min_length must be >= 2")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")
        self._rng = np.random.default_rng(self.seed)
        frequencies = np.array([NATURAL_FREQUENCIES[aa] for aa in AMINO_ACIDS])
        self._frequencies = frequencies / frequencies.sum()
        self._alphabet = np.array(list(AMINO_ACIDS))
        self._seen: set = set()

    def sample(self) -> str:
        """Return one fresh peptide sequence (never repeats)."""
        while True:
            length = int(
                self._rng.integers(self.min_length, self.max_length + 1)
            )
            body = self._rng.choice(
                self._alphabet, size=length - 1, p=self._frequencies
            )
            terminus = "K" if self._rng.random() < 0.5 else "R"
            sequence = "".join(body) + terminus
            if sequence not in self._seen:
                self._seen.add(sequence)
                return sequence

    def sample_many(self, count: int) -> List[str]:
        """Return ``count`` unique sequences."""
        return [self.sample() for _ in range(count)]


class SpectrumSimulator:
    """Generate theoretical spectra with a reproducible intensity model.

    The fragmentation pattern (relative b/y-ion intensities) of a given
    *sequence* is a deterministic function of ``(seed, sequence)``, so a
    modified peptide and its unmodified base share intensities while
    their fragment masses differ — the signal OMS exploits.
    """

    def __init__(
        self,
        seed: int = 0,
        min_mz: float = DEFAULT_MIN_MZ,
        max_mz: float = DEFAULT_MAX_MZ,
    ) -> None:
        self.seed = seed
        self.min_mz = min_mz
        self.max_mz = max_mz

    def _pattern_rng(self, sequence: str) -> np.random.Generator:
        return np.random.default_rng(
            (self.seed * 0x9E3779B97F4A7C15 + _stable_hash(sequence)) % (2**63)
        )

    def base_pattern(self, sequence: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cleavage-site b and y intensities for *sequence*.

        Returns ``(b_intensity, y_intensity)``, each of length
        ``len(sequence) - 1``, log-normally distributed with y-ions
        boosted (they dominate HCD spectra).
        """
        rng = self._pattern_rng(sequence)
        sites = len(sequence) - 1
        b_intensity = rng.lognormal(mean=0.0, sigma=0.8, size=sites)
        y_intensity = rng.lognormal(mean=0.0, sigma=0.8, size=sites) * 1.6
        return b_intensity, y_intensity

    def spectrum(
        self,
        peptide: Peptide,
        charge: int,
        identifier: str,
        noise: NoiseModel = REFERENCE_NOISE,
        rng: Optional[np.random.Generator] = None,
    ) -> Spectrum:
        """Simulate one measured spectrum of *peptide* at *charge*."""
        if rng is None:
            rng = np.random.default_rng(
                (_stable_hash(identifier) + self.seed) % (2**63)
            )
        b_intensity, y_intensity = self.base_pattern(peptide.sequence)
        ions = peptide.fragment_ions(max_fragment_charge=1)
        mz_list: List[float] = []
        intensity_list: List[float] = []
        for series, index, _charge, mz in ions:
            base = (
                b_intensity[index - 1] if series == "b" else y_intensity[index - 1]
            )
            if noise.dropout_probability and rng.random() < noise.dropout_probability:
                continue
            jittered_mz = mz + rng.normal(0.0, noise.mz_jitter_sd)
            jittered_intensity = base * float(
                np.exp(rng.normal(0.0, noise.intensity_jitter_sd))
            )
            if self.min_mz <= jittered_mz <= self.max_mz:
                mz_list.append(jittered_mz)
                intensity_list.append(jittered_intensity)
        base_peak = max(intensity_list, default=1.0)
        num_noise = int(rng.poisson(noise.noise_peaks)) if noise.noise_peaks else 0
        for _ in range(num_noise):
            mz_list.append(float(rng.uniform(self.min_mz, self.max_mz)))
            intensity_list.append(
                float(rng.exponential(noise.noise_intensity_fraction * base_peak))
            )
        return Spectrum(
            identifier=identifier,
            precursor_mz=peptide.precursor_mz(charge),
            precursor_charge=charge,
            mz=np.asarray(mz_list, dtype=np.float64),
            intensity=np.asarray(intensity_list, dtype=np.float64),
            peptide=peptide,
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic OMS workload (see Table 1)."""

    name: str = "synthetic"
    num_references: int = 1000
    num_queries: int = 200
    seed: int = 0
    modification_probability: float = 0.5
    foreign_fraction: float = 0.10
    min_length: int = 7
    max_length: int = 20
    charges: Tuple[int, ...] = (2, 3)
    charge_weights: Tuple[float, ...] = (0.7, 0.3)
    reference_noise: NoiseModel = REFERENCE_NOISE
    query_noise: NoiseModel = QUERY_NOISE

    def __post_init__(self) -> None:
        if self.num_references < 1 or self.num_queries < 0:
            raise ValueError("workload sizes must be positive")
        if not 0 <= self.modification_probability <= 1:
            raise ValueError("modification_probability must be in [0, 1]")
        if not 0 <= self.foreign_fraction <= 1:
            raise ValueError("foreign_fraction must be in [0, 1]")
        if len(self.charges) != len(self.charge_weights):
            raise ValueError("charges and charge_weights must align")


@dataclass
class SyntheticWorkload:
    """A complete OMS benchmark instance.

    ``references`` holds target library spectra only (decoys are added by
    the pipeline); ``queries`` are the spectra to identify.  Each query's
    ``peptide`` attribute is the *ground truth* (None for pure noise) —
    search code never reads it, but evaluation can.
    ``truth`` maps query identifier to the true unmodified peptide key
    (``SEQ/charge``) or None for foreign queries.
    """

    config: WorkloadConfig
    references: List[Spectrum]
    queries: List[Spectrum]
    truth: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def num_modified_queries(self) -> int:
        """How many queries carry a PTM (ground-truth count)."""
        return sum(
            1
            for query in self.queries
            if query.peptide is not None and query.peptide.is_modified
        )

    def summary(self) -> Dict[str, float]:
        """Table-1-style workload summary."""
        return {
            "name": self.config.name,
            "num_queries": len(self.queries),
            "num_references": len(self.references),
            "modified_fraction": (
                self.num_modified_queries / len(self.queries)
                if self.queries
                else 0.0
            ),
        }


def build_workload(config: WorkloadConfig) -> SyntheticWorkload:
    """Construct a synthetic workload from *config* (fully deterministic)."""
    sampler = PeptideSampler(config.min_length, config.max_length, config.seed)
    simulator = SpectrumSimulator(seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    mod_rng = random.Random(config.seed + 2)
    mod_sampler = ModificationSampler(COMMON_MODIFICATIONS, mod_rng)

    charge_weights = np.asarray(config.charge_weights, dtype=np.float64)
    charge_weights = charge_weights / charge_weights.sum()

    def pick_charge(sequence: str) -> int:
        # Deterministic per-sequence charge so reference and query agree.
        """Deterministic per-sequence precursor charge draw."""
        local = np.random.default_rng(_stable_hash(sequence) % (2**63))
        return int(local.choice(config.charges, p=charge_weights))

    sequences = sampler.sample_many(config.num_references)
    references: List[Spectrum] = []
    for index, sequence in enumerate(sequences):
        peptide = Peptide(sequence)
        charge = pick_charge(sequence)
        references.append(
            simulator.spectrum(
                peptide,
                charge,
                identifier=f"{config.name}_ref_{index}",
                noise=config.reference_noise,
            )
        )

    queries: List[Spectrum] = []
    truth: Dict[str, Optional[str]] = {}
    num_foreign = int(round(config.num_queries * config.foreign_fraction))
    num_library = config.num_queries - num_foreign

    library_indices = rng.integers(0, len(sequences), size=num_library)
    for query_number, ref_index in enumerate(library_indices):
        sequence = sequences[int(ref_index)]
        peptide = Peptide(sequence)
        charge = pick_charge(sequence)
        if rng.random() < config.modification_probability:
            modification = mod_sampler.sample(sequence)
            if modification is not None:
                peptide = peptide.with_modification(modification)
        identifier = f"{config.name}_query_{query_number}"
        queries.append(
            simulator.spectrum(
                peptide, charge, identifier, noise=config.query_noise
            )
        )
        truth[identifier] = f"{sequence}/{charge}"

    for foreign_number in range(num_foreign):
        sequence = sampler.sample()  # guaranteed absent from the library
        peptide = Peptide(sequence)
        charge = pick_charge(sequence)
        identifier = f"{config.name}_foreign_{foreign_number}"
        queries.append(
            simulator.spectrum(
                peptide, charge, identifier, noise=config.query_noise
            )
        )
        truth[identifier] = None

    # Shuffle queries so foreign/modified spectra are interleaved.
    order = rng.permutation(len(queries))
    queries = [queries[i] for i in order]
    return SyntheticWorkload(config, references, queries, truth)


def scaled_config(base: WorkloadConfig, scale: float) -> WorkloadConfig:
    """Scale a workload's sizes by ``scale`` (at least 1 ref / 0 queries)."""
    if scale <= 0:
        raise ValueError("scale must be > 0")
    return replace(
        base,
        num_references=max(1, int(base.num_references * scale)),
        num_queries=max(0, int(base.num_queries * scale)),
    )
