"""Binned spectrum vectors (paper Section 3.1, last paragraph).

"Spectra are transformed into vectors by categorizing mass-to-charge
(m/z) ratios into bins. The resulting vectors contain floating-point
values reflecting peak intensities. In cases where multiple peaks fall
within a bin, their intensities are summed."

The sparse representation (bin indices + values) is what the HD encoder
consumes — each occupied bin becomes one (ID, level) pair in Eq. 1 — and
what the ANN-SoLo-style baseline scores with its shifted dot product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..constants import DEFAULT_BIN_WIDTH, DEFAULT_MAX_MZ, DEFAULT_MIN_MZ
from .spectrum import Spectrum


@dataclass(frozen=True)
class BinningConfig:
    """m/z binning parameters.

    ``bin_width`` of ~1.0005 Da gives nominal-mass bins; smaller widths
    raise specificity at the cost of more bins (and a larger ID-hyper-
    vector codebook).
    """

    min_mz: float = DEFAULT_MIN_MZ
    max_mz: float = DEFAULT_MAX_MZ
    bin_width: float = DEFAULT_BIN_WIDTH

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise ValueError("bin_width must be > 0")
        if self.min_mz >= self.max_mz:
            raise ValueError("min_mz must be < max_mz")

    @property
    def num_bins(self) -> int:
        """Total number of m/z bins."""
        return int(np.ceil((self.max_mz - self.min_mz) / self.bin_width))

    def bin_index(self, mz: np.ndarray) -> np.ndarray:
        """Map m/z values to bin indices (no range clipping)."""
        return np.floor(
            (np.asarray(mz, dtype=np.float64) - self.min_mz) / self.bin_width
        ).astype(np.int64)


@dataclass(frozen=True)
class SparseVector:
    """A binned spectrum: sorted unique bin ``indices`` with ``values``."""

    indices: np.ndarray
    values: np.ndarray
    num_bins: int

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have the same length")

    def __len__(self) -> int:
        return len(self.indices)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 vector of length ``num_bins``."""
        dense = np.zeros(self.num_bins, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    @property
    def norm(self) -> float:
        """Euclidean norm of the vector."""
        return float(np.linalg.norm(self.values))


def vectorize(spectrum: Spectrum, config: BinningConfig) -> SparseVector:
    """Bin a (preprocessed) spectrum into a sparse vector.

    Peaks outside ``[min_mz, max_mz)`` are discarded; intensities of
    peaks sharing a bin are summed, exactly as the paper specifies.
    """
    mask = (spectrum.mz >= config.min_mz) & (spectrum.mz < config.max_mz)
    bins = config.bin_index(spectrum.mz[mask])
    intensities = spectrum.intensity[mask].astype(np.float64)
    if len(bins) == 0:
        return SparseVector(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), config.num_bins
        )
    unique_bins, inverse = np.unique(bins, return_inverse=True)
    summed = np.zeros(len(unique_bins), dtype=np.float64)
    np.add.at(summed, inverse, intensities)
    return SparseVector(unique_bins, summed, config.num_bins)


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity between two sparse vectors (0.0 if either is empty)."""
    if len(a) == 0 or len(b) == 0:
        return 0.0
    shared_a = np.isin(a.indices, b.indices, assume_unique=True)
    if not shared_a.any():
        return 0.0
    shared_b = np.isin(b.indices, a.indices, assume_unique=True)
    dot = float(np.dot(a.values[shared_a], b.values[shared_b]))
    denom = a.norm * b.norm
    return dot / denom if denom else 0.0


def quantize_intensities(
    values: np.ndarray, num_levels: int
) -> Tuple[np.ndarray, float]:
    """Quantise intensities to ``num_levels`` levels (paper Section 3.2).

    Values are scaled relative to the maximum and mapped to integer
    levels ``0 .. num_levels-1``.  Returns the level array and the scale
    (max value) used, so callers can invert the mapping approximately.
    """
    if num_levels < 2:
        raise ValueError(f"num_levels must be >= 2, got {num_levels}")
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.empty(0, dtype=np.int64), 0.0
    scale = float(values.max())
    if scale <= 0:
        return np.zeros(len(values), dtype=np.int64), scale
    levels = np.floor(values / scale * num_levels).astype(np.int64)
    return np.minimum(levels, num_levels - 1), scale
