"""Monoisotopic masses for the 20 proteinogenic amino-acid residues.

The residue mass is the mass of the amino acid minus one water; summing
residue masses and adding one water yields the neutral peptide mass.
Values are the standard monoisotopic masses used across proteomics
software (e.g. pyteomics, spectrum_utils).
"""

from __future__ import annotations

from typing import Dict

#: Monoisotopic residue masses (Da), keyed by one-letter amino-acid code.
RESIDUE_MASSES: Dict[str, float] = {
    "G": 57.02146,
    "A": 71.03711,
    "S": 87.03203,
    "P": 97.05276,
    "V": 99.06841,
    "T": 101.04768,
    "C": 103.00919,
    "L": 113.08406,
    "I": 113.08406,
    "N": 114.04293,
    "D": 115.02694,
    "Q": 128.05858,
    "K": 128.09496,
    "E": 129.04259,
    "M": 131.04049,
    "H": 137.05891,
    "F": 147.06841,
    "R": 156.10111,
    "Y": 163.06333,
    "W": 186.07931,
}

#: The canonical amino-acid alphabet, sorted for deterministic iteration.
AMINO_ACIDS: str = "".join(sorted(RESIDUE_MASSES))

#: Approximate natural abundance of each amino acid in the human proteome
#: (UniProt statistics, normalised).  Used by the synthetic peptide
#: sampler so generated libraries have realistic composition.
NATURAL_FREQUENCIES: Dict[str, float] = {
    "A": 0.0702, "R": 0.0564, "N": 0.0359, "D": 0.0473, "C": 0.0230,
    "Q": 0.0477, "E": 0.0710, "G": 0.0657, "H": 0.0263, "I": 0.0433,
    "L": 0.0996, "K": 0.0572, "M": 0.0213, "F": 0.0365, "P": 0.0631,
    "S": 0.0833, "T": 0.0536, "W": 0.0122, "Y": 0.0267, "V": 0.0597,
}


def residue_mass(residue: str) -> float:
    """Return the monoisotopic residue mass for a one-letter code.

    Raises ``KeyError`` with a helpful message for unknown residues.
    """
    try:
        return RESIDUE_MASSES[residue]
    except KeyError:
        raise KeyError(
            f"unknown amino-acid residue {residue!r}; "
            f"expected one of {AMINO_ACIDS}"
        ) from None


def is_valid_sequence(sequence: str) -> bool:
    """Return True if *sequence* contains only known one-letter codes."""
    return bool(sequence) and all(aa in RESIDUE_MASSES for aa in sequence)
