"""Post-translational modifications (PTMs) used by the synthetic workload.

Open modification search exists precisely because reference libraries
hold *unmodified* peptides while measured spectra frequently carry PTMs
that shift the precursor mass (and the masses of every fragment that
contains the modified residue).  This module provides a Unimod-like
subset of common modifications with their monoisotopic mass deltas and
residue specificities, plus helpers for sampling them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ModificationType:
    """A kind of modification: a name, a mass delta, and target residues.

    ``targets`` is a string of one-letter residue codes the modification
    can attach to; the empty string means "any residue" (e.g. generic
    N-terminal modifications are modelled as position-0 any-residue).
    """

    name: str
    mass_delta: float
    targets: str = ""

    def applies_to(self, residue: str) -> bool:
        """Return True if this modification can sit on *residue*."""
        return not self.targets or residue in self.targets


#: Common modifications with Unimod monoisotopic deltas.  The selection
#: mirrors the frequent mass shifts reported by mass-tolerant searches
#: (Chick et al. 2015), which the paper's HEK293 evaluation relies on.
COMMON_MODIFICATIONS: Tuple[ModificationType, ...] = (
    ModificationType("Oxidation", 15.994915, "MW"),
    ModificationType("Carbamidomethyl", 57.021464, "C"),
    ModificationType("Phospho", 79.966331, "STY"),
    ModificationType("Acetyl", 42.010565, "K"),
    ModificationType("Methyl", 14.015650, "KR"),
    ModificationType("Dimethyl", 28.031300, "KR"),
    ModificationType("Trimethyl", 42.046950, "K"),
    ModificationType("Deamidation", 0.984016, "NQ"),
    ModificationType("GlyGly", 114.042927, "K"),
    ModificationType("Formyl", 27.994915, "K"),
    ModificationType("Succinyl", 100.016044, "K"),
    ModificationType("Malonyl", 86.000394, "K"),
    ModificationType("Propionamide", 71.037114, "C"),
    ModificationType("Carbamyl", 43.005814, "K"),
    ModificationType("Nitro", 44.985078, "YW"),
)

#: Fast lookup of a modification type by name.
MODIFICATIONS_BY_NAME: Dict[str, ModificationType] = {
    mod.name: mod for mod in COMMON_MODIFICATIONS
}


@dataclass(frozen=True)
class Modification:
    """A concrete modification instance placed on a peptide.

    ``position`` is the 0-based residue index within the peptide
    sequence.  ``mass_delta`` is copied from the modification type so a
    placed modification is self-contained (no registry lookups needed
    when computing fragment masses).
    """

    name: str
    position: int
    mass_delta: float

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"modification position must be >= 0, got {self.position}")


@dataclass
class ModificationSampler:
    """Randomly place modifications on peptide sequences.

    Parameters
    ----------
    modifications:
        The pool of modification types to draw from.  Defaults to
        :data:`COMMON_MODIFICATIONS`.
    rng:
        A seeded ``random.Random`` for reproducibility.
    """

    modifications: Sequence[ModificationType] = COMMON_MODIFICATIONS
    rng: random.Random = field(default_factory=random.Random)

    def eligible_sites(
        self, sequence: str, modification: ModificationType
    ) -> List[int]:
        """Return all 0-based positions where *modification* may attach."""
        return [
            index
            for index, residue in enumerate(sequence)
            if modification.applies_to(residue)
        ]

    def sample(self, sequence: str) -> Optional[Modification]:
        """Sample one valid modification for *sequence*, or None.

        A modification type is drawn uniformly; if the sequence has no
        eligible site for it, another type is tried.  Returns None only
        when no modification in the pool fits the sequence at all.
        """
        candidates = list(self.modifications)
        self.rng.shuffle(candidates)
        for modification in candidates:
            sites = self.eligible_sites(sequence, modification)
            if sites:
                position = self.rng.choice(sites)
                return Modification(modification.name, position, modification.mass_delta)
        return None
