"""Peptide model: neutral mass, precursor m/z, and b/y fragment ions.

Only what OMS needs is implemented — singly and doubly charged b/y ions
with optional modifications.  A fragment that contains the modified
residue carries the modification's mass delta; this is the physical
mechanism that lets an open search match a modified query against its
unmodified reference (roughly half the fragments still align).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..constants import PROTON_MASS, WATER_MASS
from .elements import residue_mass
from .modifications import Modification


@dataclass(frozen=True)
class Peptide:
    """An (optionally modified) peptide.

    Parameters
    ----------
    sequence:
        One-letter amino-acid string, N- to C-terminus.
    modifications:
        Concrete modifications placed on this peptide.  Positions are
        0-based indices into ``sequence``.
    """

    sequence: str
    modifications: Tuple[Modification, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.sequence:
            raise ValueError("peptide sequence must be non-empty")
        for mod in self.modifications:
            if mod.position >= len(self.sequence):
                raise ValueError(
                    f"modification {mod.name!r} at position {mod.position} "
                    f"outside peptide of length {len(self.sequence)}"
                )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def is_modified(self) -> bool:
        """True if the peptide carries at least one modification."""
        return bool(self.modifications)

    @property
    def modification_mass(self) -> float:
        """Total mass delta contributed by all modifications (Da)."""
        return sum(mod.mass_delta for mod in self.modifications)

    def residue_masses(self) -> np.ndarray:
        """Per-residue masses including any modification deltas (Da)."""
        masses = np.array(
            [residue_mass(aa) for aa in self.sequence], dtype=np.float64
        )
        for mod in self.modifications:
            masses[mod.position] += mod.mass_delta
        return masses

    @property
    def neutral_mass(self) -> float:
        """Monoisotopic neutral mass (Da): residues + one water."""
        return float(self.residue_masses().sum()) + WATER_MASS

    def precursor_mz(self, charge: int) -> float:
        """m/z of the [M + charge*H]^charge precursor ion."""
        if charge < 1:
            raise ValueError(f"charge must be >= 1, got {charge}")
        return (self.neutral_mass + charge * PROTON_MASS) / charge

    def fragment_mzs(self, max_fragment_charge: int = 1) -> np.ndarray:
        """m/z values of all b/y fragment ions, sorted ascending.

        Generates b_i and y_i for i = 1 .. len-1 at fragment charges
        1 .. ``max_fragment_charge``.  Modifications shift exactly the
        fragments that contain the modified residue:

        * ``b_i`` covers residues ``0 .. i-1`` — shifted when the
          modification position is ``< i``;
        * ``y_i`` covers residues ``len-i .. len-1`` — shifted when the
          position is ``>= len - i``.

        Both follow automatically from the cumulative-sum construction
        over per-residue masses that already include the deltas.
        """
        if max_fragment_charge < 1:
            raise ValueError(
                f"max_fragment_charge must be >= 1, got {max_fragment_charge}"
            )
        masses = self.residue_masses()
        # Neutral fragment masses.  b-ion neutral mass = prefix sum;
        # y-ion neutral mass = suffix sum + water.
        prefix = np.cumsum(masses)[:-1]
        suffix = np.cumsum(masses[::-1])[:-1] + WATER_MASS
        mzs: List[np.ndarray] = []
        for charge in range(1, max_fragment_charge + 1):
            mzs.append((prefix + charge * PROTON_MASS) / charge)
            mzs.append((suffix + charge * PROTON_MASS) / charge)
        return np.sort(np.concatenate(mzs))

    def fragment_ions(
        self, max_fragment_charge: int = 1
    ) -> List[Tuple[str, int, int, float]]:
        """Annotated fragments as ``(series, index, charge, mz)`` tuples.

        ``series`` is ``"b"`` or ``"y"``, ``index`` is the 1-based ion
        index.  Useful for writing annotated MSP libraries and for
        tests that pin individual ion masses.
        """
        masses = self.residue_masses()
        prefix = np.cumsum(masses)[:-1]
        suffix = np.cumsum(masses[::-1])[:-1] + WATER_MASS
        ions: List[Tuple[str, int, int, float]] = []
        for charge in range(1, max_fragment_charge + 1):
            for index, neutral in enumerate(prefix, start=1):
                ions.append(("b", index, charge, (neutral + charge * PROTON_MASS) / charge))
            for index, neutral in enumerate(suffix, start=1):
                ions.append(("y", index, charge, (neutral + charge * PROTON_MASS) / charge))
        ions.sort(key=lambda ion: ion[3])
        return ions

    def with_modification(self, modification: Modification) -> "Peptide":
        """Return a copy of this peptide with one more modification."""
        return Peptide(self.sequence, self.modifications + (modification,))

    def unmodified(self) -> "Peptide":
        """Return the unmodified form of this peptide."""
        if not self.modifications:
            return self
        return Peptide(self.sequence)

    def proforma(self) -> str:
        """Render a ProForma-like string, e.g. ``PEPT[Phospho]IDE``."""
        if not self.modifications:
            return self.sequence
        by_position = {mod.position: mod for mod in self.modifications}
        parts: List[str] = []
        for index, residue in enumerate(self.sequence):
            parts.append(residue)
            if index in by_position:
                parts.append(f"[{by_position[index].name}]")
        return "".join(parts)


def neutral_mass_from_mz(precursor_mz: float, charge: int) -> float:
    """Invert :meth:`Peptide.precursor_mz`: neutral mass from m/z."""
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    return precursor_mz * charge - charge * PROTON_MASS
