"""Spectrum preprocessing (paper Section 3.1).

The paper's preprocessing pipeline: keep peaks above an intensity
threshold (1% of the base peak), retain at most ~150 peaks, restrict the
m/z range, and scale intensities before vectorisation.  The functions
here are pure — each returns a new :class:`Spectrum` — and
:func:`preprocess` composes them according to a config object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import (
    DEFAULT_MAX_PEAKS,
    DEFAULT_MAX_MZ,
    DEFAULT_MIN_INTENSITY_FRACTION,
    DEFAULT_MIN_MZ,
)
from .spectrum import Spectrum


@dataclass(frozen=True)
class PreprocessingConfig:
    """Knobs for :func:`preprocess`.

    Defaults mirror the paper's description and the conventions of
    ANN-SoLo / HyperOMS: 1% base-peak threshold, <=150 peaks, m/z range
    [100, 1500], square-root intensity scaling, minimum 5 peaks for a
    spectrum to be searchable.
    """

    min_mz: float = DEFAULT_MIN_MZ
    max_mz: float = DEFAULT_MAX_MZ
    min_intensity_fraction: float = DEFAULT_MIN_INTENSITY_FRACTION
    max_peaks: int = DEFAULT_MAX_PEAKS
    scaling: str = "sqrt"  # one of: "sqrt", "rank", "none"
    min_peaks: int = 5
    remove_precursor_tolerance: Optional[float] = 1.5

    def __post_init__(self) -> None:
        if self.min_mz >= self.max_mz:
            raise ValueError("min_mz must be < max_mz")
        if not 0 <= self.min_intensity_fraction < 1:
            raise ValueError("min_intensity_fraction must be in [0, 1)")
        if self.max_peaks < 1:
            raise ValueError("max_peaks must be >= 1")
        if self.scaling not in ("sqrt", "rank", "none"):
            raise ValueError(f"unknown scaling {self.scaling!r}")


def restrict_mz_range(
    spectrum: Spectrum, min_mz: float, max_mz: float
) -> Spectrum:
    """Drop peaks outside ``[min_mz, max_mz]``."""
    mask = (spectrum.mz >= min_mz) & (spectrum.mz <= max_mz)
    return spectrum.copy_with_peaks(spectrum.mz[mask], spectrum.intensity[mask])


def remove_precursor_peaks(spectrum: Spectrum, tolerance: float) -> Spectrum:
    """Drop peaks within ``tolerance`` Da of the precursor m/z.

    Residual precursor signal is uninformative for fragment matching and
    would otherwise dominate the binned vector.
    """
    mask = np.abs(spectrum.mz - spectrum.precursor_mz) > tolerance
    return spectrum.copy_with_peaks(spectrum.mz[mask], spectrum.intensity[mask])


def filter_intensity(
    spectrum: Spectrum,
    min_intensity_fraction: float = DEFAULT_MIN_INTENSITY_FRACTION,
    max_peaks: int = DEFAULT_MAX_PEAKS,
) -> Spectrum:
    """Keep peaks above the relative threshold, at most ``max_peaks``.

    When more than ``max_peaks`` survive the threshold, the most intense
    ones are retained (ties broken towards lower m/z for determinism).
    """
    if not len(spectrum):
        return spectrum
    threshold = spectrum.base_peak_intensity * min_intensity_fraction
    mask = spectrum.intensity >= threshold
    mz, intensity = spectrum.mz[mask], spectrum.intensity[mask]
    if len(mz) > max_peaks:
        # stable sort on negative intensity keeps low-m/z winners on ties
        keep = np.argsort(-intensity, kind="stable")[:max_peaks]
        keep.sort()
        mz, intensity = mz[keep], intensity[keep]
    return spectrum.copy_with_peaks(mz, intensity)


def scale_intensity(spectrum: Spectrum, scaling: str = "sqrt") -> Spectrum:
    """Compress the intensity dynamic range.

    ``sqrt`` is the proteomics default (dampens dominant peaks), ``rank``
    replaces intensities with their ascending rank (1..n), ``none`` is a
    pass-through.
    """
    if scaling == "none" or not len(spectrum):
        return spectrum
    if scaling == "sqrt":
        intensity = np.sqrt(spectrum.intensity.astype(np.float64))
    elif scaling == "rank":
        ranks = np.empty(len(spectrum), dtype=np.float64)
        ranks[np.argsort(spectrum.intensity, kind="stable")] = np.arange(
            1, len(spectrum) + 1
        )
        intensity = ranks
    else:
        raise ValueError(f"unknown scaling {scaling!r}")
    return spectrum.copy_with_peaks(spectrum.mz, intensity)


def normalize_intensity(spectrum: Spectrum) -> Spectrum:
    """Scale intensities to unit Euclidean norm (no-op on empty spectra)."""
    norm = float(np.linalg.norm(spectrum.intensity))
    if norm == 0.0:
        return spectrum
    return spectrum.copy_with_peaks(spectrum.mz, spectrum.intensity / norm)


def is_high_quality(spectrum: Spectrum, min_peaks: int = 5, min_mz_span: float = 100.0) -> bool:
    """Quality gate: enough peaks covering a wide-enough m/z span."""
    if len(spectrum) < min_peaks:
        return False
    return float(spectrum.mz[-1] - spectrum.mz[0]) >= min_mz_span


def preprocess(
    spectrum: Spectrum, config: Optional[PreprocessingConfig] = None
) -> Optional[Spectrum]:
    """Run the full preprocessing chain; None if the spectrum fails QC.

    Order matters: range restriction and precursor removal first (so the
    base-peak threshold is computed on informative peaks only), then the
    intensity filter, then scaling and normalisation.
    """
    config = config or PreprocessingConfig()
    processed = restrict_mz_range(spectrum, config.min_mz, config.max_mz)
    if config.remove_precursor_tolerance is not None:
        processed = remove_precursor_peaks(
            processed, config.remove_precursor_tolerance
        )
    processed = filter_intensity(
        processed, config.min_intensity_fraction, config.max_peaks
    )
    if len(processed) < config.min_peaks:
        return None
    processed = scale_intensity(processed, config.scaling)
    return normalize_intensity(processed)
