"""Mass-spectrometry substrate: peptides, spectra, IO, and synthesis.

This subpackage supplies everything the OMS application layer needs from
the proteomics world: peptide chemistry (masses, fragments, PTMs), the
:class:`~repro.ms.spectrum.Spectrum` container, preprocessing and
vectorisation (paper Section 3.1), MGF/MSP codecs, decoy generation for
FDR, and the synthetic workload generator that substitutes for the
paper's public datasets.
"""

from .elements import AMINO_ACIDS, RESIDUE_MASSES, residue_mass
from .modifications import (
    COMMON_MODIFICATIONS,
    Modification,
    ModificationSampler,
    ModificationType,
)
from .peptide import Peptide, neutral_mass_from_mz
from .spectrum import Spectrum
from .preprocessing import (
    PreprocessingConfig,
    filter_intensity,
    normalize_intensity,
    preprocess,
    remove_precursor_peaks,
    restrict_mz_range,
    scale_intensity,
)
from .vectorize import (
    BinningConfig,
    SparseVector,
    cosine_similarity,
    quantize_intensities,
    vectorize,
)
from .mgf import read_mgf, write_mgf
from .msp import read_msp, write_msp
from .io import SPECTRUM_READERS, iter_spectra
from .decoy import append_decoys, make_decoy_spectrum, reverse_sequence, shuffle_sequence
from .synthetic import (
    NoiseModel,
    PeptideSampler,
    QUERY_NOISE,
    REFERENCE_NOISE,
    SpectrumSimulator,
    SyntheticWorkload,
    WorkloadConfig,
    build_workload,
    scaled_config,
)

__all__ = [
    "AMINO_ACIDS",
    "RESIDUE_MASSES",
    "residue_mass",
    "COMMON_MODIFICATIONS",
    "Modification",
    "ModificationSampler",
    "ModificationType",
    "Peptide",
    "neutral_mass_from_mz",
    "Spectrum",
    "PreprocessingConfig",
    "filter_intensity",
    "normalize_intensity",
    "preprocess",
    "remove_precursor_peaks",
    "restrict_mz_range",
    "scale_intensity",
    "BinningConfig",
    "SparseVector",
    "cosine_similarity",
    "quantize_intensities",
    "vectorize",
    "read_mgf",
    "write_mgf",
    "read_msp",
    "write_msp",
    "SPECTRUM_READERS",
    "iter_spectra",
    "append_decoys",
    "make_decoy_spectrum",
    "reverse_sequence",
    "shuffle_sequence",
    "NoiseModel",
    "PeptideSampler",
    "QUERY_NOISE",
    "REFERENCE_NOISE",
    "SpectrumSimulator",
    "SyntheticWorkload",
    "WorkloadConfig",
    "build_workload",
    "scaled_config",
]
