"""Decoy library generation for target-decoy FDR estimation.

The FDR filter (paper Section 3.4) "introduces non-existing decoy
spectra into the spectral library".  The standard construction — and the
one ANN-SoLo/HyperOMS use — is the *shuffled* decoy: permute the peptide
sequence while pinning the C-terminal residue (tryptic peptides end in
K/R, and y1 ions would otherwise betray the decoy), then regenerate a
theoretical spectrum.  Precursor mass is preserved exactly because the
residue multiset is unchanged.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from .peptide import Peptide
from .spectrum import Spectrum


def shuffle_sequence(
    sequence: str, rng: random.Random, max_attempts: int = 20
) -> str:
    """Shuffle all residues but the last; avoid returning the original.

    For degenerate sequences (e.g. ``"AAK"``) where every permutation
    equals the original, the original is returned — callers may drop
    such decoys.
    """
    if len(sequence) <= 2:
        return sequence
    prefix = list(sequence[:-1])
    for _ in range(max_attempts):
        rng.shuffle(prefix)
        candidate = "".join(prefix) + sequence[-1]
        if candidate != sequence:
            return candidate
    return "".join(prefix) + sequence[-1]


def reverse_sequence(sequence: str) -> str:
    """Pseudo-reverse decoy: reverse all residues but the C-terminal one."""
    if len(sequence) <= 2:
        return sequence
    return sequence[-2::-1] + sequence[-1]


def make_decoy_spectrum(
    reference: Spectrum,
    spectrum_factory: Callable[[Peptide, int, str], Spectrum],
    rng: random.Random,
    method: str = "shuffle",
) -> Optional[Spectrum]:
    """Build a decoy spectrum from a target library entry.

    Parameters
    ----------
    reference:
        The target spectrum (must carry a peptide annotation).
    spectrum_factory:
        ``(peptide, charge, identifier) -> Spectrum``; typically the
        synthetic generator's theoretical-spectrum builder, so decoys
        share the targets' peak statistics.
    method:
        ``"shuffle"`` (default) or ``"reverse"``.

    Returns None when the reference has no peptide or the decoy sequence
    collapses onto the target sequence.
    """
    if reference.peptide is None:
        return None
    sequence = reference.peptide.sequence
    if method == "shuffle":
        decoy_sequence = shuffle_sequence(sequence, rng)
    elif method == "reverse":
        decoy_sequence = reverse_sequence(sequence)
    else:
        raise ValueError(f"unknown decoy method {method!r}")
    if decoy_sequence == sequence:
        return None
    decoy = spectrum_factory(
        Peptide(decoy_sequence),
        reference.precursor_charge,
        f"DECOY_{reference.identifier}",
    )
    decoy.is_decoy = True
    return decoy


def append_decoys(
    references: Sequence[Spectrum],
    spectrum_factory: Callable[[Peptide, int, str], Spectrum],
    seed: int = 0,
    method: str = "shuffle",
) -> List[Spectrum]:
    """Return ``references`` plus one decoy per target (where possible).

    The result keeps all targets first, then decoys, preserving input
    order within each group — convenient for tests and deterministic
    given ``seed``.
    """
    rng = random.Random(seed)
    decoys: List[Spectrum] = []
    for reference in references:
        if reference.is_decoy:
            continue
        decoy = make_decoy_spectrum(reference, spectrum_factory, rng, method)
        if decoy is not None:
            decoys.append(decoy)
    return list(references) + decoys
