"""NIST MSP spectral-library reader and writer.

Reference libraries (the paper's human HCD / yeast libraries) ship as
MSP text.  This codec covers the subset the pipeline needs: Name,
MW / PrecursorMZ, Charge (possibly embedded in Name as ``SEQ/2``),
Comment flags (decoy detection), and the peak table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, TextIO, Union

import numpy as np

from .elements import is_valid_sequence
from .peptide import Peptide
from .spectrum import Spectrum

PathLike = Union[str, Path]


class MspFormatError(ValueError):
    """Raised when an MSP file violates the expected structure."""


def _parse_decoy_flag(comment: str, name: str) -> bool:
    """Decide whether an entry is a decoy.

    Recognises explicit ``Decoy=true/false`` key-value pairs in the
    Comment field (case-insensitive); otherwise falls back to the
    common ``DECOY_``-prefixed naming convention.  A bare ``Decoy=false``
    must NOT be treated as a decoy.
    """
    for token in comment.replace(",", " ").split():
        key, _, value = token.partition("=")
        if key.strip().upper() == "DECOY":
            return value.strip().lower() in ("true", "1", "yes")
    upper_name = name.upper()
    return upper_name.startswith("DECOY_") or upper_name.startswith("DECOY-")


def _finalise(
    headers: Dict[str, str], peaks: List[List[float]], index: int
) -> Spectrum:
    name = headers.get("NAME", f"library_{index}")
    sequence, charge = name, 2
    if "/" in name:
        sequence, _, charge_text = name.rpartition("/")
        if charge_text.isdigit():
            charge = int(charge_text)
    if "CHARGE" in headers:
        charge = int(headers["CHARGE"])
    if "PRECURSORMZ" in headers:
        precursor_mz = float(headers["PRECURSORMZ"])
    elif "MW" in headers:
        # MW is the neutral mass; convert to m/z at the parsed charge.
        from ..constants import PROTON_MASS

        precursor_mz = (float(headers["MW"]) + charge * PROTON_MASS) / charge
    else:
        raise MspFormatError(f"entry {name!r} has neither PrecursorMZ nor MW")
    comment = headers.get("COMMENT", "")
    is_decoy = _parse_decoy_flag(comment, name)
    peptide = Peptide(sequence) if is_valid_sequence(sequence) else None
    peak_array = (
        np.asarray(peaks, dtype=np.float64)
        if peaks
        else np.empty((0, 2), dtype=np.float64)
    )
    return Spectrum(
        identifier=name,
        precursor_mz=precursor_mz,
        precursor_charge=charge,
        mz=peak_array[:, 0] if len(peak_array) else np.empty(0),
        intensity=peak_array[:, 1] if len(peak_array) else np.empty(0),
        peptide=peptide,
        is_decoy=is_decoy,
    )


def read_msp(source: Union[PathLike, TextIO]) -> Iterator[Spectrum]:
    """Yield :class:`Spectrum` objects from an MSP library."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_msp(handle)
        return

    headers: Dict[str, str] = {}
    peaks: List[List[float]] = []
    expected_peaks = -1
    index = 0
    in_entry = False

    def flush() -> Iterator[Spectrum]:
        """Yield the entry parsed so far, validating its peak count."""
        nonlocal headers, peaks, expected_peaks, index, in_entry
        if in_entry:
            if expected_peaks >= 0 and len(peaks) != expected_peaks:
                raise MspFormatError(
                    f"entry #{index}: expected {expected_peaks} peaks, "
                    f"got {len(peaks)}"
                )
            yield _finalise(headers, peaks, index)
            index += 1
        headers, peaks, expected_peaks, in_entry = {}, [], -1, False

    for raw_line in source:
        line = raw_line.strip()
        if not line:
            yield from flush()
            continue
        if line[0].isdigit() or line[0] == "-":
            fields = line.replace("\t", " ").split()
            if len(fields) < 2:
                raise MspFormatError(f"malformed peak line: {line!r}")
            peaks.append([float(fields[0]), float(fields[1])])
        else:
            key, _, value = line.partition(":")
            key_upper = key.strip().upper().replace(" ", "")
            if key_upper == "NAME":
                yield from flush()
                in_entry = True
            if key_upper == "NUMPEAKS":
                expected_peaks = int(value.strip())
            headers[key_upper] = value.strip()
            in_entry = True
    yield from flush()


def iter_spectra(source: Union[PathLike, TextIO]) -> Iterator[Spectrum]:
    """Lazily iterate spectra from an MSP library, one at a time.

    The streaming counterpart of ``list(read_msp(...))``: nothing
    beyond the entry currently being parsed is resident, so
    arbitrarily large libraries can feed streaming consumers (e.g. the
    segmented store builder) in bounded memory.  Format-agnostic
    callers should prefer :func:`repro.ms.iter_spectra`, which
    dispatches on the file extension.
    """
    yield from read_msp(source)


def write_msp(
    spectra: Iterable[Spectrum], destination: Union[PathLike, TextIO]
) -> int:
    """Write spectra as an MSP library; returns the entry count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_msp(spectra, handle)

    count = 0
    for spectrum in spectra:
        if spectrum.peptide is not None:
            name = f"{spectrum.peptide.sequence}/{spectrum.precursor_charge}"
        else:
            name = spectrum.identifier
        destination.write(f"Name: {name}\n")
        destination.write(f"PrecursorMZ: {spectrum.precursor_mz:.6f}\n")
        destination.write(f"Charge: {spectrum.precursor_charge}\n")
        comment = "Decoy=true" if spectrum.is_decoy else "Decoy=false"
        destination.write(f"Comment: {comment} Id={spectrum.identifier}\n")
        destination.write(f"Num peaks: {len(spectrum)}\n")
        for mz, intensity in zip(spectrum.mz, spectrum.intensity):
            destination.write(f"{mz:.5f}\t{intensity:.6g}\n")
        destination.write("\n")
        count += 1
    return count
