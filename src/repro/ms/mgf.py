"""Mascot Generic Format (MGF) reader and writer.

pyteomics is not available offline, so the package carries its own small
MGF codec.  Only the fields the pipeline uses are handled (TITLE,
PEPMASS, CHARGE, RTINSECONDS, SEQ); unknown ``KEY=VALUE`` headers are
preserved on read and ignored on write.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, TextIO, Union

import numpy as np

from .peptide import Peptide
from .spectrum import Spectrum

PathLike = Union[str, Path]


class MgfFormatError(ValueError):
    """Raised when an MGF file violates the expected structure."""


def _parse_charge(raw: str) -> int:
    """Parse MGF charge notation: ``2+``, ``+2``, ``2`` or ``3-``."""
    text = raw.strip().split()[0]
    sign = -1 if text.endswith("-") or text.startswith("-") else 1
    digits = text.strip("+-")
    if not digits.isdigit():
        raise MgfFormatError(f"cannot parse CHARGE value {raw!r}")
    return sign * int(digits)


def _spectrum_from_block(
    headers: Dict[str, str], peaks: List[List[float]], index: int
) -> Spectrum:
    if "PEPMASS" not in headers:
        raise MgfFormatError(f"spectrum #{index} is missing PEPMASS")
    pepmass = float(headers["PEPMASS"].split()[0])
    charge = _parse_charge(headers.get("CHARGE", "2+"))
    title = headers.get("TITLE", f"index={index}")
    rt = float(headers["RTINSECONDS"]) if "RTINSECONDS" in headers else None
    peptide = None
    if headers.get("SEQ"):
        peptide = Peptide(headers["SEQ"].strip())
    peak_array = (
        np.asarray(peaks, dtype=np.float64)
        if peaks
        else np.empty((0, 2), dtype=np.float64)
    )
    return Spectrum(
        identifier=title,
        precursor_mz=pepmass,
        precursor_charge=abs(charge),
        mz=peak_array[:, 0] if len(peak_array) else np.empty(0),
        intensity=peak_array[:, 1] if len(peak_array) else np.empty(0),
        peptide=peptide,
        retention_time=rt,
    )


def read_mgf(source: Union[PathLike, TextIO]) -> Iterator[Spectrum]:
    """Yield :class:`Spectrum` objects from an MGF file or file object."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_mgf(handle)
        return

    in_block = False
    headers: Dict[str, str] = {}
    peaks: List[List[float]] = []
    index = 0
    for line_number, raw_line in enumerate(source, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "BEGIN IONS":
            if in_block:
                raise MgfFormatError(f"nested BEGIN IONS at line {line_number}")
            in_block, headers, peaks = True, {}, []
        elif line == "END IONS":
            if not in_block:
                raise MgfFormatError(f"END IONS without BEGIN at line {line_number}")
            yield _spectrum_from_block(headers, peaks, index)
            index += 1
            in_block = False
        elif in_block:
            if "=" in line and not line[0].isdigit():
                key, _, value = line.partition("=")
                headers[key.strip().upper()] = value.strip()
            else:
                fields = line.split()
                if len(fields) < 2:
                    raise MgfFormatError(
                        f"malformed peak line {line_number}: {line!r}"
                    )
                peaks.append([float(fields[0]), float(fields[1])])
    if in_block:
        raise MgfFormatError("file ended inside a BEGIN IONS block")


def iter_spectra(source: Union[PathLike, TextIO]) -> Iterator[Spectrum]:
    """Lazily iterate spectra from an MGF source, one at a time.

    The streaming counterpart of ``list(read_mgf(...))``: nothing
    beyond the spectrum currently being parsed is resident, so
    arbitrarily large files can feed streaming consumers (e.g. the
    segmented store builder) in bounded memory.  Format-agnostic
    callers should prefer :func:`repro.ms.iter_spectra`, which
    dispatches on the file extension.
    """
    yield from read_mgf(source)


def write_mgf(
    spectra: Iterable[Spectrum], destination: Union[PathLike, TextIO]
) -> int:
    """Write spectra to MGF; returns the number of spectra written."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_mgf(spectra, handle)

    count = 0
    for spectrum in spectra:
        destination.write("BEGIN IONS\n")
        destination.write(f"TITLE={spectrum.identifier}\n")
        destination.write(f"PEPMASS={spectrum.precursor_mz:.6f}\n")
        destination.write(f"CHARGE={spectrum.precursor_charge}+\n")
        if spectrum.retention_time is not None:
            destination.write(f"RTINSECONDS={spectrum.retention_time:.3f}\n")
        if spectrum.peptide is not None:
            destination.write(f"SEQ={spectrum.peptide.sequence}\n")
        for mz, intensity in zip(spectrum.mz, spectrum.intensity):
            destination.write(f"{mz:.5f} {intensity:.6g}\n")
        destination.write("END IONS\n")
        count += 1
    return count
