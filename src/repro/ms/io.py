"""Format-agnostic, extension-dispatching spectrum IO.

One entry point — :func:`iter_spectra` — lazily streams spectra from
any supported peak-list format, so ingest code (the CLI, the segmented
store builder) never hard-codes a parser.  Both underlying readers are
generators, so memory stays bounded by one spectrum regardless of file
size.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

from .mgf import read_mgf
from .msp import read_msp
from .spectrum import Spectrum

#: Extension (lower-case, with dot) → lazy reader.
SPECTRUM_READERS: Dict[str, Callable] = {
    ".mgf": read_mgf,
    ".msp": read_msp,
}


def iter_spectra(
    source: Union[str, Path],
    format: Optional[str] = None,
) -> Iterator[Spectrum]:
    """Lazily yield spectra from a peak-list file of any known format.

    Args:
        source: Path to an ``.mgf`` or ``.msp`` file.
        format: Explicit format override (``"mgf"`` / ``"msp"``) for
            paths whose extension lies.

    Yields:
        One :class:`Spectrum` at a time; nothing else is materialized.

    Raises:
        ValueError: When the extension (or override) names no reader.
    """
    path = Path(source)
    suffix = f".{format.lower().lstrip('.')}" if format else path.suffix.lower()
    reader = SPECTRUM_READERS.get(suffix)
    if reader is None:
        raise ValueError(
            f"no spectrum reader for {suffix!r} (supported: "
            f"{sorted(SPECTRUM_READERS)})"
        )
    yield from reader(path)
