"""Local worker fleets: spawn, watch, and reap ``repro serve`` workers.

:class:`LocalWorkerFleet` turns a list of partition store directories
into a set of ``repro serve`` subprocesses bound to ephemeral ports,
parsing each worker's load-bearing ``listening on http://host:port``
log line to learn where it landed.  It exists so ``repro coordinate
--spawn-workers`` is a one-command scale-out demo — production
deployments pass pre-started worker URLs via ``--worker`` instead and
never touch this module.

Workers inherit the coordinator's interpreter and ``sys.path`` (via
``PYTHONPATH``), so the fleet works from a source checkout without an
installed package.  Teardown is polite-then-firm: SIGTERM, bounded
wait, SIGKILL.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, Sequence, Union

#: Pattern matching the serve runner's bound-address log line.
LISTENING_PATTERN = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Lines of worker output retained per worker for failure diagnostics.
LOG_TAIL_LINES = 200


class FleetError(RuntimeError):
    """A worker failed to start or died before binding its port."""


class LocalWorker:
    """One spawned ``repro serve`` subprocess and its output tail."""

    def __init__(self, index_path: Path, process: subprocess.Popen) -> None:
        self.index_path = index_path
        self.process = process
        self.url: Optional[str] = None
        self.logs: Deque[str] = deque(maxlen=LOG_TAIL_LINES)
        self._bound = threading.Event()
        self._reader = threading.Thread(
            target=self._read_output,
            name=f"fleet-reader-{process.pid}",
            daemon=True,
        )
        self._reader.start()

    def _read_output(self) -> None:
        stream = self.process.stdout
        if stream is None:  # pragma: no cover - stdout is always piped
            return
        for raw in stream:
            line = raw.decode("utf-8", "replace").rstrip()
            self.logs.append(line)
            if self.url is None:
                match = LISTENING_PATTERN.search(line)
                if match:
                    self.url = f"http://{match.group(1)}:{match.group(2)}"
                    self._bound.set()
        self._bound.set()  # EOF: unblock waiters even on startup failure

    def wait_bound(self, timeout: float) -> str:
        """Block until the worker logs its bound address; return its URL."""
        self._bound.wait(timeout)
        if self.url is None:
            tail = "\n".join(self.logs)
            raise FleetError(
                f"worker for {self.index_path} did not bind within "
                f"{timeout:.0f}s (exit code {self.process.poll()}); "
                f"output tail:\n{tail}"
            )
        return self.url

    @property
    def alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self.process.poll() is None


class LocalWorkerFleet:
    """Spawn one ``repro serve`` per partition directory on port 0."""

    def __init__(
        self,
        index_paths: Sequence[Union[str, Path]],
        host: str = "127.0.0.1",
        mode: str = "open",
        open_window: float = 500.0,
        workers: int = 0,
        extra_args: Sequence[str] = (),
        startup_timeout: float = 60.0,
    ) -> None:
        """Spawn the fleet; call :meth:`wait_ready` before routing to it.

        Args:
            index_paths: One store/index path per worker.
            host: Bind address for every worker.
            mode: Search mode forwarded to ``repro serve --mode``.
            open_window: Open-search window forwarded to the workers.
            workers: Per-worker scoring thread count (0 = serial).
            extra_args: Additional ``repro serve`` flags, verbatim.
            startup_timeout: Seconds to wait for each port binding.
        """
        self.startup_timeout = startup_timeout
        self.workers: List[LocalWorker] = []
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p]
            + [p for p in (environment.get("PYTHONPATH") or "").split(os.pathsep) if p]
        )
        try:
            for path in index_paths:
                path = Path(path)
                command = [
                    sys.executable,
                    "-u",
                    "-c",
                    "from repro.cli import main; import sys; sys.exit(main())",
                    "serve",
                    "--index",
                    str(path),
                    "--host",
                    host,
                    "--port",
                    "0",
                    "--mode",
                    mode,
                    "--open-window",
                    str(open_window),
                    "--workers",
                    str(workers),
                    *extra_args,
                ]
                process = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    env=environment,
                    start_new_session=True,
                )
                self.workers.append(LocalWorker(path, process))
        except Exception:
            self.close()
            raise

    def wait_ready(self) -> List[str]:
        """Wait for every worker to bind; return their URLs in order."""
        try:
            return [
                worker.wait_bound(self.startup_timeout)
                for worker in self.workers
            ]
        except FleetError:
            self.close()
            raise

    @property
    def urls(self) -> List[str]:
        """Bound URLs of workers that have reported one so far."""
        return [worker.url for worker in self.workers if worker.url]

    def close(self, grace: float = 10.0) -> None:
        """Terminate every worker: SIGTERM, wait up to ``grace``, SIGKILL."""
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        deadline = time.monotonic() + grace
        for worker in self.workers:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                worker.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
        for worker in self.workers:
            stream = worker.process.stdout
            if stream is not None:
                try:
                    stream.close()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass

    def __enter__(self) -> "LocalWorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
