"""Scale-out coordinator tier: precursor-partitioned scatter-gather.

``repro.coord`` turns one segmented store plus a fleet of stock
``repro serve`` workers into a single search endpoint that is
**bit-identical** to a single-node search:

* :mod:`repro.coord.partition` — split a store's segment manifest into
  N partitions (balanced by rows or grouped by precursor-mass range)
  and materialize each as a zero-copy store directory;
* :mod:`repro.coord.fleet` — spawn/reap local ``repro serve`` workers
  for the one-command demo topology;
* :mod:`repro.coord.aioclient` — pooled asyncio HTTP/1.1 transport;
* :mod:`repro.coord.coordinator` — routing, health probing, hedged
  calls with bounded retry, and the exact cross-worker winner merge;
* :mod:`repro.coord.server` — the HTTP front-end with backpressure
  admission, speaking the same JSON API as a worker;
* :mod:`repro.coord.metrics` — the ``hdoms_coord_`` metric families.

See ``docs/scale-out.md`` for topology and tuning guidance.
"""

from .aioclient import AsyncClientError, AsyncHTTPError, AsyncSearchClient
from .coordinator import Coordinator, CoordinatorError, merge_psm_payloads
from .fleet import FleetError, LocalWorkerFleet
from .metrics import CoordinatorMetrics
from .partition import (
    PartitionPlan,
    PartitionSpec,
    materialize_partitions,
)
from .server import (
    CoordinatorServer,
    CoordinatorService,
    assign_replicas,
    serve_coordinate,
    start_coordinator_server,
)

__all__ = [
    "AsyncClientError",
    "AsyncHTTPError",
    "AsyncSearchClient",
    "Coordinator",
    "CoordinatorError",
    "CoordinatorMetrics",
    "CoordinatorServer",
    "CoordinatorService",
    "FleetError",
    "LocalWorkerFleet",
    "PartitionPlan",
    "PartitionSpec",
    "assign_replicas",
    "materialize_partitions",
    "merge_psm_payloads",
    "serve_coordinate",
    "start_coordinator_server",
]
