"""Scatter-gather coordinator over precursor-partitioned workers.

:class:`Coordinator` fronts a fleet of ``repro serve`` workers, each
serving one partition of a :class:`~repro.coord.partition.PartitionPlan`
(optionally replicated).  Per query it:

1. **routes** — computes the precursor window ``[mass - hw, mass + hw]``
   and scatters only to partitions whose mass hull intersects it (a
   superset of the worker's own exact per-segment pruning, so skipping
   never changes results);
2. **calls** — per partition, picks replicas healthy-first in
   round-robin order, fires the primary, hedges to a sibling when the
   call exceeds a p99-derived deadline, and retries once on the next
   replica after a failure;
3. **merges** — combines per-worker winners with the exact global rule
   every engine applies (max score, ties to lowest reference neutral
   mass, then lowest global row), using the PSM merge fields
   (``reference_mass``, ``library_position``) carried on the wire and
   :meth:`PartitionSpec.to_global` for the row mapping.

Because per-row scores are independent of batch composition and JSON
round-trips floats exactly, the merged output is **bit-identical** to a
single-node search over the unpartitioned library.

All network I/O runs on one asyncio loop in a daemon thread; the
public ``search_payloads`` / ``wait_ready`` / ``close`` facade is
blocking and thread-safe, so the ThreadingHTTPServer front-end in
:mod:`repro.coord.server` calls straight into it.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.trace import get_tracer
from ..service.protocol import spectrum_from_payload
from .aioclient import AsyncSearchClient
from .metrics import CoordinatorMetrics
from .partition import PartitionSpec

logger = logging.getLogger("repro.coord")

#: Hedge deadline used until a partition has enough latency samples.
DEFAULT_HEDGE_SECONDS = 1.0

#: Latency samples required before the p99 deadline kicks in.
MIN_HEDGE_SAMPLES = 16

#: Per-partition latency samples retained for the hedge deadline.
LATENCY_WINDOW = 256


class CoordinatorError(RuntimeError):
    """A partition could not be served by any of its replicas."""


def merge_psm_payloads(
    entries: Sequence[Tuple[Optional[dict], PartitionSpec]],
) -> Optional[dict]:
    """Merge per-partition winner payloads with the global engine rule.

    ``entries`` pairs each consulted partition's PSM payload (or None)
    with its :class:`PartitionSpec`.  The winner is chosen by max
    score, ties to lowest reference neutral mass, then lowest *global*
    library row — exactly ``np.lexsort((positions, masses, -scores))``
    restricted to the per-partition winners, which equals the
    single-node winner because each worker already applied the same
    rule to its subset.

    Cascade composition: a ``mode == "standard"`` candidate means the
    single-node standard pass would have matched, so open-pass
    candidates from other partitions are excluded before merging.

    The returned payload is a copy with ``library_position`` rewritten
    from worker-local to global row numbering.

    Raises:
        CoordinatorError: When a worker's PSM lacks the merge fields
            (an old worker version that cannot be merged exactly).
    """
    candidates: List[Tuple[float, float, int, dict]] = []
    for payload, spec in entries:
        if payload is None:
            continue
        mass = payload.get("reference_mass")
        position = payload.get("library_position")
        if mass is None or position is None:
            raise CoordinatorError(
                f"worker PSM for partition p{spec.index} is missing the "
                "merge fields (reference_mass/library_position); upgrade "
                "the worker — exact cross-worker merging is impossible "
                "without them"
            )
        candidates.append(
            (
                float(payload["score"]),
                float(mass),
                spec.to_global(int(position)),
                payload,
            )
        )
    if not candidates:
        return None
    if any(c[3].get("mode") == "standard" for c in candidates):
        candidates = [c for c in candidates if c[3].get("mode") == "standard"]
    best = min(candidates, key=lambda c: (-c[0], c[1], c[2]))
    winner = dict(best[3])
    winner["library_position"] = best[2]
    return winner


class WorkerHandle:
    """One worker replica: its URL, client, and probed health."""

    def __init__(
        self,
        url: str,
        partition: int,
        max_connections: int,
        timeout: float,
    ) -> None:
        self.url = url.rstrip("/")
        self.partition = partition
        self.client = AsyncSearchClient(
            self.url, max_connections=max_connections, timeout=timeout
        )
        self.healthy = False
        self.last_error: Optional[str] = None
        self._warned_mismatch = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "healthy" if self.healthy else "unhealthy"
        return f"WorkerHandle(p{self.partition}, {self.url}, {state})"


def _consume_result(task: "asyncio.Task") -> None:
    """Done-callback keeping cancelled/raced tasks from logging noise."""
    if task.cancelled():
        return
    task.exception()


class Coordinator:
    """Blocking facade over the async scatter-gather engine.

    Args:
        partitions: The plan's :class:`PartitionSpec` list, in order.
        worker_urls: Per-partition replica URL lists, aligned to
            ``partitions``; every partition needs at least one URL.
        mode: The workers' search mode (``open``/``standard``/
            ``cascade``) — determines the routing half-width.
        standard_tolerance: Standard-window half-width in Dalton.
        open_window: Open-window half-width in Dalton.
        metrics: Shared metric schema (a fresh one by default).
        worker_timeout: Per-call worker deadline in seconds.
        probe_interval: Seconds between health-probe rounds.
        hedge_floor_ms: Lower bound on the hedge deadline.
        verify_partitions: Cross-check each worker's reported
            ``num_references`` against its partition spec during
            probes; a mismatched worker is marked unhealthy (it is
            serving the wrong library slice — merging its winners
            would be silently incorrect).
    """

    def __init__(
        self,
        partitions: Sequence[PartitionSpec],
        worker_urls: Sequence[Sequence[str]],
        mode: str = "open",
        standard_tolerance: float = 0.05,
        open_window: float = 500.0,
        metrics: Optional[CoordinatorMetrics] = None,
        worker_timeout: float = 60.0,
        probe_interval: float = 2.0,
        hedge_floor_ms: float = 20.0,
        max_connections_per_worker: int = 32,
        verify_partitions: bool = True,
    ) -> None:
        if len(partitions) != len(worker_urls):
            raise ValueError(
                f"{len(partitions)} partitions but {len(worker_urls)} "
                "worker groups"
            )
        for spec, urls in zip(partitions, worker_urls):
            if not urls:
                raise ValueError(f"partition p{spec.index} has no workers")
        self.partitions = list(partitions)
        self.mode = mode
        self.standard_tolerance = float(standard_tolerance)
        self.open_window = float(open_window)
        self.metrics = metrics or CoordinatorMetrics()
        self.worker_timeout = float(worker_timeout)
        self.probe_interval = float(probe_interval)
        self.hedge_floor = float(hedge_floor_ms) / 1000.0
        self.verify_partitions = verify_partitions
        self._workers: List[List[WorkerHandle]] = [
            [
                WorkerHandle(
                    url,
                    spec.index,
                    max_connections=max_connections_per_worker,
                    timeout=worker_timeout,
                )
                for url in urls
            ]
            for spec, urls in zip(partitions, worker_urls)
        ]
        self._round_robin = [0] * len(self.partitions)
        self._latencies: List[List[float]] = [[] for _ in self.partitions]
        self._closing = False
        self._probe_task: Optional["asyncio.Task"] = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="coordinator-loop", daemon=True
        )
        self._thread.start()
        self._submit(self._start_prober()).result()

    # ------------------------------------------------------------------
    # loop plumbing
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _submit(self, coroutine) -> "asyncio.Future":
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    async def _start_prober(self) -> None:
        self._probe_task = asyncio.ensure_future(self._probe_loop())

    def close(self) -> None:
        """Stop probing, close every client, and stop the loop thread."""
        if self._closing:
            return
        self._closing = True
        self._submit(self._shutdown()).result(timeout=30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    async def _shutdown(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
        for group in self._workers:
            for handle in group:
                await handle.client.close()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # health probing
    # ------------------------------------------------------------------

    async def _probe_loop(self) -> None:
        while True:
            await self._probe_all()
            await asyncio.sleep(self.probe_interval)

    async def _probe_all(self) -> None:
        await asyncio.gather(
            *(
                self._probe(handle, spec)
                for spec, group in zip(self.partitions, self._workers)
                for handle in group
            ),
            return_exceptions=True,
        )

    async def _probe(self, handle: WorkerHandle, spec: PartitionSpec) -> None:
        try:
            status, body = await handle.client.request_json(
                "GET",
                "/healthz",
                timeout=min(5.0, self.worker_timeout),
                raise_for_status=False,
            )
        except Exception as error:  # noqa: BLE001 - probe boundary
            was_healthy = handle.healthy
            handle.healthy = False
            handle.last_error = str(error)
            if was_healthy:
                logger.warning(
                    "worker %s (p%d) went unhealthy: %s",
                    handle.url,
                    handle.partition,
                    error,
                )
            return
        healthy = status == 200 and not body.get("draining", False)
        if healthy and self.verify_partitions:
            reported = body.get("num_references")
            if reported is not None and int(reported) != spec.num_references:
                healthy = False
                handle.last_error = (
                    f"serves {reported} references, partition p{spec.index} "
                    f"expects {spec.num_references}"
                )
                if not handle._warned_mismatch:
                    handle._warned_mismatch = True
                    logger.warning(
                        "worker %s rejected: %s", handle.url, handle.last_error
                    )
        if healthy:
            handle.last_error = None
        elif handle.healthy:
            logger.warning(
                "worker %s (p%d) went unhealthy (status %d, draining=%s)",
                handle.url,
                handle.partition,
                status,
                body.get("draining"),
            )
        handle.healthy = healthy

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every partition has at least one healthy worker.

        Raises:
            CoordinatorError: When the deadline passes first.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            self._submit(self._probe_all()).result()
            missing = [
                spec.index
                for spec, group in zip(self.partitions, self._workers)
                if not any(handle.healthy for handle in group)
            ]
            if not missing:
                return
            if _time.monotonic() >= deadline:
                details = "; ".join(
                    f"p{spec.index}: "
                    + ", ".join(
                        f"{handle.url} ({handle.last_error or 'unprobed'})"
                        for handle in group
                    )
                    for spec, group in zip(self.partitions, self._workers)
                    if spec.index in missing
                )
                raise CoordinatorError(
                    f"partitions {missing} have no healthy worker after "
                    f"{timeout:.0f}s — {details}"
                )
            _time.sleep(0.2)

    # ------------------------------------------------------------------
    # scatter-gather
    # ------------------------------------------------------------------

    def _half_width(self) -> float:
        if self.mode == "standard":
            return self.standard_tolerance
        # Open and cascade both route on the open window (a superset of
        # the cascade's standard pass, so routing never misses a row).
        return self.open_window

    def search_payloads(
        self,
        spectra_payloads: Sequence[dict],
        request_id: Optional[str] = None,
    ) -> List[Optional[dict]]:
        """Scatter-gather a batch of spectrum payloads; aligned output.

        Each element of the result is the merged winner PSM payload
        (``library_position`` in *global* rows) or None; the list
        aligns with the input order exactly like a worker's
        ``/search_batch``.
        """
        return self._submit(
            self._search_batch(list(spectra_payloads), request_id)
        ).result()

    async def _search_batch(
        self,
        payloads: List[dict],
        request_id: Optional[str] = None,
    ) -> List[Optional[dict]]:
        half_width = self._half_width()
        targets: List[List[int]] = []
        with get_tracer().span("coord.route", request_id=request_id):
            for payload in payloads:
                mass = spectrum_from_payload(payload).neutral_mass
                lo, hi = mass - half_width, mass + half_width
                routed = [
                    spec.index
                    for spec in self.partitions
                    if spec.intersects(lo, hi)
                ]
                targets.append(routed)
                self.metrics.fanout.observe(len(routed))
                for spec in self.partitions:
                    if spec.index not in routed:
                        self.metrics.skipped.inc(partition=str(spec.index))
        # One sub-batch per partition, holding only the queries routed
        # to it; worker replies align with the sub-batch order.
        sub_batches: Dict[int, List[int]] = {}
        for query_index, routed in enumerate(targets):
            for partition_index in routed:
                sub_batches.setdefault(partition_index, []).append(query_index)

        async def call(partition_index: int, indices: List[int]):
            spec = self.partitions[partition_index]
            self.metrics.scatter.inc(
                len(indices), partition=str(partition_index)
            )
            body = {"spectra": [payloads[i] for i in indices]}
            reply = await self._call_partition(spec, "/search_batch", body)
            psms = reply.get("psms")
            if not isinstance(psms, list) or len(psms) != len(indices):
                raise CoordinatorError(
                    f"partition p{partition_index} returned "
                    f"{len(psms) if isinstance(psms, list) else 'no'} PSMs "
                    f"for {len(indices)} queries"
                )
            return partition_index, dict(zip(indices, psms))

        ordered = sorted(sub_batches.items())
        replies = await asyncio.gather(
            *(call(partition, indices) for partition, indices in ordered)
        )
        by_partition = dict(replies)
        with get_tracer().span("coord.merge", request_id=request_id):
            merged: List[Optional[dict]] = []
            for query_index, routed in enumerate(targets):
                entries = [
                    (
                        by_partition[partition_index][query_index],
                        self.partitions[partition_index],
                    )
                    for partition_index in routed
                ]
                merged.append(merge_psm_payloads(entries))
        return merged

    # ------------------------------------------------------------------
    # per-partition call with hedging and bounded retry
    # ------------------------------------------------------------------

    def _replicas_in_order(self, partition_index: int) -> List[WorkerHandle]:
        group = self._workers[partition_index]
        start = self._round_robin[partition_index] % len(group)
        self._round_robin[partition_index] += 1
        rotated = group[start:] + group[:start]
        # Stable sort: healthy replicas first, rotation preserved
        # within each health class.
        return sorted(rotated, key=lambda handle: not handle.healthy)

    def _hedge_deadline(self, partition_index: int) -> float:
        samples = self._latencies[partition_index]
        if len(samples) < MIN_HEDGE_SAMPLES:
            deadline = DEFAULT_HEDGE_SECONDS
        else:
            ranked = sorted(samples)
            deadline = ranked[int(0.99 * (len(ranked) - 1))]
        return max(deadline, self.hedge_floor)

    async def _call_worker(
        self, handle: WorkerHandle, spec: PartitionSpec, path: str, body: dict
    ) -> dict:
        loop = asyncio.get_running_loop()
        started = loop.time()
        status, reply = await handle.client.request_json(
            "POST", path, body, timeout=self.worker_timeout
        )
        elapsed = loop.time() - started
        samples = self._latencies[spec.index]
        samples.append(elapsed)
        if len(samples) > LATENCY_WINDOW:
            del samples[: len(samples) - LATENCY_WINDOW]
        self.metrics.worker_latency.observe(elapsed, partition=str(spec.index))
        return reply

    async def _call_partition(
        self, spec: PartitionSpec, path: str, body: dict
    ) -> dict:
        """Call one partition: healthy-first replicas, hedge, retry.

        The primary replica gets the request first; if it exceeds the
        partition's p99-derived hedge deadline, the same request is
        *also* fired at the next replica (first success wins, the
        loser is cancelled).  A replica that fails outright is retried
        on the next unfired replica.  Every replica is fired at most
        once, so the work is bounded even in a full outage.
        """
        queue = self._replicas_in_order(spec.index)
        inflight: Dict["asyncio.Task", WorkerHandle] = {}
        errors: List[str] = []
        hedged = False

        def fire() -> "asyncio.Task":
            handle = queue.pop(0)
            task = asyncio.ensure_future(
                self._call_worker(handle, spec, path, body)
            )
            task.add_done_callback(_consume_result)
            inflight[task] = handle
            return task

        primary = fire()
        try:
            while inflight:
                timeout = (
                    self._hedge_deadline(spec.index)
                    if not hedged and queue
                    else None
                )
                done, _ = await asyncio.wait(
                    set(inflight),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # Hedge deadline expired with the primary still
                    # running: fire the same request at a sibling.
                    hedged = True
                    self.metrics.hedges.inc(partition=str(spec.index))
                    fire()
                    continue
                for task in done:
                    handle = inflight.pop(task)
                    error = task.exception()
                    if error is None:
                        if hedged and task is not primary:
                            self.metrics.hedge_wins.inc(
                                partition=str(spec.index)
                            )
                        return task.result()
                    handle.healthy = False
                    handle.last_error = str(error)
                    errors.append(f"{handle.url}: {error}")
                    self.metrics.worker_errors.inc(worker=handle.url)
                    if queue and not inflight:
                        self.metrics.retries.inc(partition=str(spec.index))
                        fire()
        finally:
            for task in inflight:
                task.cancel()
        raise CoordinatorError(
            f"partition p{spec.index}: every replica failed "
            f"({'; '.join(errors)})"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe topology/health snapshot for ``/stats``."""
        return {
            "mode": self.mode,
            "standard_tolerance": self.standard_tolerance,
            "open_window": self.open_window,
            "partitions": [
                {
                    **spec.to_dict(),
                    "workers": [
                        {
                            "url": handle.url,
                            "healthy": handle.healthy,
                            "last_error": handle.last_error,
                        }
                        for handle in group
                    ],
                }
                for spec, group in zip(self.partitions, self._workers)
            ],
        }

    def healthy(self) -> bool:
        """Whether every partition has at least one healthy worker."""
        return all(
            any(handle.healthy for handle in group)
            for group in self._workers
        )
