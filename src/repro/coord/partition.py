"""Precursor-partitioned scatter plans over a segmented store.

A :class:`PartitionPlan` divides a store's segment manifest among N
workers so a coordinator can scatter each query only to the workers
whose precursor-mass range intersects the query window, then merge the
per-worker winners bit-identically to a single-node search.  Two
strategies exist:

* ``rows`` — contiguous runs of segments in manifest order, balanced
  by row count.  Partition mass ranges typically overlap (ingest order
  is rarely mass-sorted), so open-window queries fan out to every
  partition and the win is *parallelism*: each worker scores ~1/N of
  the library.
* ``mass`` — segments grouped by their recorded precursor-mass range,
  balanced by row count.  Partition hulls are near-disjoint, so narrow
  windows route to few workers and the win is *pruning*.

Either way, every partition lists its segment ids in ascending
manifest order, so a worker's *local* row order is the global row
order restricted to its subset — which is exactly what makes the
coordinator's cross-worker tie-break (max score, lowest reference
mass, lowest global row) equal the single-node
``np.lexsort((positions, masses, -scores))`` rule.

:func:`materialize_partitions` writes each partition as a real store
directory whose manifest references the *original* segment archives by
relative path — no row is ever copied, and a stock ``repro serve`` can
front any partition unchanged.
"""

from __future__ import annotations

import bisect
import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..store.manifest import StoreManifest
from ..store.store import SegmentedStore

#: Subdirectory of a store root where partition manifests are written.
PARTITION_DIR = "partitions"

#: Supported partitioning strategies.
STRATEGIES = ("rows", "mass")


@dataclass(frozen=True)
class PartitionSpec:
    """One partition: a subset of segments plus its row-number mapping.

    ``segment_ids`` are original manifest segment ids in ascending
    order; ``global_offsets[k]`` is segment k's first global row in the
    original store and ``local_offsets[k]`` its first row inside this
    partition, so :meth:`to_global` converts a worker-local winner
    position back to the original global row number exactly.
    """

    index: int
    segment_ids: Tuple[int, ...]
    num_references: int
    mass_min: float
    mass_max: float
    global_offsets: Tuple[int, ...]
    local_offsets: Tuple[int, ...]

    def intersects(self, lo: float, hi: float) -> bool:
        """Whether this partition's mass hull overlaps ``[lo, hi]``."""
        return self.mass_max >= lo and self.mass_min <= hi

    def to_global(self, local_position: int) -> int:
        """Map a worker-local row number to the original global row."""
        if not 0 <= local_position < self.num_references:
            raise ValueError(
                f"local position {local_position} outside partition "
                f"p{self.index} ({self.num_references} rows)"
            )
        slot = bisect.bisect_right(self.local_offsets, local_position) - 1
        return self.global_offsets[slot] + (
            local_position - self.local_offsets[slot]
        )

    def to_dict(self) -> dict:
        """JSON-safe form (feeds the coordinator's ``/stats``)."""
        return {
            "index": self.index,
            "segment_ids": list(self.segment_ids),
            "num_references": self.num_references,
            "mass_min": self.mass_min,
            "mass_max": self.mass_max,
        }


def _contiguous_groups(counts: Sequence[int], parts: int) -> List[List[int]]:
    """Split positions 0..n-1 into ``parts`` contiguous, non-empty runs.

    Greedy ideal-boundary walk: close group ``g`` once its cumulative
    row count reaches ``total * (g+1) / parts``, cutting early when the
    remaining items are only just enough to keep every later group
    non-empty.
    """
    total = sum(counts)
    groups: List[List[int]] = []
    current: List[int] = []
    accumulated = 0
    for position, count in enumerate(counts):
        current.append(position)
        accumulated += count
        done = len(groups)
        items_left = len(counts) - position - 1
        if done < parts - 1 and (
            accumulated >= total * (done + 1) / parts
            or items_left <= parts - done - 1
        ):
            groups.append(current)
            current = []
    groups.append(current)
    return groups


class PartitionPlan:
    """How one store's segments are divided among coordinator workers."""

    def __init__(
        self,
        partitions: Sequence[PartitionSpec],
        strategy: str,
        num_references: int,
    ) -> None:
        """Adopt already-built specs; prefer :meth:`build`."""
        self.partitions: List[PartitionSpec] = list(partitions)
        self.strategy = strategy
        self.num_references = num_references

    @classmethod
    def build(
        cls,
        store: SegmentedStore,
        num_partitions: int,
        strategy: str = "rows",
    ) -> "PartitionPlan":
        """Plan ``num_partitions`` partitions over ``store``'s manifest.

        ``num_partitions`` is clamped to the segment count (a segment
        is the smallest unit of partitioning — rows are never split).

        Raises:
            ValueError: On an unknown strategy, a partition count below
                one, or an empty store.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; pick from "
                f"{STRATEGIES}"
            )
        if num_partitions < 1:
            raise ValueError(f"need at least one partition, got {num_partitions}")
        metas = store.segment_metas
        if not metas:
            raise ValueError(f"store at {store.root} has no segments")
        num_partitions = min(num_partitions, len(metas))
        offsets = store.offsets
        if strategy == "mass":
            order = sorted(
                range(len(metas)),
                key=lambda i: (metas[i].mass_min, metas[i].mass_max, i),
            )
        else:
            order = list(range(len(metas)))
        groups = _contiguous_groups(
            [metas[i].num_references for i in order], num_partitions
        )
        specs: List[PartitionSpec] = []
        for part_index, group in enumerate(groups):
            # Ascending manifest order inside the partition keeps the
            # worker's local row order equal to the global row order
            # restricted to its subset (the bit-identity invariant).
            segment_ids = sorted(order[position] for position in group)
            counts = [metas[i].num_references for i in segment_ids]
            local_offsets = [0]
            for count in counts[:-1]:
                local_offsets.append(local_offsets[-1] + count)
            specs.append(
                PartitionSpec(
                    index=part_index,
                    segment_ids=tuple(segment_ids),
                    num_references=sum(counts),
                    mass_min=min(metas[i].mass_min for i in segment_ids),
                    mass_max=max(metas[i].mass_max for i in segment_ids),
                    global_offsets=tuple(
                        int(offsets[i]) for i in segment_ids
                    ),
                    local_offsets=tuple(local_offsets),
                )
            )
        return cls(specs, strategy, store.num_references)

    def __len__(self) -> int:
        return len(self.partitions)

    def partitions_for_range(self, lo: float, hi: float) -> List[int]:
        """Indices of partitions whose mass hull intersects ``[lo, hi]``.

        Routing to the hull is a superset of the exact per-segment
        pruning the worker performs itself, so skipping non-intersecting
        partitions never changes any result.
        """
        return [
            spec.index
            for spec in self.partitions
            if spec.intersects(lo, hi)
        ]

    def to_dict(self) -> dict:
        """JSON-safe summary (feeds the coordinator's ``/stats``)."""
        return {
            "strategy": self.strategy,
            "num_references": self.num_references,
            "partitions": [spec.to_dict() for spec in self.partitions],
        }


def materialize_partitions(
    store: SegmentedStore,
    plan: PartitionPlan,
    root: Optional[Union[str, Path]] = None,
) -> Dict[int, Path]:
    """Write each partition as a store directory referencing shared segments.

    Every partition gets ``<root>/p<k>/manifest.json`` carrying the
    original provenance and its subset of segment descriptors, with
    ``file`` entries rewritten to relative paths into the original
    store's ``segments/`` directory — zero rows are copied, and the
    partitions stay valid across appends to *other* segments.  The
    default root is ``<store>/partitions/<strategy>-<N>`` so repeated
    plans never clobber each other.

    Returns a mapping of partition index to its store directory.
    """
    if root is None:
        root = store.root / PARTITION_DIR / f"{plan.strategy}-{len(plan)}"
    root = Path(root)
    store_root = store.root.resolve()
    paths: Dict[int, Path] = {}
    for spec in plan.partitions:
        partition_root = root / f"p{spec.index}"
        partition_root.mkdir(parents=True, exist_ok=True)
        segments = []
        for segment_id in spec.segment_ids:
            meta = store.manifest.segments[segment_id]
            relative = os.path.relpath(
                store_root / meta.file, partition_root.resolve()
            )
            segments.append(dataclasses.replace(meta, file=relative))
        manifest = StoreManifest(
            dim=store.manifest.dim,
            space=store.manifest.space,
            binning=store.manifest.binning,
            preprocessing=store.manifest.preprocessing,
            ann=store.manifest.ann,
            segments=segments,
        )
        manifest.save(partition_root)
        paths[spec.index] = partition_root
    return paths
