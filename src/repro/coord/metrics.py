"""Coordinator-side metric schema (fan-out, hedges, retries).

Mirrors :class:`repro.service.metrics.ServiceMetrics` in spirit: one
instance backs the coordinator's ``/metrics`` endpoint, stdlib-only,
Prometheus text format via the shared
:class:`~repro.service.metrics.MetricsRegistry`.  Families use the
``hdoms_coord_`` prefix so a scraper watching a mixed fleet can tell
the tier apart from the ``hdoms_service_`` workers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..service.metrics import LATENCY_BUCKETS, MetricsRegistry

#: Buckets for per-query partition fan-out (how many workers were hit).
FANOUT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class CoordinatorMetrics:
    """The coordinator's metric families, pre-registered once."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.requests = self.registry.counter(
            "hdoms_coord_requests_total",
            "Requests received by the coordinator, by endpoint.",
            ("endpoint",),
        )
        self.rejected = self.registry.counter(
            "hdoms_coord_rejected_total",
            "Requests rejected by backpressure admission (HTTP 429).",
            ("endpoint",),
        )
        self.scatter = self.registry.counter(
            "hdoms_coord_scatter_total",
            "Sub-queries scattered to workers, by partition.",
            ("partition",),
        )
        self.skipped = self.registry.counter(
            "hdoms_coord_skipped_total",
            "Per-query partition skips from precursor-range routing.",
            ("partition",),
        )
        self.retries = self.registry.counter(
            "hdoms_coord_retries_total",
            "Failed worker calls retried on a sibling replica.",
            ("partition",),
        )
        self.hedges = self.registry.counter(
            "hdoms_coord_hedges_total",
            "Hedged requests fired after the p99-derived deadline.",
            ("partition",),
        )
        self.hedge_wins = self.registry.counter(
            "hdoms_coord_hedge_wins_total",
            "Hedged requests that finished before the primary.",
            ("partition",),
        )
        self.worker_errors = self.registry.counter(
            "hdoms_coord_worker_errors_total",
            "Worker call failures (transport or HTTP error), by worker.",
            ("worker",),
        )
        self.fanout = self.registry.histogram(
            "hdoms_coord_fanout_partitions",
            "Partitions consulted per query after range routing.",
            (),
            buckets=FANOUT_BUCKETS,
        )
        self.latency = self.registry.histogram(
            "hdoms_coord_request_latency_seconds",
            "End-to-end coordinator request latency, by endpoint.",
            ("endpoint",),
            buckets=LATENCY_BUCKETS,
        )
        self.worker_latency = self.registry.histogram(
            "hdoms_coord_worker_latency_seconds",
            "Latency of individual worker calls, by partition.",
            ("partition",),
            buckets=LATENCY_BUCKETS,
        )

    def render(self) -> str:
        """The full Prometheus text payload for ``/metrics``."""
        return self.registry.render()
