"""HTTP front-end of the coordinator tier (``repro coordinate``).

Speaks the same JSON API as :mod:`repro.service.server` — ``/search``,
``/search_batch``, ``/healthz``, ``/stats``, ``/metrics`` — so a stock
:class:`~repro.service.client.SearchClient` points at a coordinator
without knowing it fronts a fleet.  Differences from a worker:

* admission control — at most ``max_inflight`` search requests run at
  once; excess requests get **429** with a ``Retry-After`` header
  instead of queueing unboundedly (the coordinator's backlog lives in
  its clients, where it belongs);
* ``/healthz`` reflects the *fleet*: 200 only while every partition
  has at least one healthy worker (and 503 with ``draining: true``
  once shutdown begins, same as a worker);
* ``/metrics`` exports the ``hdoms_coord_`` fan-out/hedge/retry
  families instead of the worker's ``hdoms_service_`` ones.

:func:`serve_coordinate` is the process runner behind the CLI verb; it
mirrors :func:`repro.service.server.serve` (signal handling, the
load-bearing ``listening on http://host:port`` line, drain-then-close
shutdown), and can optionally materialize the partition plan and spawn
a local worker fleet first.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs.logging import ensure_default_logging
from ..obs.trace import DEFAULT_CAPACITY, get_tracer, new_request_id
from ..service.protocol import (
    DEFAULT_ROUTE,
    ProtocolError,
    route_from_payload,
    spectrum_from_payload,
)
from ..service.server import ServiceStartupError, _REQUEST_ID_PATTERN
from ..store.store import SegmentedStore
from .coordinator import Coordinator, CoordinatorError
from .fleet import LocalWorkerFleet
from .partition import PartitionPlan, materialize_partitions

logger = logging.getLogger("repro.coord")


class CoordinatorService:
    """Glue between the HTTP handlers and the :class:`Coordinator`.

    Owns the admission gate: an atomic in-flight counter, checked and
    bumped under one lock, bounded by ``max_inflight``.  No queue —
    a full coordinator says 429 immediately and lets the client's own
    retry policy provide the backpressure.
    """

    def __init__(self, coordinator: Coordinator, max_inflight: int = 64) -> None:
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self.coordinator = coordinator
        self.metrics = coordinator.metrics
        self.max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._started = time.time()

    def try_admit(self) -> bool:
        """Reserve one in-flight slot; False when the gate is full."""
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Return one in-flight slot."""
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Search requests currently being scatter-gathered."""
        with self._inflight_lock:
            return self._inflight

    def healthz(self) -> Dict[str, object]:
        """Fleet-level liveness payload (status ok or degraded)."""
        fleet_healthy = self.coordinator.healthy()
        return {
            "status": "ok" if fleet_healthy else "degraded",
            "role": "coordinator",
            "route": DEFAULT_ROUTE,
            "mode": self.coordinator.mode,
            "num_partitions": len(self.coordinator.partitions),
            "num_references": sum(
                spec.num_references for spec in self.coordinator.partitions
            ),
            "uptime_seconds": round(time.time() - self._started, 3),
        }

    def stats(self) -> Dict[str, object]:
        """Topology, per-worker health, and the admission gate state."""
        return {
            "role": "coordinator",
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            **self.coordinator.stats(),
        }

    def close(self) -> None:
        """Shut the coordinator (probes, clients, loop thread) down."""
        self.coordinator.close()


class CoordinatorServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the coordinator service.

    Mirrors :class:`~repro.service.server.SearchServer`: non-daemon
    handler threads so ``server_close()`` joins them, and a
    ``draining`` flag that makes every post-shutdown response close
    its connection so that join cannot be held up by keep-alive
    pollers.
    """

    daemon_threads = False
    allow_reuse_address = True
    draining = False

    def __init__(self, address, service: CoordinatorService, quiet: bool = True):
        super().__init__(address, CoordinatorRequestHandler)
        self.coordinator_service = service
        self.quiet = quiet

    def shutdown(self) -> None:
        """Stop accepting requests and drain keep-alive connections."""
        self.draining = True
        super().shutdown()


class CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """Routes the JSON API onto a :class:`CoordinatorService`."""

    server_version = "hdoms-coordinator"
    protocol_version = "HTTP/1.1"
    timeout = 10.0
    max_body_bytes = 64 * 1024 * 1024

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging, silenced unless ``quiet=False``."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    # -- plumbing (same wire behavior as the worker handler) -----------

    def _send_json(
        self,
        status: int,
        payload: dict,
        request_id: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        if status >= 400 or getattr(self.server, "draining", False):
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        if status >= 400 or getattr(self.server, "draining", False):
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _request_id(self) -> str:
        supplied = self.headers.get("X-Request-Id")
        if supplied and _REQUEST_ID_PATTERN.match(supplied):
            return supplied
        return new_request_id()

    def _read_json(self) -> object:
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise ProtocolError(f"bad Content-Length header: {raw!r}") from None
        if length <= 0:
            raise ProtocolError("request body required")
        if length > self.max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes} byte limit"
            )
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"bad JSON body: {error}") from None

    @property
    def coordinator_service(self) -> CoordinatorService:
        """The coordinator service owned by the server."""
        return self.server.coordinator_service

    def _check_route(self, payload: object) -> None:
        """Reject routed requests naming anything but the default route.

        The coordinator fronts exactly one logical library; accepting
        an unknown route name and answering from the fleet anyway
        would be the wrong-library leak the worker's routing layer
        exists to prevent.
        """
        if isinstance(payload, dict):
            route = route_from_payload(payload)
            if route is not None and route != DEFAULT_ROUTE:
                raise ProtocolError(
                    f"coordinator serves only the {DEFAULT_ROUTE!r} route, "
                    f"got {route!r}"
                )

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Read-only endpoints: /healthz, /stats, /metrics."""
        service = self.coordinator_service
        try:
            if self.path == "/healthz":
                service.metrics.requests.inc(endpoint="healthz")
                if getattr(self.server, "draining", False):
                    self._send_json(
                        503, {"status": "draining", "draining": True}
                    )
                    return
                payload = service.healthz()
                payload["draining"] = False
                status = 200 if payload["status"] == "ok" else 503
                self._send_json(status, payload)
            elif self.path == "/stats":
                service.metrics.requests.inc(endpoint="stats")
                self._send_json(200, service.stats())
            elif self.path == "/metrics":
                service.metrics.requests.inc(endpoint="metrics")
                self._send_text(
                    200,
                    service.metrics.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except Exception as error:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """The scatter-gather endpoints: /search and /search_batch."""
        try:
            if self.path == "/search":
                self._handle_search()
            elif self.path == "/search_batch":
                self._handle_search_batch()
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ProtocolError as error:
            self._send_json(400, {"error": str(error)})
        except CoordinatorError as error:
            # The fleet could not answer (every replica of some
            # partition failed): unavailable, not a client error.
            self._send_json(503, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - boundary
            self._send_json(500, {"error": str(error)})

    def _admit(self, endpoint: str) -> bool:
        service = self.coordinator_service
        service.metrics.requests.inc(endpoint=endpoint)
        if not service.try_admit():
            service.metrics.rejected.inc(endpoint=endpoint)
            self._send_json(
                429,
                {
                    "error": (
                        f"coordinator at capacity "
                        f"({service.max_inflight} in-flight requests)"
                    )
                },
                extra_headers={"Retry-After": "1"},
            )
            return False
        return True

    def _handle_search(self) -> None:
        payload = self._read_json()
        self._check_route(payload)
        if isinstance(payload, dict) and "spectrum" in payload:
            payload = payload["spectrum"]
        spectrum_from_payload(payload)  # validate before admission
        if not self._admit("search"):
            return
        service = self.coordinator_service
        request_id = self._request_id()
        started = time.perf_counter()
        try:
            with get_tracer().span(
                "coord.request", request_id=request_id, route=DEFAULT_ROUTE
            ):
                merged = service.coordinator.search_payloads(
                    [payload], request_id=request_id
                )
        finally:
            service.release()
        elapsed = time.perf_counter() - started
        service.metrics.latency.observe(elapsed, endpoint="search")
        self._send_json(
            200,
            {
                "psm": merged[0],
                "cached": False,
                "route": DEFAULT_ROUTE,
                "request_id": request_id,
                "elapsed_ms": round(1000.0 * elapsed, 3),
            },
            request_id=request_id,
        )

    def _handle_search_batch(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or "spectra" not in payload:
            raise ProtocolError('body must be {"spectra": [...]}')
        self._check_route(payload)
        spectra_payload = payload["spectra"]
        if not isinstance(spectra_payload, list):
            raise ProtocolError('"spectra" must be a list')
        for entry in spectra_payload:
            spectrum_from_payload(entry)  # validate before admission
        if not self._admit("search_batch"):
            return
        service = self.coordinator_service
        request_id = self._request_id()
        started = time.perf_counter()
        try:
            with get_tracer().span(
                "coord.request", request_id=request_id, route=DEFAULT_ROUTE
            ):
                merged = service.coordinator.search_payloads(
                    spectra_payload, request_id=request_id
                )
        finally:
            service.release()
        elapsed = time.perf_counter() - started
        service.metrics.latency.observe(elapsed, endpoint="search_batch")
        self._send_json(
            200,
            {
                "psms": merged,
                "route": DEFAULT_ROUTE,
                "request_id": request_id,
                "elapsed_ms": round(1000.0 * elapsed, 3),
            },
            request_id=request_id,
        )


def start_coordinator_server(
    service: CoordinatorService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> CoordinatorServer:
    """Bind a :class:`CoordinatorServer` (port 0 = ephemeral)."""
    return CoordinatorServer((host, port), service)


def assign_replicas(
    worker_urls: Sequence[str], num_partitions: int
) -> List[List[str]]:
    """Deal worker URLs round-robin into per-partition replica groups.

    URL ``i`` serves partition ``i % num_partitions``, so with 2
    partitions and 4 workers, partition 0 gets workers 0 and 2 —
    replicas only appear once every partition has a primary.

    Raises:
        ValueError: With fewer URLs than partitions.
    """
    if len(worker_urls) < num_partitions:
        raise ValueError(
            f"{num_partitions} partitions need at least that many workers, "
            f"got {len(worker_urls)}"
        )
    groups: List[List[str]] = [[] for _ in range(num_partitions)]
    for position, url in enumerate(worker_urls):
        groups[position % num_partitions].append(url)
    return groups


def serve_coordinate(
    store_path: Union[str, Path],
    num_partitions: int,
    strategy: str = "rows",
    worker_urls: Optional[Sequence[str]] = None,
    spawn_workers: bool = False,
    host: str = "127.0.0.1",
    port: int = 8347,
    mode: str = "open",
    open_window: float = 500.0,
    standard_tolerance: float = 0.05,
    worker_threads: int = 0,
    max_inflight: int = 64,
    worker_timeout: float = 60.0,
    probe_interval: float = 2.0,
    hedge_floor_ms: float = 20.0,
    startup_timeout: float = 60.0,
    quiet: bool = False,
    drain_timeout: float = 30.0,
    trace: bool = True,
    trace_capacity: int = DEFAULT_CAPACITY,
) -> int:
    """Run the coordinator until SIGINT/SIGTERM; drains before exiting.

    This is the ``repro coordinate`` entry point.  The store at
    ``store_path`` provides the partition plan; workers come from one
    of two places:

    * ``spawn_workers=True`` — materialize the plan's partition
      manifests next to the store and spawn one local ``repro serve``
      per partition (the one-command demo topology);
    * ``worker_urls`` — pre-started worker URLs dealt round-robin into
      per-partition replica groups (see :func:`assign_replicas`); each
      worker must already be serving its partition's store.

    Shutdown closes the HTTP front first (new connections refused,
    in-flight responses finish), then the coordinator (probes and
    pooled worker connections), then any spawned fleet.
    """
    ensure_default_logging()
    tracer = get_tracer()
    tracer_was_enabled = tracer.enabled
    if trace:
        tracer.enable(trace_capacity)

    def _restore_tracer() -> None:
        if trace and not tracer_was_enabled:
            tracer.disable()

    fleet: Optional[LocalWorkerFleet] = None
    coordinator: Optional[Coordinator] = None
    try:
        try:
            store = SegmentedStore.open(store_path)
            plan = PartitionPlan.build(store, num_partitions, strategy)
            if spawn_workers:
                if worker_urls:
                    raise ValueError(
                        "--spawn-workers and --worker are mutually exclusive"
                    )
                paths = materialize_partitions(store, plan)
                logger.info(
                    "materialized %d partition manifests under %s",
                    len(paths),
                    paths[0].parent,
                )
                fleet = LocalWorkerFleet(
                    [paths[spec.index] for spec in plan.partitions],
                    host=host,
                    mode=mode,
                    open_window=open_window,
                    workers=worker_threads,
                    startup_timeout=startup_timeout,
                )
                groups = [[url] for url in fleet.wait_ready()]
            else:
                if not worker_urls:
                    raise ValueError(
                        "pass --worker URL per partition or --spawn-workers"
                    )
                groups = assign_replicas(list(worker_urls), len(plan))
            coordinator = Coordinator(
                plan.partitions,
                groups,
                mode=mode,
                standard_tolerance=standard_tolerance,
                open_window=open_window,
                worker_timeout=worker_timeout,
                probe_interval=probe_interval,
                hedge_floor_ms=hedge_floor_ms,
            )
            coordinator.wait_ready(timeout=startup_timeout)
            service = CoordinatorService(coordinator, max_inflight=max_inflight)
            server = start_coordinator_server(service, host, port)
        except (ValueError, OSError, CoordinatorError) as error:
            if coordinator is not None:
                coordinator.close()
            if fleet is not None:
                fleet.close()
            _restore_tracer()
            raise ServiceStartupError(str(error)) from error
        server.quiet = quiet

        def _shutdown(signum, frame) -> None:
            # shutdown() must not run on the serve_forever thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        installed = []
        for signame in ("SIGINT", "SIGTERM"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                installed.append((signum, signal.signal(signum, _shutdown)))
            except ValueError:  # not the main thread
                pass
        bound_host, bound_port = server.server_address[:2]
        for spec, group in zip(plan.partitions, coordinator._workers):
            logger.info(
                "partition p%d: %d references, mass [%.2f, %.2f], workers %s",
                spec.index,
                spec.num_references,
                spec.mass_min,
                spec.mass_max,
                ", ".join(handle.url for handle in group),
            )
        # Same load-bearing phrasing as the worker runner: supervisors
        # and the fault-injection tests parse the bound port from it.
        logger.info(
            "listening on http://%s:%s (coordinator: partitions=%s, "
            "strategy=%s, mode=%s, max_inflight=%s)",
            bound_host,
            bound_port,
            len(plan),
            plan.strategy,
            mode,
            max_inflight,
        )
        try:
            server.serve_forever()
        finally:
            watchdog = threading.Timer(drain_timeout, service.close)
            watchdog.daemon = True
            watchdog.start()
            try:
                server.server_close()
            finally:
                watchdog.cancel()
                service.close()
            if fleet is not None:
                fleet.close()
            for signum, previous in installed:
                signal.signal(signum, previous)
            _restore_tracer()
            logger.info("coordinator drained and closed")
        return 0
    except ServiceStartupError:
        raise
