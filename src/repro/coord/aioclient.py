"""Asyncio connection-reusing HTTP/1.1 JSON client.

:class:`AsyncSearchClient` is the coordinator's transport: one
instance per worker URL, pooling persistent HTTP/1.1 connections over
``asyncio`` streams so hundreds of scatter requests stay in flight
without a TCP handshake per call — worker micro-batches fill at wire
speed.  It is stdlib-only on purpose (the repo bans new dependencies)
and implements exactly what the search service speaks: JSON bodies,
``Content-Length`` framing, keep-alive with ``Connection: close``
honoured.

Like the blocking :class:`~repro.service.client.SearchClient`, a
pooled socket can go stale between uses (worker idle timeout, restart,
drain); the first write/read on a stale socket fails before the worker
ever saw the request, so it is retried exactly once on a fresh
connection.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Hard cap on response bodies (mirrors the server's request cap).
MAX_RESPONSE_BYTES = 256 * 1024 * 1024


class AsyncClientError(RuntimeError):
    """Transport-level failure: the worker could not be reached."""


class AsyncHTTPError(AsyncClientError):
    """The worker answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Connection:
    """One pooled stream pair plus its reuse flag."""

    __slots__ = ("reader", "writer", "reused")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.reused = False


class AsyncSearchClient:
    """Pooled asyncio HTTP/1.1 client for one service base URL.

    ``max_connections`` bounds concurrent sockets; excess requests
    queue on an internal semaphore.  All methods must be called from
    one event loop (the coordinator runs everything on a single loop
    thread).
    """

    def __init__(
        self,
        base_url: str,
        max_connections: int = 64,
        timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"AsyncSearchClient speaks plain http, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self.timeout = timeout
        self._idle: Deque[_Connection] = deque()
        self._slots = asyncio.Semaphore(max_connections)
        self._closed = False

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------

    async def _acquire(self) -> _Connection:
        while self._idle:
            connection = self._idle.popleft()
            if connection.writer.is_closing():
                self._abandon(connection)
                continue
            return connection
        reader, writer = await asyncio.open_connection(self._host, self._port)
        return _Connection(reader, writer)

    def _release(self, connection: _Connection) -> None:
        if self._closed or connection.writer.is_closing():
            self._abandon(connection)
            return
        connection.reused = True
        self._idle.append(connection)

    @staticmethod
    def _abandon(connection: _Connection) -> None:
        try:
            connection.writer.close()
        except Exception:  # noqa: BLE001 - best-effort socket teardown
            pass

    async def close(self) -> None:
        """Close every idle pooled connection."""
        self._closed = True
        while self._idle:
            self._abandon(self._idle.popleft())

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------

    async def _roundtrip(
        self, connection: _Connection, request: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection.writer.write(request)
        await connection.writer.drain()
        status_line = await connection.reader.readline()
        if not status_line:
            raise ConnectionResetError("connection closed before status line")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionResetError(f"bad status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await connection.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionResetError("connection closed in headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length")
        if length is not None:
            size = int(length)
            if size > MAX_RESPONSE_BYTES:
                raise AsyncClientError(
                    f"response body of {size} bytes exceeds the "
                    f"{MAX_RESPONSE_BYTES} byte cap"
                )
            body = await connection.reader.readexactly(size)
        else:
            # No framing: the peer will close to delimit the body.
            body = await connection.reader.read(MAX_RESPONSE_BYTES)
            headers["connection"] = "close"
        return status, headers, body

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP round trip; returns ``(status, headers, body)``.

        Raises :class:`AsyncClientError` on transport failures and
        :class:`asyncio.TimeoutError` when ``timeout`` (default: the
        client's) elapses.
        """
        body = b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            "Accept: application/json",
        ]
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        request = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        deadline = self.timeout if timeout is None else timeout

        async def _attempt_once() -> Tuple[int, Dict[str, str], bytes]:
            for attempt in (0, 1):
                try:
                    connection = await self._acquire()
                except OSError as error:
                    # Connect failures are fresh by definition: no
                    # retry, the worker is simply unreachable.
                    raise AsyncClientError(
                        f"cannot reach {self.base_url}: {error}"
                    ) from None
                reused = connection.reused
                try:
                    status, response_headers, data = await self._roundtrip(
                        connection, request
                    )
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    OSError,
                ) as error:
                    self._abandon(connection)
                    # A stale pooled socket fails before the worker saw
                    # the request; one retry on a fresh connection.
                    if attempt == 0 and reused:
                        continue
                    raise AsyncClientError(
                        f"cannot reach {self.base_url}: {error}"
                    ) from None
                if response_headers.get("connection", "").lower() == "close":
                    self._abandon(connection)
                else:
                    self._release(connection)
                return status, response_headers, data
            raise AssertionError("unreachable")  # pragma: no cover

        await self._slots.acquire()
        try:
            return await asyncio.wait_for(_attempt_once(), deadline)
        finally:
            self._slots.release()

    async def request_json(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
        raise_for_status: bool = True,
    ) -> Tuple[int, dict]:
        """JSON round trip; returns ``(status, parsed_body)``.

        With ``raise_for_status`` (the default) any status >= 400
        raises :class:`AsyncHTTPError` carrying the server's ``error``
        detail; probes pass ``False`` to inspect 503 bodies (a
        draining worker) without exception control flow.
        """
        try:
            status, _, data = await self.request(
                method, path, payload, timeout=timeout, headers=headers
            )
        except asyncio.TimeoutError:
            raise AsyncClientError(
                f"{method} {path} to {self.base_url} timed out"
            ) from None
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {}
        if raise_for_status and status >= 400:
            detail = ""
            if isinstance(parsed, dict):
                detail = str(parsed.get("error", ""))
            raise AsyncHTTPError(
                status,
                f"{method} {path} failed with HTTP {status}"
                + (f": {detail}" if detail else ""),
            )
        return status, parsed if isinstance(parsed, dict) else {}
