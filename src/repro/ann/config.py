"""Configuration of the Hamming-LSH candidate prefilter.

One frozen dataclass holds every knob of the approximate stage so it
can ride inside :class:`~repro.oms.search.HDSearchConfig`, the service
configuration, and the index provenance with a single
``dataclasses.asdict`` serialisation.  See ``docs/ann-tuning.md`` for
measured guidance on picking values.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bump when the persisted hash-table layout changes incompatibly.
ANN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class AnnConfig:
    """Knobs of the multi-probe Hamming-LSH candidate prefilter.

    The prefilter shortlists library rows whose hypervectors are likely
    Hamming-close to the query; the shortlist is then re-ranked with the
    exact scoring backend, so the final PSM is bit-identical to brute
    force whenever the true best row survives the shortlist.

    Attributes:
        num_tables: Number of independent hash tables.  Each table is
            one chance to recover the true neighbour; miss probability
            decays exponentially with this count.
        bits_per_hash: Bits sampled per hash key (1-32).  More bits make
            buckets smaller (fewer candidates, faster re-rank) but raise
            the per-table miss probability.
        multiprobe_radius: Also probe every bucket whose key is within
            this Hamming distance of the query's key (0 = exact bucket
            only).  Radius 1 multiplies probes per table by
            ``1 + bits_per_hash`` and sharply improves recall without
            more tables.
        candidate_budget: Hard cap on the shortlist per query.  Rows are
            kept by descending table-vote count (ties to the lowest row
            index), so the cap drops the least-corroborated candidates
            first.
        ann_threshold: Precursor windows smaller than this many rows
            bypass the prefilter and are scored exactly — below it the
            brute-force matmul is already cheaper than hashing.
        seed: Seed for the sampled bit positions; two indexes built with
            the same seed and dimension sample identical positions.

    Raises:
        ValueError: On out-of-range values in ``__post_init__``.
    """

    num_tables: int = 8
    bits_per_hash: int = 16
    multiprobe_radius: int = 1
    candidate_budget: int = 256
    ann_threshold: int = 1024
    seed: int = 77

    def __post_init__(self) -> None:
        """Validate every knob, raising ``ValueError`` on bad values."""
        if self.num_tables < 1:
            raise ValueError(f"num_tables must be >= 1, got {self.num_tables}")
        if not 1 <= self.bits_per_hash <= 32:
            raise ValueError(
                f"bits_per_hash must be in [1, 32], got {self.bits_per_hash}"
            )
        if not 0 <= self.multiprobe_radius <= 2:
            raise ValueError(
                "multiprobe_radius must be 0, 1 or 2 "
                f"(probe counts explode beyond), got {self.multiprobe_radius}"
            )
        if self.multiprobe_radius > self.bits_per_hash:
            raise ValueError(
                f"multiprobe_radius {self.multiprobe_radius} exceeds "
                f"bits_per_hash {self.bits_per_hash}"
            )
        if self.candidate_budget < 1:
            raise ValueError(
                f"candidate_budget must be >= 1, got {self.candidate_budget}"
            )
        if self.ann_threshold < 0:
            raise ValueError(
                f"ann_threshold must be >= 0, got {self.ann_threshold}"
            )
