"""Sublinear Hamming-LSH candidate prefilter with exact re-rank.

The package provides the approximate stage of the cascade described in
``docs/architecture.md``: :class:`HammingLSHIndex` shortlists library
rows likely Hamming-close to a query hypervector,
:class:`CandidatePrefilter` intersects the shortlist with the precursor
window in exact-search order, and the searchers re-rank the survivors
with the usual exact backends.  ``docs/ann-tuning.md`` covers the
knobs.
"""

from .config import ANN_FORMAT_VERSION, AnnConfig
from .lsh import HammingLSHIndex
from .prefilter import OUTCOMES, AnnStats, CandidatePrefilter, PrefilterSelection

__all__ = [
    "ANN_FORMAT_VERSION",
    "OUTCOMES",
    "AnnConfig",
    "AnnStats",
    "CandidatePrefilter",
    "HammingLSHIndex",
    "PrefilterSelection",
]
