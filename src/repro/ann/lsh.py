"""Bit-sampled multi-probe Hamming LSH over packed hypervectors.

The library's hypervectors are random-looking bipolar vectors whose
Hamming distance is the search metric, which makes the oldest LSH
family — bit sampling — a perfect, dependency-free fit: a hash key is
just ``bits_per_hash`` sampled bit positions of the vector, and two
vectors collide on a table with probability ``(1 - d/D) ** bits_per_hash``
for Hamming distance ``d`` over dimension ``D``.  True matches
(``d/D ~ 0.05-0.2`` after encoding noise) collide in at least one of a
handful of tables with near certainty, while the unrelated bulk
(``d/D ~ 0.5``) almost never does.

Multi-probing (probing every bucket whose key differs from the query's
in at most ``multiprobe_radius`` bits) buys the recall of many more
tables without their memory: radius 1 turns 8 tables into an effective
``8 * (1 + bits_per_hash)`` bucket probes.

Buckets are stored sorted-key-style — per table, one array of keys
sorted ascending plus the matching row permutation — so a probe is two
``searchsorted`` calls and a slice, the whole structure is four dense
arrays (mmap- and ``.npz``-friendly), and build cost is one stable sort
per table.
"""

from __future__ import annotations

import dataclasses
from itertools import combinations
from typing import Dict, List, Optional

import numpy as np

from .config import ANN_FORMAT_VERSION, AnnConfig

#: Rows hashed per chunk during the build (bounds the transient
#: unpacked-bits matrix to ``chunk * dim`` bytes).
BUILD_CHUNK_ROWS = 16384


def _probe_masks(bits_per_hash: int, radius: int) -> np.ndarray:
    """All XOR masks within Hamming distance ``radius`` of a key.

    Args:
        bits_per_hash: Key width in bits.
        radius: Maximum number of flipped bits (0-2).

    Returns:
        A uint64 array starting with ``0`` (the exact bucket), then all
        single-bit masks, then all two-bit masks, in deterministic order.
    """
    masks: List[int] = [0]
    for flips in range(1, radius + 1):
        for positions in combinations(range(bits_per_hash), flips):
            mask = 0
            for position in positions:
                mask |= 1 << position
            masks.append(mask)
    return np.asarray(masks, dtype=np.uint64)


class HammingLSHIndex:
    """Multi-probe bit-sampling LSH over a packed hypervector matrix.

    Construct via :meth:`build` (from a ``pack_bipolar`` matrix) or
    :meth:`from_arrays` (reloading persisted tables).  The structure is
    immutable after construction; :meth:`query` is read-only and safe to
    share across threads.

    Attributes:
        config: The :class:`~repro.ann.config.AnnConfig` built with.
        dim: Hypervector dimensionality the bit positions index into.
        num_rows: Number of hashed library rows.
        bit_positions: ``(num_tables, bits_per_hash)`` sampled positions.
    """

    def __init__(
        self,
        config: AnnConfig,
        dim: int,
        bit_positions: np.ndarray,
        sorted_keys: np.ndarray,
        row_order: np.ndarray,
    ) -> None:
        """Adopt ready-made tables (use :meth:`build` to create them).

        Args:
            config: Prefilter configuration the tables were built with.
            dim: Hypervector dimensionality.
            bit_positions: ``(num_tables, bits_per_hash)`` int64 sampled
                bit positions, each in ``[0, dim)``.
            sorted_keys: ``(num_tables, num_rows)`` uint64 hash keys,
                ascending per table.
            row_order: ``(num_tables, num_rows)`` int64 row permutation
                aligned with ``sorted_keys``.

        Raises:
            ValueError: If the array shapes disagree with ``config``.
        """
        bit_positions = np.asarray(bit_positions, dtype=np.int64)
        sorted_keys = np.asarray(sorted_keys, dtype=np.uint64)
        row_order = np.asarray(row_order, dtype=np.int64)
        expected = (config.num_tables, config.bits_per_hash)
        if bit_positions.shape != expected:
            raise ValueError(
                f"bit_positions shape {bit_positions.shape} disagrees with "
                f"config {expected}"
            )
        if sorted_keys.ndim != 2 or sorted_keys.shape[0] != config.num_tables:
            raise ValueError(
                f"sorted_keys shape {sorted_keys.shape} disagrees with "
                f"{config.num_tables} tables"
            )
        if row_order.shape != sorted_keys.shape:
            raise ValueError(
                f"row_order shape {row_order.shape} disagrees with "
                f"sorted_keys shape {sorted_keys.shape}"
            )
        if bit_positions.size and int(bit_positions.max()) >= dim:
            raise ValueError(
                f"bit position {int(bit_positions.max())} out of range for "
                f"dim {dim}"
            )
        self.config = config
        self.dim = int(dim)
        self.bit_positions = bit_positions
        self._sorted_keys = sorted_keys
        self._row_order = row_order
        self._weights = (
            np.uint64(1) << np.arange(config.bits_per_hash, dtype=np.uint64)
        )
        self._masks = _probe_masks(
            config.bits_per_hash, config.multiprobe_radius
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        packed: np.ndarray,
        dim: int,
        config: Optional[AnnConfig] = None,
        chunk_rows: int = BUILD_CHUNK_ROWS,
    ) -> "HammingLSHIndex":
        """Hash a ``pack_bipolar`` matrix into sorted bucket tables.

        Args:
            packed: ``(num_rows, ceil(dim / 8))`` uint8 packed bit
                matrix in :func:`~repro.hdc.packing.pack_bipolar`
                layout.
            dim: Unpacked hypervector dimensionality.
            config: Prefilter knobs; defaults to :class:`AnnConfig`\\ ().
            chunk_rows: Rows unpacked and hashed per pass (memory bound).

        Returns:
            A ready-to-query index over all rows of ``packed``.

        Raises:
            ValueError: If ``dim`` is smaller than ``bits_per_hash`` or
                the packed matrix does not match ``dim``.
        """
        config = config or AnnConfig()
        packed = np.asarray(packed)
        if packed.ndim != 2 or packed.shape[1] != -(-dim // 8):
            raise ValueError(
                f"packed matrix shape {packed.shape} does not match dim {dim}"
            )
        if dim < config.bits_per_hash:
            raise ValueError(
                f"dim {dim} is smaller than bits_per_hash "
                f"{config.bits_per_hash}"
            )
        rng = np.random.default_rng(config.seed)
        bit_positions = np.stack(
            [
                rng.choice(dim, size=config.bits_per_hash, replace=False)
                for _ in range(config.num_tables)
            ]
        ).astype(np.int64)
        flat_positions = bit_positions.reshape(-1)

        num_rows = packed.shape[0]
        weights = np.uint64(1) << np.arange(
            config.bits_per_hash, dtype=np.uint64
        )
        keys = np.empty((config.num_tables, num_rows), dtype=np.uint64)
        for start in range(0, num_rows, max(1, chunk_rows)):
            chunk = packed[start : start + chunk_rows]
            bits = np.unpackbits(chunk, axis=-1)[:, flat_positions]
            grouped = bits.reshape(
                len(chunk), config.num_tables, config.bits_per_hash
            )
            keys[:, start : start + chunk_rows] = (
                grouped.astype(np.uint64) @ weights
            ).T

        row_order = np.argsort(keys, axis=1, kind="stable").astype(np.int64)
        sorted_keys = np.take_along_axis(keys, row_order.astype(np.intp), axis=1)
        return cls(config, dim, bit_positions, sorted_keys, row_order)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of library rows hashed into the tables."""
        return self._sorted_keys.shape[1]

    def keys_for(self, query_hv: np.ndarray) -> np.ndarray:
        """Per-table hash keys of one bipolar query hypervector.

        Args:
            query_hv: ``(dim,)`` bipolar {-1, +1} vector (any int dtype).

        Returns:
            ``(num_tables,)`` uint64 keys.
        """
        bits = (np.asarray(query_hv)[self.bit_positions] > 0).astype(np.uint64)
        return bits @ self._weights

    def query(self, query_hv: np.ndarray) -> np.ndarray:
        """Shortlist candidate rows for one query hypervector.

        Probes every bucket within ``multiprobe_radius`` key bits across
        all tables, unions the hits, and keeps at most
        ``candidate_budget`` rows ranked by how many probes voted for
        them (ties broken toward the lowest row index, so the result is
        deterministic).

        Args:
            query_hv: ``(dim,)`` bipolar {-1, +1} query hypervector.

        Returns:
            int64 row indices, highest vote count first; possibly empty.
        """
        keys = self.keys_for(query_hv)
        hits: List[np.ndarray] = []
        for table in range(self.config.num_tables):
            sorted_keys = self._sorted_keys[table]
            probes = keys[table] ^ self._masks
            lows = np.searchsorted(sorted_keys, probes, side="left")
            highs = np.searchsorted(sorted_keys, probes, side="right")
            order = self._row_order[table]
            for low, high in zip(lows, highs):
                if high > low:
                    hits.append(order[low:high])
        if not hits:
            return np.empty(0, dtype=np.int64)
        candidates, votes = np.unique(np.concatenate(hits), return_counts=True)
        if len(candidates) > self.config.candidate_budget:
            keep = np.lexsort((candidates, -votes))[
                : self.config.candidate_budget
            ]
            return candidates[keep]
        return candidates

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def provenance(self) -> dict:
        """Identity of these tables, persisted alongside the arrays."""
        return {
            "format_version": ANN_FORMAT_VERSION,
            "config": dataclasses.asdict(self.config),
            "dim": self.dim,
            "num_rows": self.num_rows,
        }

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The dense arrays an ``.npz`` archive needs to rebuild this."""
        return {
            "ann_bit_positions": self.bit_positions,
            "ann_sorted_keys": self._sorted_keys,
            "ann_row_order": self._row_order,
        }

    @classmethod
    def from_arrays(
        cls, provenance: dict, arrays: Dict[str, np.ndarray]
    ) -> "HammingLSHIndex":
        """Rebuild an index from :meth:`provenance` + :meth:`to_arrays`.

        Args:
            provenance: The persisted :meth:`provenance` dict.
            arrays: Mapping holding the three ``ann_*`` arrays.

        Returns:
            The reconstructed, ready-to-query index.

        Raises:
            ValueError: On version or shape mismatches (callers in the
                index layer re-wrap this as ``IndexCompatibilityError``).
        """
        version = int(provenance.get("format_version", -1))
        if version != ANN_FORMAT_VERSION:
            raise ValueError(
                f"ANN table format version {version} unsupported "
                f"(expected {ANN_FORMAT_VERSION})"
            )
        config = AnnConfig(**provenance["config"])
        index = cls(
            config,
            int(provenance["dim"]),
            arrays["ann_bit_positions"],
            arrays["ann_sorted_keys"],
            arrays["ann_row_order"],
        )
        if index.num_rows != int(provenance["num_rows"]):
            raise ValueError(
                f"ANN tables hold {index.num_rows} rows but provenance "
                f"says {int(provenance['num_rows'])}"
            )
        return index

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the tables."""
        return int(
            self.bit_positions.nbytes
            + self._sorted_keys.nbytes
            + self._row_order.nbytes
        )
