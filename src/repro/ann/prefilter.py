"""Precursor-window-aware candidate selection on top of the LSH index.

:class:`CandidatePrefilter` is the piece the searchers talk to.  It
combines the :class:`~repro.ann.lsh.HammingLSHIndex` shortlist with the
same per-charge mass ordering the exact searchers use, and returns the
shortlist **in that exact ordering** — so downstream ``argmax`` breaks
score ties identically to brute force (lowest precursor mass, then
lowest library position), and the final PSM is bit-identical whenever
the true winner survives the shortlist.

Each query resolves to one of three outcomes:

``bypass``
    The precursor window holds fewer than ``ann_threshold`` rows —
    exact scoring is already cheap, so the full window is returned.
``prefiltered``
    The LSH shortlist intersected the window; only those rows are
    scored exactly.
``fallback``
    The shortlist missed the window entirely; the full window is
    returned so the prefilter can never *lose* a match outright.

:class:`AnnStats` accumulates these outcomes (thread-safe) so services
and benchmarks can report recall pressure and candidate ratios.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .lsh import HammingLSHIndex

#: The three possible ways one query moves through the prefilter.
OUTCOMES = ("bypass", "prefiltered", "fallback")


@dataclass(frozen=True)
class PrefilterSelection:
    """What the prefilter decided for one query.

    Attributes:
        positions: Global library row indices to score, ordered by
            (precursor mass, library position) exactly like the
            brute-force candidate window.
        ranks: The same rows as local ranks into the per-charge
            mass-sorted bucket (what batched searchers index their
            bucket matrices with).
        window_count: Rows the full precursor window holds; this is the
            number ``min_candidates`` gates compare against, regardless
            of how small the shortlist is.
        outcome: ``"bypass"``, ``"prefiltered"``, or ``"fallback"``.
    """

    positions: np.ndarray
    ranks: np.ndarray
    window_count: int
    outcome: str


class AnnStats:
    """Thread-safe counters over prefilter outcomes.

    Tracks how many queries took each outcome plus the total rows the
    full windows held (``window_rows``) versus the rows actually scored
    (``scored_rows``) — their ratio is the measured work saving.
    """

    def __init__(self) -> None:
        """Start all counters at zero."""
        self._lock = threading.Lock()
        self._outcomes = {outcome: 0 for outcome in OUTCOMES}
        self._window_rows = 0
        self._scored_rows = 0

    def record(self, outcome: str, window_rows: int, scored_rows: int) -> None:
        """Account one query.

        Args:
            outcome: One of :data:`OUTCOMES`.
            window_rows: Rows the full precursor window held.
            scored_rows: Rows handed to the exact scorer.

        Raises:
            KeyError: If ``outcome`` is not a known outcome.
        """
        with self._lock:
            if outcome not in self._outcomes:
                raise KeyError(f"unknown prefilter outcome {outcome!r}")
            self._outcomes[outcome] += 1
            self._window_rows += int(window_rows)
            self._scored_rows += int(scored_rows)

    def record_batch(
        self, outcomes: np.ndarray, window_rows: int, scored_rows: int
    ) -> None:
        """Merge pre-aggregated counts (e.g. returned by shard workers).

        Args:
            outcomes: Length-3 integer array of counts in
                :data:`OUTCOMES` order.
            window_rows: Summed window sizes across the batch.
            scored_rows: Summed scored rows across the batch.
        """
        with self._lock:
            for index, outcome in enumerate(OUTCOMES):
                self._outcomes[outcome] += int(outcomes[index])
            self._window_rows += int(window_rows)
            self._scored_rows += int(scored_rows)

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of all counters."""
        with self._lock:
            return {
                "bypassed": self._outcomes["bypass"],
                "prefiltered": self._outcomes["prefiltered"],
                "fallbacks": self._outcomes["fallback"],
                "window_rows": self._window_rows,
                "scored_rows": self._scored_rows,
            }


class _ChargeBucket:
    """Mass-sorted view of one charge's library rows (internal)."""

    __slots__ = ("sorted_masses", "sorted_positions", "rank_of_global")

    def __init__(self, positions: np.ndarray, masses: np.ndarray, num_rows: int):
        order = np.argsort(masses, kind="stable")
        self.sorted_masses = masses[order]
        self.sorted_positions = positions[order]
        # Global row index -> local rank in this bucket (-1 elsewhere),
        # so "is row r in the window?" is a range check on one gather.
        self.rank_of_global = np.full(num_rows, -1, dtype=np.int64)
        self.rank_of_global[self.sorted_positions] = np.arange(
            len(order), dtype=np.int64
        )


class CandidatePrefilter:
    """Window-aware LSH candidate selection with exact-order output.

    Built once per searcher from the library's masses/charges plus a
    ready :class:`HammingLSHIndex`; :meth:`select` is read-only and
    thread-safe.
    """

    def __init__(
        self,
        lsh: HammingLSHIndex,
        masses: np.ndarray,
        charges: np.ndarray,
        charge_aware: bool = True,
    ) -> None:
        """Organise library rows into per-charge mass-sorted buckets.

        Args:
            lsh: Hash tables over the same rows ``masses`` describes.
            masses: ``(num_rows,)`` neutral masses, original row order.
            charges: ``(num_rows,)`` precursor charges, original order.
            charge_aware: When True (the searchers' default), queries
                only match rows of their own charge; when False all
                rows share one bucket.

        Raises:
            ValueError: If array lengths disagree with ``lsh.num_rows``.
        """
        masses = np.asarray(masses, dtype=np.float64)
        charges = np.asarray(charges, dtype=np.int64)
        if len(masses) != lsh.num_rows or len(charges) != lsh.num_rows:
            raise ValueError(
                f"metadata rows ({len(masses)} masses, {len(charges)} "
                f"charges) disagree with LSH rows ({lsh.num_rows})"
            )
        self.lsh = lsh
        self.config = lsh.config
        self.charge_aware = bool(charge_aware)
        self._buckets: Dict[int, _ChargeBucket] = {}
        num_rows = lsh.num_rows
        if self.charge_aware:
            for charge in np.unique(charges):
                mask = charges == charge
                positions = np.nonzero(mask)[0].astype(np.int64)
                self._buckets[int(charge)] = _ChargeBucket(
                    positions, masses[mask], num_rows
                )
        else:
            positions = np.arange(num_rows, dtype=np.int64)
            self._buckets[0] = _ChargeBucket(positions, masses, num_rows)

    def _bucket_for(self, charge: int) -> Optional[_ChargeBucket]:
        if not self.charge_aware:
            return self._buckets[0]
        return self._buckets.get(int(charge))

    def select(
        self,
        query_hv: np.ndarray,
        neutral_mass: float,
        charge: int,
        half_width: float,
    ) -> PrefilterSelection:
        """Choose the rows to score exactly for one query.

        Args:
            query_hv: ``(dim,)`` bipolar query hypervector.
            neutral_mass: Query neutral (uncharged) mass in Da.
            charge: Query precursor charge.
            half_width: Half-width of the precursor window in Da
                (``standard_tolerance_da`` or ``open_window_da``).

        Returns:
            A :class:`PrefilterSelection`; ``positions`` is empty with
            ``window_count == 0`` when no library row shares the charge
            or falls in the window.
        """
        empty = np.empty(0, dtype=np.int64)
        bucket = self._bucket_for(charge)
        if bucket is None:
            return PrefilterSelection(empty, empty, 0, "bypass")
        low = int(
            np.searchsorted(bucket.sorted_masses, neutral_mass - half_width, "left")
        )
        high = int(
            np.searchsorted(bucket.sorted_masses, neutral_mass + half_width, "right")
        )
        window_count = high - low
        if window_count == 0:
            return PrefilterSelection(empty, empty, 0, "bypass")
        window_ranks = np.arange(low, high, dtype=np.int64)
        if window_count < self.config.ann_threshold:
            return PrefilterSelection(
                bucket.sorted_positions[low:high],
                window_ranks,
                window_count,
                "bypass",
            )
        candidates = self.lsh.query(query_hv)
        if candidates.size:
            ranks = bucket.rank_of_global[candidates]
            ranks = ranks[(ranks >= low) & (ranks < high)]
        else:
            ranks = empty
        if ranks.size == 0:
            return PrefilterSelection(
                bucket.sorted_positions[low:high],
                window_ranks,
                window_count,
                "fallback",
            )
        # Ascending rank == ascending (mass, library position): scoring
        # in this order reproduces brute force's argmax tie-breaking.
        ranks = np.sort(ranks)
        return PrefilterSelection(
            bucket.sorted_positions[ranks], ranks, window_count, "prefiltered"
        )
