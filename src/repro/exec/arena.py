"""Shared-memory arena for zero-copy shard scoring.

A :class:`SharedShardArena` places a set of named NumPy arrays (the
packed hypervector matrix, precursor masses/charges, optional per-shard
ANN tables) in **one** ``multiprocessing.shared_memory`` segment.  The
creating process copies each array in exactly once; worker processes
reattach by name via the picklable :class:`ArenaSpec` and build views,
worker threads simply share the owner's views — nobody pays a second
copy of the index.

Lifecycle rules (the part that usually leaks):

* Only the **owner** (the process that called :meth:`create`) ever
  unlinks the segment.  Attachers deregister themselves from the
  ``resource_tracker`` on attach, so a worker exiting — or being
  terminated — can neither unlink the segment under the owner nor
  trigger a "leaked shared_memory objects" warning.
* :meth:`close` is idempotent and unlink-safe even while views are
  still alive (the mapping then dies with the process; the *name* is
  removed immediately).
* Owners are tracked in a process-wide registry cleaned up by
  ``atexit`` and — when no other handler owns the signal — ``SIGTERM``,
  so a killed CLI run leaves nothing behind in ``/dev/shm``.  A forked
  child inheriting the registry can never unlink the parent's segments:
  unlink is guarded by the creating PID.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

#: Segment offsets are rounded up to this many bytes so every array
#: view starts cache-line aligned (keeps the scoring slabs friendly to
#: vectorized XOR/popcount and BLAS kernels).
ARENA_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + ARENA_ALIGN - 1) // ARENA_ALIGN * ARENA_ALIGN


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable identity + layout of one arena segment.

    ``layout`` maps each array key to ``(offset, dtype string, shape)``;
    together with ``name`` it is everything a worker process needs to
    reattach and rebuild the exact views the owner holds.
    """

    name: str
    size: int
    layout: Tuple[Tuple[str, int, str, Tuple[int, ...]], ...]


#: Live owner arenas in this process, cleaned up at exit / on SIGTERM.
_LIVE_OWNERS: "weakref.WeakSet[SharedShardArena]" = weakref.WeakSet()
_SIGTERM_HOOKED = False


def _cleanup_live_arenas() -> None:
    """Unlink every owner arena still alive in this process."""
    for arena in list(_LIVE_OWNERS):
        try:
            arena.close()
        except Exception:  # pragma: no cover - best-effort shutdown path
            pass


atexit.register(_cleanup_live_arenas)


def _hook_sigterm() -> None:
    """Chain arena cleanup into SIGTERM when nobody else handles it.

    Installed once, from the main thread only, and only while the
    current disposition is the default (a server that already owns
    SIGTERM — ``repro serve`` — closes its searchers on its own
    shutdown path, which unlinks the arenas without our help).  The
    handler re-raises the default SIGTERM after cleanup so the exit
    status still reports death-by-signal.
    """
    global _SIGTERM_HOOKED
    if _SIGTERM_HOOKED:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is not signal.SIG_DFL:
            _SIGTERM_HOOKED = True
            return

        def _handler(signum, frame):  # pragma: no cover - exercised via subprocess
            _cleanup_live_arenas()
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _handler)
        _SIGTERM_HOOKED = True
    except (ValueError, OSError):  # pragma: no cover - non-main interpreter
        pass


class SharedShardArena:
    """One shared-memory segment holding the arrays shard scorers read.

    Construct with :meth:`create` (owner side) or :meth:`attach`
    (worker side); both sides read arrays through :meth:`array`.  The
    class is also a context manager: leaving the ``with`` block closes
    (and, for owners, unlinks) the segment.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: ArenaSpec,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._owner_pid = os.getpid() if owner else -1
        self._views: Dict[str, np.ndarray] = {}
        self._closed = False
        if owner:
            _LIVE_OWNERS.add(self)
            _hook_sigterm()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedShardArena":
        """Copy ``arrays`` into a fresh segment and become its owner.

        Args:
            arrays: Named source arrays; each is copied once into the
                segment (sources may be memory-mapped or non-contiguous).

        Returns:
            The owning arena; :meth:`spec` describes it to attachers.

        Raises:
            ValueError: If ``arrays`` is empty.
        """
        if not arrays:
            raise ValueError("an arena needs at least one array")
        layout = []
        offset = 0
        sources = {}
        for key, value in arrays.items():
            source = np.asarray(value)
            offset = _aligned(offset)
            layout.append((key, offset, source.dtype.str, tuple(source.shape)))
            offset += source.nbytes
            sources[key] = source
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        spec = ArenaSpec(name=shm.name, size=max(1, offset), layout=tuple(layout))
        arena = cls(shm, spec, owner=True)
        for key, off, dtype, shape in layout:
            np.copyto(arena._view(key, off, dtype, shape), sources[key])
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedShardArena":
        """Attach to an existing segment by name (worker side).

        The attachment is never registered with the
        ``resource_tracker`` so only the owner's exit can unlink the
        segment — attaching workers dying (even violently) never
        produce leaked-segment warnings or pull the segment out from
        under their siblings.  (Registration must be *suppressed*, not
        undone: forked workers share the parent's tracker process, so a
        worker-side ``unregister`` would strip the owner's own entry.)
        """
        try:
            # Python >= 3.13 supports opting out of tracking directly.
            shm = shared_memory.SharedMemory(name=spec.name, track=False)
        except TypeError:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
            finally:
                resource_tracker.register = original
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def _view(
        self, key: str, offset: int, dtype: str, shape: Tuple[int, ...]
    ) -> np.ndarray:
        view = self._views.get(key)
        if view is None:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
            self._views[key] = view
        return view

    def array(self, key: str) -> np.ndarray:
        """A zero-copy view of the named array inside the segment."""
        if self._closed:
            raise RuntimeError("arena is closed")
        for name, offset, dtype, shape in self._spec.layout:
            if name == key:
                return self._view(name, offset, dtype, shape)
        raise KeyError(key)

    def keys(self) -> Tuple[str, ...]:
        """The array names stored in this arena."""
        return tuple(name for name, _, _, _ in self._spec.layout)

    def spec(self) -> ArenaSpec:
        """The picklable reattachment spec for worker processes."""
        return self._spec

    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self._spec.name

    @property
    def nbytes(self) -> int:
        """Payload bytes held by the segment."""
        return self._spec.size

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran."""
        return self._closed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach; the owner also unlinks the segment name (idempotent).

        Safe to call while scorer views are still alive: the mapping
        then stays valid until the last view dies with the process, but
        the name is gone immediately, so nothing can leak past process
        exit.  A forked child sharing the owner object can never unlink
        the parent's segment (PID-guarded).
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # live views — unmapped at process exit instead
            pass
        if self._owner and os.getpid() == self._owner_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_OWNERS.discard(self)

    def __enter__(self) -> "SharedShardArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
