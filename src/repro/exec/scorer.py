"""Per-shard scoring shared by every execution mode.

:class:`ShardScorer` is the unit of work each executor runs: one
shard's prepared similarity backend plus its per-charge mass index,
built from a *payload* dict (see :func:`shard_payload`).  Serial,
thread, and process execution all construct the identical scorer from
identical inputs, which is what keeps the three modes bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..ann import OUTCOMES, CandidatePrefilter, HammingLSHIndex
from ..hdc.packing import unpack_bipolar
from ..oms.search import DenseBackend, PackedBackend

#: Named backend factories usable across process boundaries.
BACKEND_FACTORIES: Dict[str, Callable] = {
    "dense": DenseBackend,
    "packed": PackedBackend,
}

#: The ANN table arrays persisted per shard (``HammingLSHIndex.to_arrays``).
ANN_ARRAY_KEYS = ("ann_bit_positions", "ann_sorted_keys", "ann_row_order")


def resolve_backend(backend: Union[str, Callable]) -> Callable:
    """Map a backend name (or pass through a factory) to its factory.

    Raises:
        ValueError: For names outside :data:`BACKEND_FACTORIES`.
    """
    if callable(backend):
        return backend
    try:
        return BACKEND_FACTORIES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKEND_FACTORIES)} or a factory callable"
        ) from None


def shard_payload(
    shard_id: int,
    bounds: Tuple[int, int],
    packed: np.ndarray,
    masses: np.ndarray,
    charges: np.ndarray,
    *,
    dim: int,
    backend: Union[str, Callable],
    charge_aware: bool,
    ann=None,
    ann_tables: Optional[HammingLSHIndex] = None,
    score_block_rows: Optional[int] = None,
) -> Dict:
    """Build one shard's scorer payload from whole-library arrays.

    ``packed`` / ``masses`` / ``charges`` are the *full* library arrays
    (typically zero-copy views into a
    :class:`~repro.exec.arena.SharedShardArena`); the shard's
    ``bounds = (start, stop)`` row range is sliced out as views, never
    copied — shards are contiguous row ranges by construction.
    """
    start, stop = bounds
    return {
        "shard_id": shard_id,
        "positions": np.arange(start, stop, dtype=np.int64),
        "packed": packed[start:stop],
        "dim": dim,
        "masses": masses[start:stop],
        "charges": charges[start:stop],
        "backend": backend,
        "charge_aware": charge_aware,
        "ann": ann,
        "ann_tables": ann_tables,
        "score_block_rows": score_block_rows,
    }


class ShardScorer:
    """One shard's prepared backend plus its per-charge mass index."""

    def __init__(self, payload: Dict) -> None:
        dim = int(payload["dim"])
        packed = np.asarray(payload["packed"])
        self.backend = resolve_backend(payload["backend"])()
        block_rows = payload.get("score_block_rows")
        if block_rows is not None and hasattr(self.backend, "set_block_rows"):
            self.backend.set_block_rows(block_rows)
        if hasattr(self.backend, "prepare_packed"):
            # The payload already uses pack_bipolar layout — skip the
            # unpack/re-pack round trip (8x transient memory otherwise).
            self.backend.prepare_packed(packed, dim)
        else:
            self.backend.prepare(unpack_bipolar(packed, dim))
        self.global_positions = np.asarray(payload["positions"])
        masses = np.asarray(payload["masses"], dtype=np.float64)
        charges = np.asarray(payload["charges"], dtype=np.int64)
        self.charge_aware = bool(payload["charge_aware"])
        # Mirrors CandidateIndex: stable mass sort per charge bucket, so
        # equal-mass ties stay ordered by (global) library position.
        self._buckets: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if self.charge_aware:
            for charge in np.unique(charges):
                local = np.flatnonzero(charges == charge)
                order = np.argsort(masses[local], kind="stable")
                local = local[order]
                self._buckets[int(charge)] = (masses[local], local)
        else:
            order = np.argsort(masses, kind="stable")
            self._buckets[0] = (masses[order], np.arange(len(masses))[order])
        # Optional ANN prefilter: each shard hashes its *own* rows, so
        # the shortlist union across shards is at least as inclusive as
        # one global prefilter (every shard gets its full candidate
        # budget).  Pre-built tables (from the arena) are adopted as-is;
        # building here from the same rows + config yields identical
        # tables, so both paths stay bit-identical.
        self._local_masses = masses
        self.prefilter: Optional[CandidatePrefilter] = None
        ann = payload.get("ann")
        tables = payload.get("ann_tables")
        if tables is not None:
            self.prefilter = CandidatePrefilter(
                tables, masses, charges, charge_aware=self.charge_aware
            )
        elif ann is not None:
            lsh = HammingLSHIndex.build(packed, dim, ann)
            self.prefilter = CandidatePrefilter(
                lsh, masses, charges, charge_aware=self.charge_aware
            )

    def score_batch(
        self,
        query_hvs: np.ndarray,
        query_masses: np.ndarray,
        query_charges: np.ndarray,
        half_width: float,
    ) -> Tuple[np.ndarray, ...]:
        """Best candidate per query within this shard.

        Returns ``(counts, best_scores, best_masses, best_positions,
        ann_outcomes, ann_scored_rows)`` where empty windows yield
        ``(0, -inf, +inf, -1)`` so they lose every merge comparison.
        ``counts`` holds full precursor-window sizes (even under ANN) so
        ``min_candidates`` gating in the parent is unchanged;
        ``ann_outcomes`` is a length-3 count vector in
        :data:`repro.ann.OUTCOMES` order and ``ann_scored_rows`` the
        rows actually scored (both all-zero without a prefilter).
        """
        num_queries = len(query_masses)
        counts = np.zeros(num_queries, dtype=np.int64)
        best_scores = np.full(num_queries, -np.inf, dtype=np.float64)
        best_masses = np.full(num_queries, np.inf, dtype=np.float64)
        best_positions = np.full(num_queries, -1, dtype=np.int64)
        ann_outcomes = np.zeros(len(OUTCOMES), dtype=np.int64)
        ann_scored = np.zeros(1, dtype=np.int64)
        for row in range(num_queries):
            if self.prefilter is not None:
                selection = self.prefilter.select(
                    query_hvs[row],
                    float(query_masses[row]),
                    int(query_charges[row]),
                    half_width,
                )
                ann_outcomes[OUTCOMES.index(selection.outcome)] += 1
                ann_scored[0] += len(selection.positions)
                if selection.window_count == 0:
                    continue
                window = selection.positions
                scores = self.backend.scores(query_hvs[row], window)
                best = int(np.argmax(scores))
                counts[row] = selection.window_count
                best_scores[row] = float(scores[best])
                best_masses[row] = float(self._local_masses[window[best]])
                best_positions[row] = int(self.global_positions[window[best]])
                continue
            key = int(query_charges[row]) if self.charge_aware else 0
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            sorted_masses, local_positions = bucket
            low = np.searchsorted(
                sorted_masses, query_masses[row] - half_width, "left"
            )
            high = np.searchsorted(
                sorted_masses, query_masses[row] + half_width, "right"
            )
            if high <= low:
                continue
            window = local_positions[low:high]
            scores = self.backend.scores(query_hvs[row], window)
            best = int(np.argmax(scores))
            counts[row] = high - low
            best_scores[row] = float(scores[best])
            best_masses[row] = float(sorted_masses[low + best])
            best_positions[row] = int(self.global_positions[window[best]])
        return (
            counts,
            best_scores,
            best_masses,
            best_positions,
            ann_outcomes,
            ann_scored,
        )
