"""Process- and thread-pool shard executors over a shared arena.

Both executors consume the same task tuples
``(shard_id, query_hvs, query_masses, query_charges, half_width)`` and
return the same result tuples
``(shard_id, wall_seconds, *score_batch_results)``, so the merging
parent (:class:`~repro.index.sharded.ShardedSearcher`) is oblivious to
the mode:

* :class:`ProcessShardExecutor` — a ``multiprocessing`` pool whose
  workers reattach the arena **by name** in their initializer; only the
  query batch and the per-shard winners cross the pipe, never index
  rows.  Works under fork and spawn start methods (the setup dict is
  picklable).
* :class:`ThreadShardExecutor` — a thread pool scoring shards
  concurrently in-process.  The scoring kernels (BLAS matmul,
  large-array ``bitwise_xor`` / ``bitwise_count`` ufuncs) release the
  GIL on contiguous slabs, so shards genuinely overlap, and queries
  are handed over by reference — zero IPC.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..ann import HammingLSHIndex
from .arena import SharedShardArena
from .scorer import ANN_ARRAY_KEYS, ShardScorer, shard_payload

#: How long pool startup may take before the first scoring call gives
#: up, terminates the half-started pool, and raises.  A failing pool
#: initializer would otherwise respawn workers forever while ``map``
#: hangs — the timeout converts that into a clean startup error (and
#: lets the owner unlink the arena instead of leaking it).
POOL_START_TIMEOUT = 30.0

#: Per-process worker state, populated by the pool initializer.
_WORKER_STATE: Dict[str, object] = {}


def arena_shard_payload(arena: SharedShardArena, setup: Dict, shard_id: int) -> Dict:
    """One shard's scorer payload built from arena views.

    Used identically by the parent (thread mode) and by pool workers
    (process mode) — both read the very same segments, so the scorers
    they build are indistinguishable.
    """
    tables = None
    provenance = setup.get("ann_provenance")
    if provenance is not None:
        tables = HammingLSHIndex.from_arrays(
            provenance[shard_id],
            {
                key: arena.array(f"shard{shard_id}.{key}")
                for key in ANN_ARRAY_KEYS
            },
        )
    return shard_payload(
        shard_id,
        setup["bounds"][shard_id],
        arena.array("packed"),
        arena.array("masses"),
        arena.array("charges"),
        dim=setup["dim"],
        backend=setup["backend"],
        charge_aware=setup["charge_aware"],
        ann=setup.get("ann"),
        ann_tables=tables,
        score_block_rows=setup.get("score_block_rows"),
    )


def _init_arena_worker(setup: Dict) -> None:
    """Pool initializer: reattach the arena by name; scorers build lazily."""
    _WORKER_STATE["arena"] = SharedShardArena.attach(setup["spec"])
    _WORKER_STATE["setup"] = setup
    _WORKER_STATE["scorers"] = {}


def _worker_ping(_: int) -> int:
    """Liveness probe confirming the initializer ran to completion."""
    if "arena" not in _WORKER_STATE:  # pragma: no cover - defensive
        raise RuntimeError("worker initialized without an arena")
    return os.getpid()


def _score_arena_task(task: Tuple) -> Tuple:
    """Score one (shard, query batch) pair inside a pool worker.

    The second element of the returned tuple is the worker-side wall
    time of the scoring call, so the parent can merge per-shard spans
    into its trace without any tracer state crossing the pool boundary.
    """
    shard_id = task[0]
    scorers: Dict[int, ShardScorer] = _WORKER_STATE["scorers"]
    scorer = scorers.get(shard_id)
    if scorer is None:
        scorer = ShardScorer(
            arena_shard_payload(
                _WORKER_STATE["arena"], _WORKER_STATE["setup"], shard_id
            )
        )
        scorers[shard_id] = scorer
    started = time.perf_counter()
    scored = scorer.score_batch(*task[1:])
    return (shard_id, time.perf_counter() - started) + scored


class ProcessShardExecutor:
    """Shard scoring on a lazily created multiprocessing pool.

    Workers attach the arena by name in their initializer, so the only
    per-worker memory is the prepared backend state — never a copy of
    the packed index.  ``run`` raises :class:`RuntimeError` when the
    pool cannot start within ``start_timeout`` seconds (wedged or
    crashing initializer); the half-started pool is terminated first so
    the caller can still unlink the arena cleanly.
    """

    kind = "process"

    def __init__(
        self,
        setup: Dict,
        num_workers: int,
        start_timeout: Optional[float] = None,
    ) -> None:
        self._setup = setup
        self._num_workers = num_workers
        self._start_timeout = (
            POOL_START_TIMEOUT if start_timeout is None else start_timeout
        )
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context()
            pool = context.Pool(
                processes=self._num_workers,
                initializer=_init_arena_worker,
                initargs=(self._setup,),
            )
            try:
                pool.apply_async(_worker_ping, (0,)).get(self._start_timeout)
            except Exception as error:
                pool.terminate()
                pool.join()
                raise RuntimeError(
                    "scoring pool failed to start (worker initializer "
                    f"did not come up within {self._start_timeout}s)"
                ) from error
            self._pool = pool
        return self._pool

    def run(self, tasks: List[Tuple]) -> List[Tuple]:
        """Score all shard tasks, one pool job each, in shard order."""
        return self._ensure_pool().map(_score_arena_task, tasks)

    def close(self, timeout: float = 10.0) -> None:
        """Shut the pool down gracefully (idempotent).

        The pool is ``close()``-d and ``join()``-ed so in-flight shard
        tasks finish instead of being killed mid-request.  If the join
        does not complete within ``timeout`` seconds — a wedged worker —
        the pool falls back to ``terminate()``.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.close()
        waiter = threading.Thread(target=pool.join, daemon=True)
        waiter.start()
        waiter.join(timeout)
        if waiter.is_alive():
            pool.terminate()
            waiter.join()


class ThreadShardExecutor:
    """Shard scoring on an in-process thread pool (zero IPC).

    Scorers are built lazily per shard from the owner's arena views, so
    all threads share one copy of the packed rows; the XOR/popcount and
    matmul kernels release the GIL over contiguous slabs, which is
    where the concurrency comes from.
    """

    kind = "thread"

    def __init__(
        self, arena: SharedShardArena, setup: Dict, num_workers: int
    ) -> None:
        self._arena = arena
        self._setup = setup
        self._num_workers = num_workers
        self._scorers: Dict[int, ShardScorer] = {}
        self._build_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._num_workers,
                thread_name_prefix="repro-score",
            )
        return self._executor

    def _scorer(self, shard_id: int) -> ShardScorer:
        scorer = self._scorers.get(shard_id)
        if scorer is None:
            with self._build_lock:
                scorer = self._scorers.get(shard_id)
                if scorer is None:
                    scorer = ShardScorer(
                        arena_shard_payload(self._arena, self._setup, shard_id)
                    )
                    self._scorers[shard_id] = scorer
        return scorer

    def _run_task(self, task: Tuple) -> Tuple:
        scorer = self._scorer(task[0])
        started = time.perf_counter()
        scored = scorer.score_batch(*task[1:])
        return (task[0], time.perf_counter() - started) + scored

    def run(self, tasks: List[Tuple]) -> List[Tuple]:
        """Score all shard tasks concurrently, results in shard order."""
        return list(self._ensure_executor().map(self._run_task, tasks))

    def close(self, timeout: float = 10.0) -> None:
        """Shut the thread pool down gracefully (idempotent).

        Mirrors the process executor: wait up to ``timeout`` seconds
        for in-flight tasks, then abandon them (daemon-joined at exit)
        with pending work cancelled.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        waiter = threading.Thread(
            target=lambda: executor.shutdown(wait=True), daemon=True
        )
        waiter.start()
        waiter.join(timeout)
        if waiter.is_alive():
            executor.shutdown(wait=False, cancel_futures=True)
