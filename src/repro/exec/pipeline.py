"""Encode/score stage overlap via a bounded producer queue.

:func:`pipeline_map` is the software analogue of RapidOMS's
encode/score pipeline: a producer thread runs ``func`` (the encode
stage) over micro-batches *ahead* of the consumer (the scoring stage),
at most :data:`PIPELINE_DEPTH` results in flight.  The consumer
receives results strictly in submission order, so downstream RNG draws
(bit-error injection) and the PSM stream are byte-for-byte identical
to the sequential schedule — only the wall clock changes.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable, Iterator, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Encoded micro-batches allowed in flight ahead of the consumer.  Two
#: is enough to hide the encode stage entirely (batch ``k+1`` encodes
#: while ``k`` scores) without queueing unbounded hypervector matrices.
PIPELINE_DEPTH = 2


def pipeline_map(
    func: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    depth: int = PIPELINE_DEPTH,
) -> Iterator[ResultT]:
    """Yield ``func(item)`` in order, computed ahead in a worker thread.

    With zero or one item the call is inlined — no thread, no queue —
    so single-micro-batch searches (the service's common case) pay
    nothing for the pipeline machinery.  Exceptions raised by ``func``
    propagate to the consumer at the position they occurred; closing
    the generator early stops the producer promptly.
    """
    items = list(items)
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if len(items) <= 1:
        for item in items:
            yield func(item)
        return

    results: "queue.Queue" = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def _produce() -> None:
        for item in items:
            try:
                outcome = ("ok", func(item))
            except BaseException as error:  # propagated to the consumer
                outcome = ("error", error)
            while not stop.is_set():
                try:
                    results.put(outcome, timeout=0.1)
                    break
                except queue.Full:
                    continue
            if stop.is_set() or outcome[0] == "error":
                return
        while not stop.is_set():
            try:
                results.put(("done", None), timeout=0.1)
                return
            except queue.Full:
                continue

    producer = threading.Thread(
        target=_produce, name="repro-encode", daemon=True
    )
    producer.start()
    try:
        while True:
            kind, value = results.get()
            if kind == "done":
                return
            if kind == "error":
                raise value
            yield value
    finally:
        stop.set()
        producer.join()
