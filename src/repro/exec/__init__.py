"""Zero-copy parallel scoring execution (`repro.exec`).

The package owns everything that lets shard scoring run in parallel
without duplicating the packed library per worker:

* :class:`~repro.exec.arena.SharedShardArena` — the single sanctioned
  owner of ``multiprocessing.shared_memory`` segments.  Packed shard
  rows, precursor metadata, and persisted ANN tables are copied into
  one named segment exactly once; worker *processes* reattach by name
  and worker *threads* share the parent's mapping, so neither pays a
  per-worker index copy.
* :class:`~repro.exec.pool.ProcessShardExecutor` /
  :class:`~repro.exec.pool.ThreadShardExecutor` — the two
  ``executor={"process","thread"}`` modes behind
  :class:`~repro.index.sharded.ShardedSearcher`, with identical task
  and result layouts (results stay bit-identical across modes).
* :func:`~repro.exec.pipeline.pipeline_map` — the two-deep bounded
  queue that overlaps encoding of micro-batch ``k+1`` with scoring of
  micro-batch ``k``.
* :class:`~repro.exec.scorer.ShardScorer` — one shard's prepared
  backend + per-charge mass index, shared by every execution mode.

See ``docs/performance.md`` for mode selection and tuning guidance.
"""

from .arena import ArenaSpec, SharedShardArena
from .pipeline import PIPELINE_DEPTH, pipeline_map
from .pool import (
    POOL_START_TIMEOUT,
    ProcessShardExecutor,
    ThreadShardExecutor,
)
from .scorer import BACKEND_FACTORIES, ShardScorer, resolve_backend, shard_payload

__all__ = [
    "ArenaSpec",
    "SharedShardArena",
    "PIPELINE_DEPTH",
    "pipeline_map",
    "POOL_START_TIMEOUT",
    "ProcessShardExecutor",
    "ThreadShardExecutor",
    "BACKEND_FACTORIES",
    "ShardScorer",
    "resolve_backend",
    "shard_payload",
]
