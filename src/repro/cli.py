"""Command-line interface: ``hdoms`` (also installed as ``repro``).

Seven subcommands cover the library's user-facing workflows:

* ``hdoms workload`` — generate a synthetic benchmark (MSP library +
  MGF queries + ground-truth TSV) to disk;
* ``hdoms search`` — run the full OMS pipeline on an MSP library and
  MGF queries, writing accepted PSMs as TSV;
* ``hdoms index build`` / ``hdoms index search`` — encode a library
  once into a persistent ``.npz`` index (or, with ``--segment-rows``, a
  segmented store directory that never holds the whole library in RAM),
  then serve any number of query batches from it (optionally sharded
  across worker processes);
* ``hdoms index append`` / ``hdoms index merge`` — stream new spectra
  into an existing segmented store, and compact its segments, without a
  full rebuild (see ``docs/index-format.md``);
* ``hdoms serve`` — run the long-lived online search service (micro-
  batching + result cache + HTTP JSON API) over a persisted index;
* ``hdoms profile`` — search queries against an index with span tracing
  on, write a Chrome/Perfetto ``trace_event`` JSON file, and print the
  per-stage latency table (see ``docs/observability.md``);
* ``hdoms experiment`` — regenerate one (or all) of the paper's tables
  and figures and print the rows/series;
* ``hdoms info`` — version and configuration summary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__


def _add_logging_arguments(parser) -> None:
    """The shared ``--log-*`` flag group (long-running subcommands)."""
    from .obs.logging import LOG_FORMATS, LOG_LEVELS

    group = parser.add_argument_group("logging")
    group.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="minimum level for repro.* log lines (default info)",
    )
    group.add_argument(
        "--log-format",
        choices=LOG_FORMATS,
        default="text",
        help="text = human-readable lines, json = one JSON object per line",
    )


def _setup_logging_from_args(args) -> None:
    """Install the stderr log handler the ``--log-*`` flags describe."""
    from .obs.logging import setup_logging

    setup_logging(level=args.log_level, fmt=args.log_format)


def _add_ann_arguments(parser) -> None:
    """The shared ``--ann*`` flag group (index build/search, serve)."""
    group = parser.add_argument_group(
        "approximate search",
        "Hamming-LSH candidate prefilter with exact re-rank "
        "(see docs/ann-tuning.md)",
    )
    group.add_argument(
        "--ann",
        action="store_true",
        help="enable the ANN candidate prefilter",
    )
    group.add_argument(
        "--ann-tables",
        type=int,
        default=None,
        metavar="T",
        help="number of LSH hash tables (default 8)",
    )
    group.add_argument(
        "--ann-bits",
        type=int,
        default=None,
        metavar="B",
        help="sampled bits per hash key (default 16)",
    )
    group.add_argument(
        "--ann-probe-radius",
        type=int,
        default=None,
        metavar="R",
        help="multiprobe Hamming radius around each key, 0-2 (default 1)",
    )
    group.add_argument(
        "--ann-budget",
        type=int,
        default=None,
        metavar="N",
        help="max candidates kept per query after voting (default 256)",
    )
    group.add_argument(
        "--ann-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "precursor windows smaller than this many rows skip the "
            "prefilter and stay exact (default 1024)"
        ),
    )


def _ann_config_from_args(args):
    """``Optional[AnnConfig]`` from the ``--ann*`` flags.

    Raises ``ValueError`` when a tuning flag is given without ``--ann``
    — silently ignoring it would look like the knob took effect.
    """
    from .ann import AnnConfig

    overrides = {
        "num_tables": ("--ann-tables", args.ann_tables),
        "bits_per_hash": ("--ann-bits", args.ann_bits),
        "multiprobe_radius": ("--ann-probe-radius", args.ann_probe_radius),
        "candidate_budget": ("--ann-budget", args.ann_budget),
        "ann_threshold": ("--ann-threshold", args.ann_threshold),
    }
    given = {
        key: (flag, value)
        for key, (flag, value) in overrides.items()
        if value is not None
    }
    if not args.ann:
        if given:
            flags = ", ".join(sorted(flag for flag, _ in given.values()))
            raise ValueError(f"{flags} requires --ann")
        return None
    return AnnConfig(**{key: value for key, (_, value) in given.items()})


def add_engine_args(
    parser,
    *,
    workers_default: Optional[int] = None,
    include_engine: bool = False,
) -> None:
    """The shared engine flag group (index search/append/merge, serve, profile).

    One definition feeds every entry point so the flags cannot drift
    between subcommands; :func:`engine_config_from_args` turns the
    parsed namespace into one :class:`~repro.engine.EngineConfig`.

    Args:
        parser: The subcommand parser to extend.
        workers_default: Default ``--workers`` (``0`` = in-process,
            ``None`` = auto-size to the shard/segment count).
        include_engine: Also expose ``--engine`` (the service is the
            only consumer that lets users pin the engine family).
    """
    group = parser.add_argument_group(
        "engine", "execution knobs shared by every search entry point"
    )
    if include_engine:
        group.add_argument(
            "--engine",
            choices=("auto", "batched", "sharded", "segmented"),
            default="auto",
            help=(
                "engine family (auto = batched dense when possible, "
                "segmented for store directories)"
            ),
        )
    group.add_argument(
        "--shards", type=int, default=1, help="library partitions to score"
    )
    group.add_argument(
        "--workers",
        type=int,
        default=workers_default,
        help=(
            "worker-pool size (0 = score in-process"
            + (", default" if workers_default == 0 else "")
            + "; omitted = one per shard up to the CPU count)"
        ),
    )
    group.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help=(
            "parallel scoring mode: process = worker pool over a shared-"
            "memory arena, thread = in-process threads over the same "
            "arena (zero IPC; segmented stores always score in-process)"
        ),
    )
    group.add_argument(
        "--score-block-rows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "rows per scoring block (cache tiling; default auto, "
            "0 = untiled; never changes results)"
        ),
    )
    group.add_argument(
        "--backend", choices=("dense", "packed"), default="dense"
    )


def engine_config_from_args(args, ann=None):
    """One :class:`~repro.engine.EngineConfig` from the shared flag group.

    ``ann`` threads an :class:`~repro.ann.AnnConfig` (usually from
    :func:`_ann_config_from_args`) into the engine config so a single
    object carries every execution knob.
    """
    from .engine import EngineConfig

    return EngineConfig(
        kind=getattr(args, "engine", "auto"),
        backend=args.backend,
        num_shards=args.shards,
        num_workers=args.workers,
        executor=args.executor,
        score_block_rows=args.score_block_rows,
        ann=ann,
    )


def _add_workload_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "workload", help="generate a synthetic OMS benchmark to disk"
    )
    parser.add_argument(
        "--preset",
        choices=("iprg2012", "hek293", "custom"),
        default="iprg2012",
        help="workload preset (Table 1 stand-ins)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--references", type=int, help="override library size")
    parser.add_argument("--queries", type=int, help="override query count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output-dir", type=Path, required=True, help="directory to write into"
    )


def _add_search_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "search", help="open modification search: MSP library vs MGF queries"
    )
    parser.add_argument("--library", type=Path, required=True, help="MSP file")
    parser.add_argument("--queries", type=Path, required=True, help="MGF file")
    parser.add_argument("--output", type=Path, help="TSV of accepted PSMs")
    parser.add_argument("--dim", type=int, default=8192)
    parser.add_argument("--id-bits", type=int, choices=(1, 2, 3), default=3)
    parser.add_argument("--levels", type=int, default=32)
    parser.add_argument(
        "--mode", choices=("open", "standard", "cascade"), default="open"
    )
    parser.add_argument("--fdr", type=float, default=0.01)
    parser.add_argument("--open-window", type=float, default=500.0)
    parser.add_argument(
        "--backend",
        choices=("dense", "packed", "rram"),
        default="dense",
        help="similarity backend (rram = simulated MLC accelerator)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-decoys",
        action="store_true",
        help="library already contains decoys (Comment: Decoy=true)",
    )


def _add_index_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "index", help="build / search a persistent encoded-library index"
    )
    index_sub = parser.add_subparsers(dest="index_command", required=True)

    build = index_sub.add_parser(
        "build", help="encode an MSP library once and persist it as .npz"
    )
    build.add_argument("--library", type=Path, required=True, help="MSP file")
    build.add_argument(
        "--output", type=Path, required=True, help="index file to write (.npz)"
    )
    build.add_argument("--dim", type=int, default=8192)
    build.add_argument("--id-bits", type=int, choices=(1, 2, 3), default=3)
    build.add_argument("--levels", type=int, default=32)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--chunk-size",
        type=int,
        default=512,
        help="spectra encoded per batch (bounds peak memory)",
    )
    build.add_argument(
        "--no-decoys",
        action="store_true",
        help="library already contains decoys (Comment: Decoy=true)",
    )
    build.add_argument(
        "--segment-rows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "write a segmented store *directory* at --output instead of "
            "one .npz, streaming the library in segments of N rows so "
            "peak memory stays bounded (see docs/index-format.md)"
        ),
    )
    _add_ann_arguments(build)
    _add_logging_arguments(build)

    search = index_sub.add_parser(
        "search", help="search MGF queries against a persisted index"
    )
    search.add_argument(
        "--index",
        type=Path,
        required=True,
        dest="index_path",
        help=".npz index or segmented store directory",
    )
    search.add_argument("--queries", type=Path, required=True, help="MGF file")
    search.add_argument(
        "--output",
        type=Path,
        help=(
            "output file: accepted-PSM TSV, or the JSONL stream with "
            "--output-format jsonl (stdout when omitted)"
        ),
    )
    search.add_argument(
        "--mode", choices=("open", "standard", "cascade"), default="open"
    )
    search.add_argument(
        "--fdr",
        type=float,
        default=None,
        help="FDR threshold for tsv output (default 0.01; ignored by jsonl)",
    )
    search.add_argument("--open-window", type=float, default=500.0)
    search.add_argument(
        "--output-format",
        choices=("tsv", "jsonl"),
        default="tsv",
        help=(
            "tsv = FDR-filtered PSMs, buffered and sorted; jsonl = stream "
            "every PSM (targets and decoys, pre-FDR, q_value null) as JSON "
            "lines while query chunks are searched, without buffering the "
            "full result set"
        ),
    )
    search.add_argument(
        "--chunk-size",
        type=int,
        default=512,
        help="queries searched per batch in jsonl streaming mode",
    )
    add_engine_args(search)
    _add_ann_arguments(search)
    _add_logging_arguments(search)

    append = index_sub.add_parser(
        "append",
        help="stream new spectra into an existing segmented store",
    )
    append.add_argument(
        "--store",
        type=Path,
        required=True,
        help="segmented store directory (must already have a manifest)",
    )
    append.add_argument(
        "--library",
        type=Path,
        required=True,
        help="MSP/MGF file of new reference spectra",
    )
    append.add_argument(
        "--segment-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows per new segment (default 8192)",
    )
    append.add_argument(
        "--chunk-size",
        type=int,
        default=512,
        help="spectra encoded per batch (bounds peak memory)",
    )
    append.add_argument(
        "--no-decoys",
        action="store_true",
        help="library already contains decoys (Comment: Decoy=true)",
    )
    append.add_argument("--seed", type=int, default=0)
    append.add_argument(
        "--verify-queries",
        type=Path,
        default=None,
        metavar="MGF",
        help="after appending, search these queries to sanity-check the store",
    )
    add_engine_args(append)
    _add_logging_arguments(append)

    merge = index_sub.add_parser(
        "merge",
        help="compact a segmented store's segments without a rebuild",
    )
    merge.add_argument(
        "--store",
        type=Path,
        required=True,
        help="segmented store directory",
    )
    merge.add_argument(
        "--target-rows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "merge adjacent segments up to N rows each "
            "(default: compact everything into one segment)"
        ),
    )
    merge.add_argument(
        "--verify-queries",
        type=Path,
        default=None,
        metavar="MGF",
        help="after merging, search these queries to sanity-check the store",
    )
    add_engine_args(merge)
    _add_logging_arguments(merge)


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="online search service over persisted indexes (HTTP JSON API)",
    )
    parser.add_argument(
        "--index",
        action="append",
        required=True,
        dest="indexes",
        metavar="[NAME=]PATH",
        help=(
            ".npz index or segmented store directory to serve; repeat "
            "to front several libraries as NAME=PATH routes (a single "
            "bare PATH is served as the 'default' route)"
        ),
    )
    parser.add_argument(
        "--default-route",
        default=None,
        help="route answering requests that name none (default: first --index)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8337)
    parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="flush a micro-batch at this many queued spectra",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="flush when the oldest queued spectrum has waited this long",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU result-cache capacity (0 disables caching)",
    )
    add_engine_args(parser, workers_default=0, include_engine=True)
    parser.add_argument(
        "--mode", choices=("open", "standard", "cascade"), default="open"
    )
    parser.add_argument("--open-window", type=float, default=500.0)
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log one line per HTTP request",
    )
    observability = parser.add_argument_group(
        "observability", "span tracing + slow-query log (docs/observability.md)"
    )
    observability.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "record requests slower than this in the /debug/slow ring "
            "buffer (default 250; 0 records every request)"
        ),
    )
    observability.add_argument(
        "--no-trace",
        action="store_true",
        help="disable span tracing (/debug/trace returns an empty trace)",
    )
    observability.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="span ring-buffer size (default 4096)",
    )
    _add_ann_arguments(parser)
    _add_logging_arguments(parser)


def _add_coordinate_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "coordinate",
        help=(
            "scatter-gather coordinator over precursor-partitioned "
            "repro-serve workers (bit-identical to single-node)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        required=True,
        dest="store_path",
        help="segmented store directory the partition plan is built from",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=2,
        metavar="N",
        help="worker partitions (clamped to the store's segment count)",
    )
    parser.add_argument(
        "--strategy",
        choices=("rows", "mass"),
        default="rows",
        help=(
            "rows = contiguous manifest runs balanced by row count "
            "(parallelism); mass = segments grouped by precursor-mass "
            "range (pruning)"
        ),
    )
    workers = parser.add_mutually_exclusive_group(required=True)
    workers.add_argument(
        "--worker",
        action="append",
        dest="workers",
        metavar="URL",
        help=(
            "pre-started worker URL; repeat per partition (extras become "
            "replicas, dealt round-robin: URL i serves partition i %% N)"
        ),
    )
    workers.add_argument(
        "--spawn-workers",
        action="store_true",
        help=(
            "materialize the partition manifests and spawn one local "
            "repro serve per partition"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8347)
    parser.add_argument(
        "--mode", choices=("open", "standard", "cascade"), default="open"
    )
    parser.add_argument("--open-window", type=float, default=500.0)
    parser.add_argument(
        "--worker-threads",
        type=int,
        default=0,
        metavar="N",
        help="scoring threads per spawned worker (0 = serial)",
    )
    robustness = parser.add_argument_group(
        "robustness", "admission, hedging, and health probing knobs"
    )
    robustness.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help=(
            "search requests admitted at once; excess get HTTP 429 with "
            "Retry-After (default 64)"
        ),
    )
    robustness.add_argument(
        "--worker-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="per-call worker deadline in seconds (default 60)",
    )
    robustness.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between /healthz probe rounds (default 2)",
    )
    robustness.add_argument(
        "--hedge-floor-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help=(
            "lower bound on the p99-derived hedge deadline (default 20)"
        ),
    )
    robustness.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds to wait for every partition to turn healthy",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log one line per HTTP request",
    )
    observability = parser.add_argument_group(
        "observability", "span tracing (docs/observability.md)"
    )
    observability.add_argument(
        "--no-trace",
        action="store_true",
        help="disable span tracing",
    )
    observability.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="span ring-buffer size (default 4096)",
    )
    _add_logging_arguments(parser)


def _add_profile_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "profile",
        help=(
            "trace a search run and write Chrome/Perfetto trace_event JSON"
        ),
    )
    parser.add_argument(
        "--index",
        type=Path,
        required=True,
        dest="index_path",
        help=".npz index or segmented store directory",
    )
    parser.add_argument("--queries", type=Path, required=True, help="MGF file")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("profile-trace.json"),
        help=(
            "trace file to write (open in chrome://tracing or "
            "https://ui.perfetto.dev; default profile-trace.json)"
        ),
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="profile only the first N queries",
    )
    parser.add_argument(
        "--mode", choices=("open", "standard", "cascade"), default="open"
    )
    parser.add_argument("--open-window", type=float, default=500.0)
    add_engine_args(parser)
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="span ring-buffer size (default 4096)",
    )
    _add_ann_arguments(parser)
    _add_logging_arguments(parser)


def _add_experiment_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    parser.add_argument(
        "name",
        choices=(
            "table1",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "all",
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor where applicable",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level ``hdoms`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="hdoms",
        description=(
            "HD-OMS-MLC: open modification spectral library search with "
            "hyperdimensional computing on simulated MLC RRAM"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_workload_parser(subparsers)
    _add_search_parser(subparsers)
    _add_index_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_coordinate_parser(subparsers)
    _add_profile_parser(subparsers)
    _add_experiment_parser(subparsers)
    subparsers.add_parser("info", help="print version and defaults")
    return parser


def _decoy_factory(seed: int):
    """The simulator-backed decoy spectrum factory shared by all ingests."""
    from .ms.synthetic import REFERENCE_NOISE, SpectrumSimulator

    simulator = SpectrumSimulator(seed=seed)

    def factory(peptide, charge, identifier):
        """Generate one simulated decoy spectrum."""
        return simulator.spectrum(
            peptide, charge, identifier, noise=REFERENCE_NOISE
        )

    return factory


def _load_library(path: Path, no_decoys: bool, seed: int):
    """Read a spectral library, appending simulator decoys unless told not to."""
    from .ms import iter_spectra
    from .ms.decoy import append_decoys

    references = list(iter_spectra(path))
    if no_decoys:
        return references
    return append_decoys(references, _decoy_factory(seed), seed=seed)


def _iter_library(path: Path, no_decoys: bool, seed: int):
    """Stream a spectral library: targets first, then generated decoys.

    The streaming twin of :func:`_load_library` for segmented-store
    ingest: the file is read twice (targets, then a decoy per target)
    so at no point is the library resident, and one sequential RNG
    seeded like :func:`~repro.ms.decoy.append_decoys` keeps the decoy
    sequences — and therefore the stored rows — bit-identical to the
    buffered path.
    """
    import random

    from .ms import iter_spectra
    from .ms.decoy import make_decoy_spectrum

    yield from iter_spectra(path)
    if no_decoys:
        return
    factory = _decoy_factory(seed)
    rng = random.Random(seed)
    for reference in iter_spectra(path):
        if reference.is_decoy:
            continue
        decoy = make_decoy_spectrum(reference, factory, rng)
        if decoy is not None:
            yield decoy


def _write_psm_tsv(path: Path, accepted) -> None:
    """Write accepted PSMs in the standard TSV layout."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "query_id\treference_id\tpeptide\tscore\tq_value\t"
            "mass_difference_da\tmode\n"
        )
        for psm in sorted(accepted, key=lambda p: -p.score):
            handle.write(
                f"{psm.query_id}\t{psm.reference_id}\t"
                f"{psm.peptide_key or '-'}\t{psm.score:.1f}\t"
                f"{psm.q_value:.5f}\t{psm.precursor_mass_difference:+.4f}\t"
                f"{psm.mode}\n"
            )


def cmd_workload(args) -> int:
    """Entry point for ``hdoms workload`` (synthetic workload generation)."""
    from .experiments.workloads import HEK293_LIKE, IPRG2012_LIKE
    from .ms.mgf import write_mgf
    from .ms.msp import write_msp
    from .ms.synthetic import WorkloadConfig, build_workload, scaled_config

    if args.preset == "iprg2012":
        config = scaled_config(IPRG2012_LIKE, args.scale)
    elif args.preset == "hek293":
        config = scaled_config(HEK293_LIKE, args.scale)
    else:
        config = WorkloadConfig(
            name="custom",
            num_references=args.references or 1000,
            num_queries=args.queries or 200,
            seed=args.seed,
        )
    if args.references:
        config = WorkloadConfig(**{**config.__dict__, "num_references": args.references})
    if args.queries:
        config = WorkloadConfig(**{**config.__dict__, "num_queries": args.queries})

    workload = build_workload(config)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    library_path = args.output_dir / "library.msp"
    queries_path = args.output_dir / "queries.mgf"
    truth_path = args.output_dir / "truth.tsv"
    write_msp(workload.references, library_path)
    write_mgf(workload.queries, queries_path)
    with open(truth_path, "w", encoding="utf-8") as handle:
        handle.write("query_id\ttrue_peptide\n")
        for query_id, truth in sorted(workload.truth.items()):
            handle.write(f"{query_id}\t{truth or '-'}\n")
    print(f"wrote {len(workload.references)} references -> {library_path}")
    print(f"wrote {len(workload.queries)} queries    -> {queries_path}")
    print(f"wrote ground truth           -> {truth_path}")
    return 0


def cmd_search(args) -> int:
    """Entry point for ``hdoms search`` (end-to-end open search + FDR)."""
    from .constants import DEFAULT_STANDARD_WINDOW_DA
    from .hdc.encoder import SpectrumEncoder
    from .hdc.spaces import HDSpace, HDSpaceConfig
    from .ms.mgf import read_mgf
    from .ms.vectorize import BinningConfig
    from .oms.candidates import WindowConfig
    from .oms.fdr import grouped_fdr
    from .oms.search import (
        DenseBackend,
        HDOmsSearcher,
        HDSearchConfig,
        PackedBackend,
    )

    references = _load_library(args.library, args.no_decoys, args.seed)
    queries = list(read_mgf(args.queries))
    print(f"library (incl. decoys): {len(references)}, queries: {len(queries)}")

    binning = BinningConfig()
    windows = WindowConfig(
        standard_tolerance_da=DEFAULT_STANDARD_WINDOW_DA,
        open_window_da=args.open_window,
    )
    search_config = HDSearchConfig(mode=args.mode)
    if args.backend == "rram":
        from .accelerator.accelerator import OmsAccelerator
        from .accelerator.config import AcceleratorConfig

        accelerator = OmsAccelerator(
            config=AcceleratorConfig(seed=args.seed),
            space_config=HDSpaceConfig(
                dim=args.dim,
                num_levels=args.levels,
                id_precision_bits=args.id_bits,
                seed=args.seed,
            ),
            binning=binning,
            windows=windows,
            search=search_config,
        )
        searcher = accelerator.build_searcher(references)
    else:
        space = HDSpace(
            HDSpaceConfig(
                dim=args.dim,
                num_bins=binning.num_bins,
                num_levels=args.levels,
                id_precision_bits=args.id_bits,
                seed=args.seed,
            )
        )
        encoder = SpectrumEncoder(space, binning)
        backend = PackedBackend() if args.backend == "packed" else DenseBackend()
        searcher = HDOmsSearcher(
            encoder,
            references,
            windows=windows,
            config=search_config,
            backend=backend,
        )

    result = searcher.search(queries)
    accepted = grouped_fdr(result.psms, args.fdr)
    peptides = {psm.peptide_key for psm in accepted if psm.peptide_key}
    modified = sum(1 for psm in accepted if psm.is_modified_match)
    print(
        f"accepted {len(accepted)} PSMs at {args.fdr:.0%} FDR "
        f"({len(peptides)} unique peptides, {modified} modified) "
        f"in {result.elapsed_seconds:.2f}s on backend {result.backend_name!r}"
    )
    if args.output:
        _write_psm_tsv(args.output, accepted)
        print(f"wrote PSMs -> {args.output}")
    return 0


def cmd_index(args) -> int:
    """Entry point for ``hdoms index`` (build/inspect/search indexes)."""
    if args.index_command == "build":
        return _cmd_index_build(args)
    if args.index_command == "search":
        return _cmd_index_search(args)
    if args.index_command == "append":
        return _cmd_index_append(args)
    if args.index_command == "merge":
        return _cmd_index_merge(args)
    raise AssertionError(f"unhandled index command {args.index_command!r}")


def _cmd_index_build(args) -> int:
    import time

    from .hdc.spaces import HDSpaceConfig
    from .index import LibraryIndex
    from .ms.vectorize import BinningConfig

    try:
        ann = _ann_config_from_args(args)
        _setup_logging_from_args(args)
    except ValueError as error:
        print(f"index build: {error}", file=sys.stderr)
        return 2
    binning = BinningConfig()
    space_config = HDSpaceConfig(
        dim=args.dim,
        num_bins=binning.num_bins,
        num_levels=args.levels,
        id_precision_bits=args.id_bits,
        seed=args.seed,
    )
    if args.segment_rows is not None:
        from .store import build_store

        start = time.perf_counter()
        store = build_store(
            _iter_library(args.library, args.no_decoys, args.seed),
            args.output,
            space_config=space_config,
            binning=binning,
            ann=ann,
            segment_rows=args.segment_rows,
            chunk_size=args.chunk_size,
            source=str(args.library),
        )
        build_seconds = time.perf_counter() - start
        print(store.summary())
        print(
            f"streamed {store.num_references} references into "
            f"{store.num_segments} segment(s) in {build_seconds:.2f}s "
            f"-> {args.output}"
        )
        store.close()
        return 0
    references = _load_library(args.library, args.no_decoys, args.seed)
    print(f"library (incl. decoys): {len(references)}")
    start = time.perf_counter()
    index = LibraryIndex.build(
        references,
        space_config=space_config,
        binning=binning,
        chunk_size=args.chunk_size,
        source=str(args.library),
        ann=ann,
    )
    build_seconds = time.perf_counter() - start
    saved = index.save(args.output)
    print(index.summary())
    print(
        f"encoded {index.num_references} references in {build_seconds:.2f}s "
        f"-> {saved} ({saved.stat().st_size / 1024:.0f} KiB)"
    )
    return 0


def _iter_chunks(items, size: int):
    """Yield lists of up to ``size`` items from any iterable, lazily."""
    chunk = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _stream_jsonl_search(args, searcher, queries, info) -> int:
    """Stream every PSM as one JSON line per match, chunk by chunk.

    Queries are pulled lazily from the MGF iterator in chunks of
    ``--chunk-size``, so neither the query set nor the PSM list is ever
    fully resident.  The stream is pre-FDR (targets and decoys,
    ``q_value`` null) — q-values are a global property of the full run
    and would force exactly the buffering this mode exists to avoid.
    """
    import contextlib
    import json
    import time

    start = time.perf_counter()
    num_queries = 0
    num_psms = 0
    with contextlib.ExitStack() as stack:
        if args.output is not None:
            handle = stack.enter_context(
                open(args.output, "w", encoding="utf-8")
            )
        else:
            handle = sys.stdout
        for chunk in _iter_chunks(queries, args.chunk_size):
            result = searcher.search(chunk)
            num_queries += result.num_queries
            num_psms += len(result.psms)
            for psm in result.psms:
                handle.write(json.dumps(psm.to_dict()) + "\n")
            handle.flush()
    elapsed = time.perf_counter() - start
    print(
        f"streamed {num_psms} PSMs (pre-FDR, targets+decoys) for "
        f"{num_queries} queries in {elapsed:.2f}s",
        file=info,
    )
    if args.output is not None:
        print(f"wrote JSONL -> {args.output}", file=info)
    return 0


def _print_ann_summary(searcher, stream) -> None:
    """Per-run ANN prefilter summary (printed after ``--ann`` searches)."""
    stats = getattr(searcher, "ann_stats", None)
    if stats is None:
        return
    snapshot = stats.snapshot()
    window_rows = snapshot["window_rows"]
    ratio = (
        f"{snapshot['scored_rows'] / window_rows:.4f}" if window_rows else "n/a"
    )
    print(
        f"ann prefilter: {snapshot['bypassed']} bypassed, "
        f"{snapshot['prefiltered']} prefiltered, "
        f"{snapshot['fallbacks']} fallbacks; mean candidate ratio {ratio} "
        f"({snapshot['scored_rows']}/{window_rows} window rows scored)",
        file=stream,
    )


def _open_searcher(index_path: Path, *, windows, config, engine):
    """Open the right searcher for a path: segmented store vs ``.npz``.

    A directory (or an explicit ``manifest.json``) opens lazily as a
    :class:`~repro.store.SegmentedSearcher`; anything else loads as a
    monolithic index behind a
    :class:`~repro.index.sharded.ShardedSearcher`.  Both support the
    context-manager protocol and release their arenas on ``close``.
    """
    from .index import LibraryIndex, ShardedSearcher
    from .store import MANIFEST_NAME, SegmentedSearcher

    path = Path(index_path)
    if path.is_dir() or path.name == MANIFEST_NAME:
        return SegmentedSearcher(
            path,
            windows=windows,
            config=config,
            engine=engine.replace(kind="segmented"),
        )
    return ShardedSearcher(
        LibraryIndex.load(path),
        windows=windows,
        config=config,
        engine=engine.replace(kind="sharded"),
    )


def _cmd_index_search(args) -> int:
    import time

    from .constants import DEFAULT_FDR_THRESHOLD, DEFAULT_STANDARD_WINDOW_DA
    from .ms.mgf import read_mgf
    from .oms.candidates import WindowConfig
    from .oms.fdr import grouped_fdr
    from .oms.search import HDSearchConfig

    if args.chunk_size < 1:
        print(f"--chunk-size must be >= 1, got {args.chunk_size}", file=sys.stderr)
        return 2
    try:
        ann = _ann_config_from_args(args)
        engine = engine_config_from_args(args)
        _setup_logging_from_args(args)
    except ValueError as error:
        print(f"index search: {error}", file=sys.stderr)
        return 2
    streaming = args.output_format == "jsonl"
    # When JSON lines go to stdout, keep it clean: say everything else
    # on stderr.
    info = sys.stderr if streaming and args.output is None else sys.stdout
    if streaming and args.fdr is not None:
        print(
            "warning: --fdr is ignored with --output-format jsonl "
            "(the stream is pre-FDR; filter downstream)",
            file=sys.stderr,
        )
    fdr = args.fdr if args.fdr is not None else DEFAULT_FDR_THRESHOLD

    windows = WindowConfig(
        standard_tolerance_da=DEFAULT_STANDARD_WINDOW_DA,
        open_window_da=args.open_window,
    )
    start = time.perf_counter()
    searcher_cm = _open_searcher(
        args.index_path,
        windows=windows,
        config=HDSearchConfig(mode=args.mode, ann=ann),
        engine=engine,
    )
    load_seconds = time.perf_counter() - start
    source = getattr(searcher_cm, "store", None) or searcher_cm.index
    print(source.summary(), file=info)
    print(
        f"opened {args.index_path} in {load_seconds * 1000:.1f} ms "
        "(encoding skipped)",
        file=info,
    )
    with searcher_cm as searcher:
        if streaming:
            code = _stream_jsonl_search(
                args, searcher, read_mgf(args.queries), info
            )
            _print_ann_summary(searcher, info)
            return code
        result = searcher.search(list(read_mgf(args.queries)))
        _print_ann_summary(searcher, info)
    accepted = grouped_fdr(result.psms, fdr)
    peptides = {psm.peptide_key for psm in accepted if psm.peptide_key}
    modified = sum(1 for psm in accepted if psm.is_modified_match)
    print(
        f"accepted {len(accepted)} PSMs at {fdr:.0%} FDR "
        f"({len(peptides)} unique peptides, {modified} modified) "
        f"in {result.elapsed_seconds:.2f}s on backend {result.backend_name!r}"
    )
    if args.output:
        _write_psm_tsv(args.output, accepted)
        print(f"wrote PSMs -> {args.output}")
    return 0


def _verify_store(args, store) -> int:
    """Optional post-append/merge sanity search (``--verify-queries``).

    Reuses the shared engine flag group: the verification search runs
    through the same :class:`~repro.store.SegmentedSearcher` a real
    ``index search`` against the store would use.
    """
    if args.verify_queries is None:
        return 0
    from .ms.mgf import read_mgf
    from .oms.search import HDSearchConfig
    from .store import SegmentedSearcher

    engine = engine_config_from_args(args)
    with SegmentedSearcher(
        store,
        config=HDSearchConfig(),
        engine=engine.replace(kind="segmented"),
    ) as searcher:
        result = searcher.search(list(read_mgf(args.verify_queries)))
    print(
        f"verify: {len(result.psms)} PSMs for {result.num_queries} queries "
        f"on backend {result.backend_name!r}"
    )
    return 0


def _cmd_index_append(args) -> int:
    import time

    from .store import StoreCompatibilityError, append_store

    try:
        engine_config_from_args(args)  # fail fast on bad engine flags
        _setup_logging_from_args(args)
    except ValueError as error:
        print(f"index append: {error}", file=sys.stderr)
        return 2
    extra = {}
    if args.segment_rows is not None:
        extra["segment_rows"] = args.segment_rows
    start = time.perf_counter()
    try:
        store = append_store(
            args.store,
            _iter_library(args.library, args.no_decoys, args.seed),
            chunk_size=args.chunk_size,
            source=str(args.library),
            **extra,
        )
    except (StoreCompatibilityError, ValueError) as error:
        print(f"index append: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(store.summary())
    print(
        f"appended {args.library} in {elapsed:.2f}s -> "
        f"{store.num_references} references in "
        f"{store.num_segments} segment(s)"
    )
    code = _verify_store(args, store)
    store.close()
    return code


def _cmd_index_merge(args) -> int:
    import time

    from .store import StoreCompatibilityError, merge_store

    try:
        engine_config_from_args(args)  # fail fast on bad engine flags
        _setup_logging_from_args(args)
    except ValueError as error:
        print(f"index merge: {error}", file=sys.stderr)
        return 2
    if args.target_rows is not None and args.target_rows < 1:
        print(
            f"--target-rows must be >= 1, got {args.target_rows}",
            file=sys.stderr,
        )
        return 2
    start = time.perf_counter()
    try:
        store = merge_store(args.store, target_rows=args.target_rows)
    except StoreCompatibilityError as error:
        print(f"index merge: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    print(store.summary())
    print(
        f"compacted to {store.num_segments} segment(s) in {elapsed:.2f}s"
    )
    code = _verify_store(args, store)
    store.close()
    return code


def _split_index_entry(entry: str):
    """``NAME=PATH`` -> (name, path); anything else -> (None, entry).

    An entry counts as named only when the prefix before the first
    ``=`` is a legal route name, so a bare path that happens to contain
    ``=`` (``./results=final/lib.npz``) keeps working as a path.  When
    the prefix *is* route-shaped (``v2=run/lib.npz``) the NAME=PATH
    reading wins — name the route explicitly to serve such a path.
    """
    from .service import ROUTE_PATTERN

    name, sep, path = entry.partition("=")
    if sep and ROUTE_PATTERN.match(name):
        return name, path
    return None, entry


def _parse_index_routes(entries) -> dict:
    """Parse repeated ``--index [NAME=]PATH`` flags into route->path.

    A lone bare path keeps the original single-index behaviour (served
    as the ``default`` route); mixing several indexes requires every
    entry to be named so routes stay unambiguous.
    """
    from .service import DEFAULT_ROUTE

    split = [(entry, *_split_index_entry(entry)) for entry in entries]
    bare = [entry for entry, name, _path in split if name is None]
    if bare and len(entries) > 1:
        raise ValueError(
            f"with multiple --index flags every entry needs a route name "
            f"(NAME=PATH); got bare path(s) {bare}"
        )
    routes = {}
    for entry, name, path in split:
        if name is None:
            name = DEFAULT_ROUTE
        if not path:
            raise ValueError(f"--index {entry!r} has an empty path")
        if name in routes:
            raise ValueError(f"duplicate route name {name!r} in --index flags")
        routes[name] = Path(path)
    return routes


def cmd_serve(args) -> int:
    """Entry point for ``hdoms serve`` (HTTP search service)."""
    from .constants import DEFAULT_STANDARD_WINDOW_DA
    from .service import ServiceConfig, serve
    from .service.server import ServiceStartupError

    from .obs.slowlog import DEFAULT_SLOW_MS
    from .obs.trace import DEFAULT_CAPACITY

    # Bad flag combinations (e.g. batched engine + cascade mode) and
    # unreadable index files are usage errors, not crashes; failures
    # after startup keep their tracebacks.
    try:
        _setup_logging_from_args(args)
        routes = _parse_index_routes(args.indexes)
        config = ServiceConfig(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_size,
            mode=args.mode,
            open_window_da=args.open_window,
            standard_tolerance_da=DEFAULT_STANDARD_WINDOW_DA,
            engine_config=engine_config_from_args(
                args, ann=_ann_config_from_args(args)
            ),
        )
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    try:
        return serve(
            routes,
            host=args.host,
            port=args.port,
            config=config,
            quiet=not args.verbose,
            default_route=args.default_route,
            slow_ms=args.slow_ms if args.slow_ms is not None else DEFAULT_SLOW_MS,
            trace=not args.no_trace,
            trace_capacity=(
                args.trace_capacity
                if args.trace_capacity is not None
                else DEFAULT_CAPACITY
            ),
        )
    except ServiceStartupError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2


def cmd_coordinate(args) -> int:
    """Entry point for ``hdoms coordinate`` (scatter-gather front-end)."""
    from .constants import DEFAULT_STANDARD_WINDOW_DA
    from .coord import serve_coordinate
    from .obs.trace import DEFAULT_CAPACITY
    from .service.server import ServiceStartupError

    try:
        _setup_logging_from_args(args)
        if args.partitions < 1:
            raise ValueError(
                f"--partitions must be >= 1, got {args.partitions}"
            )
        return serve_coordinate(
            args.store_path,
            num_partitions=args.partitions,
            strategy=args.strategy,
            worker_urls=args.workers,
            spawn_workers=args.spawn_workers,
            host=args.host,
            port=args.port,
            mode=args.mode,
            open_window=args.open_window,
            standard_tolerance=DEFAULT_STANDARD_WINDOW_DA,
            worker_threads=args.worker_threads,
            max_inflight=args.max_inflight,
            worker_timeout=args.worker_timeout,
            probe_interval=args.probe_interval,
            hedge_floor_ms=args.hedge_floor_ms,
            startup_timeout=args.startup_timeout,
            quiet=not args.verbose,
            trace=not args.no_trace,
            trace_capacity=(
                args.trace_capacity
                if args.trace_capacity is not None
                else DEFAULT_CAPACITY
            ),
        )
    except ValueError as error:
        print(f"coordinate: {error}", file=sys.stderr)
        return 2
    except ServiceStartupError as error:
        print(f"coordinate: {error}", file=sys.stderr)
        return 2


def cmd_profile(args) -> int:
    """Entry point for ``hdoms profile`` (traced search + stage table)."""
    import json
    import time

    from .constants import DEFAULT_STANDARD_WINDOW_DA
    from .ms.mgf import read_mgf
    from .obs.export import chrome_trace
    from .obs.profile import render_stage_table, summarize_spans
    from .obs.trace import DEFAULT_CAPACITY, get_tracer, new_request_id
    from .oms.candidates import WindowConfig
    from .oms.search import HDSearchConfig

    try:
        ann = _ann_config_from_args(args)
        engine = engine_config_from_args(args)
        _setup_logging_from_args(args)
    except ValueError as error:
        print(f"profile: {error}", file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 1:
        print(f"--limit must be >= 1, got {args.limit}", file=sys.stderr)
        return 2

    queries = list(read_mgf(args.queries))
    if args.limit is not None:
        queries = queries[: args.limit]
    if not queries:
        print("profile: no queries to run", file=sys.stderr)
        return 2

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable(
        args.trace_capacity
        if args.trace_capacity is not None
        else DEFAULT_CAPACITY
    )
    tracer.clear()
    request_id = new_request_id()
    windows = WindowConfig(
        standard_tolerance_da=DEFAULT_STANDARD_WINDOW_DA,
        open_window_da=args.open_window,
    )
    try:
        start = time.perf_counter()
        with _open_searcher(
            args.index_path,
            windows=windows,
            config=HDSearchConfig(mode=args.mode, ann=ann),
            engine=engine,
        ) as searcher:
            with tracer.span(
                "profile.run", request_id=request_id, queries=len(queries)
            ):
                result = searcher.search(queries)
            _print_ann_summary(searcher, sys.stdout)
        elapsed = time.perf_counter() - start
        spans = tracer.records()
        trace = chrome_trace(tracer)
    finally:
        if not was_enabled:
            tracer.disable()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    print(
        f"profiled {len(queries)} queries ({len(result.psms)} PSMs) in "
        f"{elapsed:.2f}s on backend {result.backend_name!r}"
    )
    print(render_stage_table(summarize_spans(spans)))
    print(
        f"wrote {len(trace['traceEvents'])} trace events -> {args.output} "
        "(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def cmd_experiment(args) -> int:
    """Entry point for ``hdoms experiment`` (paper figure reproductions)."""
    from . import experiments as exp

    runners = {
        "table1": lambda: exp.run_table1(scale=args.scale or 1.0),
        "fig7": lambda: exp.run_fig7(),
        "fig8": lambda: exp.run_fig8(),
        "fig9a": lambda: exp.run_fig9_encoding(),
        "fig9b": lambda: exp.run_fig9_search(),
        "fig10": lambda: exp.run_fig10(
            workload=exp.iprg2012_like(args.scale) if args.scale else None
        ),
        "fig11": lambda: exp.run_fig11(
            workload=exp.iprg2012_like(args.scale) if args.scale else None
        ),
        "fig12": lambda: exp.run_fig12(),
        "fig13": lambda: exp.run_fig13(
            workload=exp.iprg2012_like(args.scale) if args.scale else None
        ),
    }
    names = list(runners) if args.name == "all" else [args.name]
    for name in names:
        result = runners[name]()
        print(result.render())
        print()
    return 0


def cmd_info() -> int:
    """Entry point for ``hdoms info`` (version and default parameters)."""
    from .constants import (
        DEFAULT_BIN_WIDTH,
        DEFAULT_FDR_THRESHOLD,
        DEFAULT_OPEN_WINDOW_DA,
    )

    print(f"hdoms {__version__}")
    print("reproduction of Fan et al., DAC 2024 (arXiv:2405.02756)")
    print(f"  default m/z bin width : {DEFAULT_BIN_WIDTH} Da")
    print(f"  default open window   : +-{DEFAULT_OPEN_WINDOW_DA} Da")
    print(f"  default FDR threshold : {DEFAULT_FDR_THRESHOLD:.0%}")
    print(
        "  subcommands           : workload, search, index, serve, "
        "profile, experiment, info"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "workload":
        return cmd_workload(args)
    if args.command == "search":
        return cmd_search(args)
    if args.command == "index":
        return cmd_index(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "coordinate":
        return cmd_coordinate(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "experiment":
        return cmd_experiment(args)
    if args.command == "info":
        return cmd_info()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
