"""Area and storage-density model (paper Sections 2.2 and 5.2.1).

Two headline claims are quantified here:

* "In TSMC 22nm technology, a single-level-cell RRAM provides 3x higher
  storage capacity per area than high-density SRAM" (Chou et al. 2020);
* "Our design can store up to 3 bits per cell, leading to a 3x
  improvement in storage capacity" — i.e. 9x denser than SRAM overall.

Cell-area constants are expressed in F² (feature-size-squared) so the
model scales across nodes; the defaults follow the published figures
for 22 nm high-density SRAM (~32 F² per bit) and 1T1R RRAM (~53 F² per
cell, dominated by the access transistor).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Area of a high-density 6T SRAM bit cell, in F^2 (22nm-class).
SRAM_BITCELL_AREA_F2 = 32.0 * 3.0  # ~0.0465 µm² at 22 nm ≈ 96 F²

#: Area of a 1T1R RRAM cell, in F^2 — sized so the SLC RRAM : SRAM
#: density ratio matches the paper's quoted 3x.
RRAM_CELL_AREA_F2 = SRAM_BITCELL_AREA_F2 / 3.0


@dataclass(frozen=True)
class AreaModel:
    """Storage density calculator for a given technology node."""

    feature_nm: float = 22.0
    rram_cell_area_f2: float = RRAM_CELL_AREA_F2
    sram_bitcell_area_f2: float = SRAM_BITCELL_AREA_F2
    #: Array-level overhead (drivers, sense amps, decoders) as a
    #: multiplier on raw cell area; applied equally to both memories.
    periphery_overhead: float = 1.35

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError("feature_nm must be > 0")
        if self.rram_cell_area_f2 <= 0 or self.sram_bitcell_area_f2 <= 0:
            raise ValueError("cell areas must be > 0")
        if self.periphery_overhead < 1:
            raise ValueError("periphery_overhead must be >= 1")

    def _f2_to_um2(self, area_f2: float) -> float:
        feature_um = self.feature_nm * 1e-3
        return area_f2 * feature_um * feature_um

    def rram_cell_area_um2(self) -> float:
        """Physical area of one 1T1R cell including periphery share."""
        return self._f2_to_um2(self.rram_cell_area_f2) * self.periphery_overhead

    def sram_bit_area_um2(self) -> float:
        """Physical area of one SRAM bit including periphery share."""
        return self._f2_to_um2(self.sram_bitcell_area_f2) * self.periphery_overhead

    def rram_bits_per_mm2(self, bits_per_cell: int) -> float:
        """Storage density of n-bit/cell RRAM (bits per mm²)."""
        if bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")
        return bits_per_cell * 1e6 / self.rram_cell_area_um2()

    def sram_bits_per_mm2(self) -> float:
        """Storage density of SRAM (bits per mm²)."""
        return 1e6 / self.sram_bit_area_um2()

    def density_vs_sram(self, bits_per_cell: int) -> float:
        """RRAM density advantage over SRAM at n bits/cell.

        SLC -> ~3x (the Chou et al. figure); 3 bits/cell -> ~9x.
        """
        return self.rram_bits_per_mm2(bits_per_cell) / self.sram_bits_per_mm2()

    def hypervectors_per_mm2(self, dim: int, bits_per_cell: int) -> float:
        """How many D-bit hypervectors fit per mm² of RRAM."""
        cells = -(-dim // bits_per_cell)
        return 1e6 / (cells * self.rram_cell_area_um2())

    def library_area_mm2(
        self, num_spectra: int, dim: int, bits_per_cell: int
    ) -> float:
        """Silicon area to store a full reference library's hypervectors."""
        return num_spectra / self.hypervectors_per_mm2(dim, bits_per_cell)
