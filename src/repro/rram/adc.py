"""ADC model for the open-circuit voltage sensing readout.

A uniform mid-tread quantiser over the SL voltage range
``[v_ref - v_pulse, v_ref + v_pulse]`` (the full swing Eq. 5 can
produce).  Values outside the range clip, exactly like a real converter.
The paper notes (Section 4.2.3) that encoding only needs the *sign* of
the MAC, which relaxes ADC requirements — experiments can therefore run
with ``bits=1`` for encoding columns and higher resolution for search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ADCConfig:
    """Resolution and input range of the column ADC."""

    bits: int = 8
    v_min: float = 0.4
    v_max: float = 0.6

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(f"adc bits must be in [1, 16], got {self.bits}")
        if self.v_min >= self.v_max:
            raise ValueError("v_min must be < v_max")

    @property
    def num_codes(self) -> int:
        """Number of distinct ADC output codes (``2**bits``)."""
        return 2**self.bits

    @property
    def step(self) -> float:
        """Quantisation step in volts."""
        return (self.v_max - self.v_min) / self.num_codes


class ADC:
    """Uniform quantiser with saturation."""

    def __init__(self, config: ADCConfig) -> None:
        self.config = config

    def quantize(self, voltages: np.ndarray) -> np.ndarray:
        """Convert voltages to integer codes ``0 .. 2^bits - 1``."""
        cfg = self.config
        codes = np.floor(
            (np.asarray(voltages, dtype=np.float64) - cfg.v_min) / cfg.step
        ).astype(np.int64)
        return np.clip(codes, 0, cfg.num_codes - 1)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Code centres back to volts."""
        cfg = self.config
        return cfg.v_min + (np.asarray(codes, dtype=np.float64) + 0.5) * cfg.step

    def convert(self, voltages: np.ndarray) -> np.ndarray:
        """Quantise then reconstruct: the voltage the digital side sees."""
        return self.dequantize(self.quantize(voltages))
