"""Dense hypervector storage in MLC RRAM (paper Section 4.3).

Query hypervectors are stored *non-differentially* for maximum density:
the D-bit hypervector is reshaped into D/n unsigned n-bit integers h'
(n = 1, 2, 3 bits per cell) and each h' maps linearly onto a
conductance ``g = h' / h'_max * g_max``.  Reading decodes each cell to
the nearest level and unpacks the bits.  The storage BER of Figure 7 is
exactly the end-to-end bit error of this round trip after relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hdc.packing import pack_cells, unpack_cells
from .device import DeviceConfig, RRAMDeviceModel
from .metrics import bit_error_rate


@dataclass
class StorageReadout:
    """Result of reading a hypervector store at one time point."""

    hypervectors: np.ndarray
    time_s: float
    bit_error_rate: float
    level_error_rate: float


class HypervectorStore:
    """A block of MLC cells holding binary hypervectors at n bits/cell."""

    def __init__(
        self,
        bits_per_cell: int,
        device: Optional[RRAMDeviceModel] = None,
        seed: int = 0,
    ) -> None:
        if bits_per_cell not in (1, 2, 3):
            raise ValueError(
                f"bits_per_cell must be 1, 2 or 3, got {bits_per_cell}"
            )
        self.bits_per_cell = bits_per_cell
        self.num_levels = 2**bits_per_cell
        self.device = device or RRAMDeviceModel(DeviceConfig(), seed=seed)
        self._rng = np.random.default_rng(seed + 17)
        self._dim: Optional[int] = None
        self._true_cells: Optional[np.ndarray] = None
        self._programmed_us: Optional[np.ndarray] = None
        self._true_hvs: Optional[np.ndarray] = None

    @property
    def num_cells(self) -> int:
        """Cells consumed by the current contents."""
        return 0 if self._true_cells is None else int(self._true_cells.size)

    def write(self, hypervectors: np.ndarray) -> None:
        """Pack bipolar hypervectors into cells and program them."""
        hypervectors = np.asarray(hypervectors)
        if hypervectors.ndim == 1:
            hypervectors = hypervectors[np.newaxis, :]
        self._dim = hypervectors.shape[1]
        self._true_hvs = hypervectors.astype(np.int8)
        self._true_cells = pack_cells(hypervectors, self.bits_per_cell)
        level_value = self.num_levels - 1
        targets = (
            self._true_cells.astype(np.float64)
            / level_value
            * self.device.config.gmax_us
        )
        self._programmed_us = self.device.program(targets, self._rng)

    def read(self, time_s: float = 0.0) -> StorageReadout:
        """Read back after ``time_s`` seconds of relaxation.

        Each call draws a fresh relaxation realisation from the
        programmed state (matching how the paper's chip is measured at
        separate time points).
        """
        if self._programmed_us is None or self._true_cells is None:
            raise RuntimeError("nothing written to the store yet")
        relaxed = self.device.relax(self._programmed_us, time_s, self._rng)
        levels = self.device.read_levels(relaxed, self.num_levels)
        hypervectors = unpack_cells(
            levels.astype(np.uint8), self.bits_per_cell, self._dim
        )
        return StorageReadout(
            hypervectors=hypervectors,
            time_s=time_s,
            bit_error_rate=bit_error_rate(self._true_hvs, hypervectors),
            level_error_rate=bit_error_rate(self._true_cells, levels),
        )

    def capacity_bits_per_cell(self) -> float:
        """Storage density relative to SLC (the paper's headline 3x)."""
        return float(self.bits_per_cell)
