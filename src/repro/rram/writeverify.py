"""Iterative write-verify programming (how MLC levels get tight at all).

Real MLC RRAM cannot hit an analog conductance in one pulse: the chip
programs, reads back, and re-pulses until the cell lands inside a
tolerance band around its target (Wan et al. 2022 describe exactly this
loop).  The device model's ``sigma_program_us`` is the *residual* error
after this loop; this module makes the loop explicit so its cost —
pulses, time, energy — can be accounted and traded against the residual
tolerance.

The trade-off matters for the paper's story: tighter write-verify makes
more levels usable per cell (storage density) but multiplies write
energy/time; the defaults land at the ~0.5 µS residual used by the
calibrated device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class WriteVerifyConfig:
    """Knobs of the program-verify loop."""

    #: Acceptance band around the target (µS); the loop stops once the
    #: read-back lands inside it.
    tolerance_us: float = 0.75
    #: Maximum program pulses per cell before giving up.
    max_iterations: int = 10
    #: Scatter of a single (uncorrected) program pulse (µS).
    pulse_sigma_us: float = 3.0
    #: Fraction of the remaining error corrected per pulse.
    correction_gain: float = 0.7
    #: Read-back noise during verification (µS).
    verify_read_noise_us: float = 0.2
    #: Energy per program pulse per cell (pJ) — SET/RESET pulses cost
    #: orders of magnitude more than reads.
    pulse_energy_pj: float = 30.0
    #: Duration of one program+verify iteration (ns).
    iteration_time_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.tolerance_us <= 0:
            raise ValueError("tolerance_us must be > 0")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0 < self.correction_gain <= 1:
            raise ValueError("correction_gain must be in (0, 1]")


@dataclass
class WriteVerifyResult:
    """Outcome of programming one block of cells."""

    conductances_us: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    @property
    def mean_iterations(self) -> float:
        """Mean write-verify iterations per programmed cell."""
        return float(self.iterations.mean()) if self.iterations.size else 0.0

    @property
    def convergence_rate(self) -> float:
        """Fraction of cells that converged within the iteration budget."""
        return float(self.converged.mean()) if self.converged.size else 1.0

    def energy_pj(self, config: WriteVerifyConfig) -> float:
        """Total programming energy for the block (pJ)."""
        return float(self.iterations.sum()) * config.pulse_energy_pj

    def time_ns(self, config: WriteVerifyConfig) -> float:
        """Serial programming time for the block (ns).

        Cells on one word line program together; this upper bound
        assumes fully serial rows, so real schedules land below it.
        """
        return float(self.iterations.sum()) * config.iteration_time_ns


def write_verify(
    targets_us: np.ndarray,
    config: Optional[WriteVerifyConfig] = None,
    rng: Optional[np.random.Generator] = None,
    gmax_us: float = 50.0,
) -> WriteVerifyResult:
    """Program cells toward their targets with a verify loop.

    Returns the final conductances plus per-cell iteration counts and
    convergence flags.  The residual error distribution tightens with
    ``max_iterations`` and widens with ``tolerance_us`` — see the tests
    for the quantitative invariants.
    """
    config = config or WriteVerifyConfig()
    rng = rng or np.random.default_rng()
    targets = np.asarray(targets_us, dtype=np.float64)
    conductances = np.clip(
        targets + rng.normal(0.0, config.pulse_sigma_us, targets.shape),
        0.0,
        gmax_us,
    )
    iterations = np.ones(targets.shape, dtype=np.int64)
    active = np.ones(targets.shape, dtype=bool)
    for _ in range(config.max_iterations - 1):
        read = conductances + rng.normal(
            0.0, config.verify_read_noise_us, targets.shape
        )
        error = read - targets
        active = np.abs(error) > config.tolerance_us
        if not active.any():
            break
        correction = -config.correction_gain * error[active]
        pulse_noise = rng.normal(
            0.0, config.pulse_sigma_us * 0.3, int(active.sum())
        )
        conductances[active] = np.clip(
            conductances[active] + correction + pulse_noise, 0.0, gmax_us
        )
        iterations[active] += 1
    # Convergence is judged on the true conductance: verify-read noise
    # is transient and would misflag borderline cells either way.
    converged = np.abs(conductances - targets) <= config.tolerance_us
    return WriteVerifyResult(
        conductances_us=conductances,
        iterations=iterations,
        converged=converged,
    )


def residual_sigma_us(
    num_cells: int = 20_000,
    config: Optional[WriteVerifyConfig] = None,
    seed: int = 0,
    gmax_us: float = 50.0,
) -> float:
    """Measure the residual programming sigma the loop achieves.

    This is the quantity the device model's ``sigma_program_us``
    abstracts; the default configs agree to within ~30%.
    """
    rng = np.random.default_rng(seed)
    targets = np.full(num_cells, gmax_us / 2.0)
    result = write_verify(targets, config, rng, gmax_us)
    return float(np.std(result.conductances_us - targets))
