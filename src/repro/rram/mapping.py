"""Tiling large weight matrices across fixed-size crossbar arrays.

A reference library encoded at D=8192 with thousands of spectra does not
fit one 256x256 array; the weight matrix is split into row blocks (each
at most ``rows/2`` differential pairs deep) and column blocks (at most
``cols`` wide).  Row-block partial MACs are accumulated digitally;
column blocks are independent arrays operating in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .crossbar import CrossbarArray, CrossbarConfig
from .device import DEFAULT_COMPUTE_READ_TIME_S, RRAMDeviceModel


@dataclass(frozen=True)
class TileShape:
    """How a (K, M) matrix decomposes into tiles."""

    row_tiles: int
    col_tiles: int
    pairs_per_tile: int
    cols_per_tile: int

    @property
    def num_tiles(self) -> int:
        """Number of crossbar tiles used by the mapping."""
        return self.row_tiles * self.col_tiles


def plan_tiles(
    num_weight_rows: int, num_outputs: int, config: CrossbarConfig
) -> TileShape:
    """Compute the tile decomposition for a weight matrix."""
    pairs = config.max_pairs
    cols = config.cols
    return TileShape(
        row_tiles=-(-num_weight_rows // pairs),
        col_tiles=-(-num_outputs // cols),
        pairs_per_tile=pairs,
        cols_per_tile=cols,
    )


class TiledMatrix:
    """A weight matrix programmed across many crossbar tiles."""

    def __init__(
        self,
        weights: np.ndarray,
        w_max: Optional[float] = None,
        config: Optional[CrossbarConfig] = None,
        device: Optional[RRAMDeviceModel] = None,
        seed: int = 0,
        read_time_s: float = DEFAULT_COMPUTE_READ_TIME_S,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be 2-D (K, M)")
        self.config = config or CrossbarConfig()
        self.device = device or RRAMDeviceModel(seed=seed)
        self.shape = weights.shape
        self.w_max = float(w_max if w_max is not None else (np.abs(weights).max() or 1.0))
        self.plan = plan_tiles(weights.shape[0], weights.shape[1], self.config)
        self._tiles: Dict[Tuple[int, int], CrossbarArray] = {}
        self._row_slices: List[slice] = []
        self._col_slices: List[slice] = []
        pairs, cols = self.plan.pairs_per_tile, self.plan.cols_per_tile
        for r in range(self.plan.row_tiles):
            self._row_slices.append(
                slice(r * pairs, min((r + 1) * pairs, weights.shape[0]))
            )
        for c in range(self.plan.col_tiles):
            self._col_slices.append(
                slice(c * cols, min((c + 1) * cols, weights.shape[1]))
            )
        for r, row_slice in enumerate(self._row_slices):
            for c, col_slice in enumerate(self._col_slices):
                tile = CrossbarArray(
                    self.config,
                    self.device,
                    seed=seed + 997 * r + 31 * c + 1,
                    read_time_s=read_time_s,
                )
                tile.program(weights[row_slice, col_slice], self.w_max)
                self._tiles[(r, c)] = tile

    @property
    def num_tiles(self) -> int:
        """Number of crossbar tiles used by the mapping."""
        return len(self._tiles)

    def mvm(self, inputs: np.ndarray) -> np.ndarray:
        """Full-matrix noisy MVM via tile-wise accumulation."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.shape[0],):
            raise ValueError(f"inputs shape {inputs.shape} != ({self.shape[0]},)")
        output = np.zeros(self.shape[1], dtype=np.float64)
        for (r, c), tile in self._tiles.items():
            output[self._col_slices[c]] += tile.mvm(inputs[self._row_slices[r]])
        return output

    def mvm_exact(self, inputs: np.ndarray) -> np.ndarray:
        """Noise-free reference result."""
        inputs = np.asarray(inputs, dtype=np.float64)
        output = np.zeros(self.shape[1], dtype=np.float64)
        for (r, c), tile in self._tiles.items():
            output[self._col_slices[c]] += tile.mvm_exact(
                inputs[self._row_slices[r]]
            )
        return output

    def cycles_per_mvm(self) -> int:
        """Sensing cycles for one full MVM.

        Column tiles run in parallel (independent arrays); row tiles are
        sequential accumulations, each needing
        ``ceil(pairs / max_active_pairs)`` chunk cycles.
        """
        cycles = 0
        for row_slice in self._row_slices:
            pairs = row_slice.stop - row_slice.start
            cycles += -(-pairs // self.config.max_active_pairs)
        return cycles

    def total_cells(self) -> int:
        """RRAM cells consumed (2 per weight, padding excluded)."""
        return 2 * self.shape[0] * self.shape[1]
