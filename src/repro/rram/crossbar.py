"""1T1R crossbar array with differential weights and voltage sensing.

Implements the paper's compute fabric (Section 4.1):

* **differential weight mapping** (Eqs. 2-3): a signed weight ``W`` is
  held by two cells in adjacent rows,
  ``g± = ½ (1 ± W/W_max) · g_max``;
* **open-circuit voltage sensing MVM** (Eqs. 4-5): bipolar inputs drive
  differential BL voltages ``v_ref ± v_pulse``; at steady state the SL
  settles to ``V_SL = v_ref + Σ X_i (g⁺_i - g⁻_i) / (N · g_max) · v_pulse``
  — note the ``1/N`` scaling: activating more rows squeezes the same
  information into the same voltage swing, which is why computation
  error grows with the number of activated rows (Figure 9);
* **row-chunked activation**: at most ``max_active_pairs`` differential
  pairs drive simultaneously (the paper's chip supports 64); longer
  MVMs are accumulated digitally across chunks;
* non-idealities: conductance programming/relaxation noise (from the
  device model), per-read conductance fluctuation, driver droop that
  grows with the number of active rows, column offset, and ADC
  quantisation/clipping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .adc import ADC, ADCConfig
from .device import DEFAULT_COMPUTE_READ_TIME_S, RRAMDeviceModel


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry and electrical parameters of one array."""

    rows: int = 256
    cols: int = 256
    max_active_pairs: int = 64
    v_ref: float = 0.5
    v_pulse: float = 0.1
    adc_bits: int = 8
    #: Per-read conductance fluctuation (µS RMS) — thermal/telegraph noise.
    read_noise_us: float = 0.35
    #: Effective pulse amplitude droops linearly with the fraction of
    #: rows driven (wire IR drop / driver loading): at ``N`` active pairs
    #: the pulse is scaled by ``1 - droop * (2N / rows)``.
    driver_droop: float = 0.12
    #: Column offset voltage RMS (sense-amp mismatch after offset
    #: calibration), volts.  Offsets accumulate coherently across the
    #: row-chunk sweeps of one MVM, so they must stay well below the
    #: per-chunk LSB.
    offset_sigma_v: float = 0.0005

    def __post_init__(self) -> None:
        if self.rows < 2 or self.rows % 2:
            raise ValueError("rows must be an even number >= 2")
        if self.cols < 1:
            raise ValueError("cols must be >= 1")
        if not 1 <= self.max_active_pairs <= self.rows // 2:
            raise ValueError(
                "max_active_pairs must be in [1, rows/2] "
                f"(got {self.max_active_pairs} with {self.rows} rows)"
            )
        if self.v_pulse <= 0:
            raise ValueError("v_pulse must be > 0")
        if not 0 <= self.driver_droop < 1:
            raise ValueError("driver_droop must be in [0, 1)")

    @property
    def max_pairs(self) -> int:
        """Differential weight rows the array can hold."""
        return self.rows // 2

    def adc_config(self) -> ADCConfig:
        """ADC configuration matched to this crossbar's voltage range."""
        return ADCConfig(
            bits=self.adc_bits,
            v_min=self.v_ref - self.v_pulse,
            v_max=self.v_ref + self.v_pulse,
        )


@dataclass
class CrossbarStats:
    """Operation counters for the performance/energy model."""

    mvm_cycles: int = 0
    adc_conversions: int = 0
    programmed_cells: int = 0


def sense_chunk(
    inputs: np.ndarray,
    g_plus: np.ndarray,
    g_minus: np.ndarray,
    offsets: np.ndarray,
    config: CrossbarConfig,
    gmax_us: float,
    w_max: float,
    adc: ADC,
    rng: np.random.Generator,
) -> np.ndarray:
    """One open-circuit-voltage sensing cycle (Eqs. 4-5) for ≤max rows.

    ``inputs`` is the chunk's drive vector (N,), ``g_plus``/``g_minus``
    the relaxed conductances (N, M) in µS, ``offsets`` per-column offset
    voltages (M,).  Returns the digital-side MAC estimates (M,) after
    read noise, driver droop, offset, and ADC conversion.  Shared by
    :class:`CrossbarArray` and the in-memory encoder/search fabrics so
    every compute path sees identical physics.
    """
    active = len(inputs)
    if active > config.max_active_pairs:
        raise ValueError(
            f"{active} rows exceed max_active_pairs={config.max_active_pairs}"
        )
    read_plus = g_plus + rng.normal(0.0, config.read_noise_us, g_plus.shape)
    read_minus = g_minus + rng.normal(0.0, config.read_noise_us, g_minus.shape)
    droop_scale = 1.0 - config.driver_droop * (2.0 * active / config.rows)
    v_sl = (
        config.v_ref
        + (inputs @ (read_plus - read_minus))
        / (active * gmax_us)
        * (config.v_pulse * droop_scale)
        + offsets
    )
    v_digital = adc.convert(v_sl)
    # The digital side assumes the nominal pulse amplitude; droop shows
    # up as a gain error, as on real hardware.
    return (v_digital - config.v_ref) / config.v_pulse * active * w_max


class CrossbarArray:
    """One array: program a signed weight block, run noisy MVMs."""

    def __init__(
        self,
        config: Optional[CrossbarConfig] = None,
        device: Optional[RRAMDeviceModel] = None,
        seed: int = 0,
        read_time_s: float = DEFAULT_COMPUTE_READ_TIME_S,
    ) -> None:
        self.config = config or CrossbarConfig()
        self.device = device or RRAMDeviceModel(seed=seed)
        self.adc = ADC(self.config.adc_config())
        self.read_time_s = read_time_s
        self._rng = np.random.default_rng(seed + 101)
        self.stats = CrossbarStats()
        self._weights: Optional[np.ndarray] = None
        self._w_max: float = 1.0
        self._g_plus: Optional[np.ndarray] = None
        self._g_minus: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None

    @property
    def num_pairs(self) -> int:
        """Programmed differential weight rows."""
        return 0 if self._weights is None else self._weights.shape[0]

    @property
    def num_outputs(self) -> int:
        """Number of output columns the array drives."""
        return 0 if self._weights is None else self._weights.shape[1]

    def program(self, weights: np.ndarray, w_max: Optional[float] = None) -> None:
        """Program a ``(K, M)`` signed weight block differentially.

        Conductances are programmed with write noise and then relaxed
        for ``read_time_s`` (the paper computes at least two hours after
        programming), so every subsequent MVM sees the settled state.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be a 2-D (K, M) block")
        pairs, outputs = weights.shape
        if pairs > self.config.max_pairs:
            raise ValueError(
                f"{pairs} weight rows exceed array capacity "
                f"{self.config.max_pairs} pairs"
            )
        if outputs > self.config.cols:
            raise ValueError(
                f"{outputs} outputs exceed {self.config.cols} columns"
            )
        if w_max is None:
            w_max = float(np.abs(weights).max()) or 1.0
        if np.abs(weights).max() > w_max:
            raise ValueError("weights exceed w_max")
        gmax = self.device.config.gmax_us
        target_plus = 0.5 * (1.0 + weights / w_max) * gmax
        target_minus = 0.5 * (1.0 - weights / w_max) * gmax
        self._g_plus = self.device.program_and_relax(
            target_plus, self.read_time_s, self._rng
        )
        self._g_minus = self.device.program_and_relax(
            target_minus, self.read_time_s, self._rng
        )
        self._offsets = self._rng.normal(
            0.0, self.config.offset_sigma_v, outputs
        )
        self._weights = weights
        self._w_max = float(w_max)
        self.stats.programmed_cells += 2 * pairs * outputs

    def _chunks(self) -> List[np.ndarray]:
        indices = np.arange(self.num_pairs)
        size = self.config.max_active_pairs
        return [indices[i : i + size] for i in range(0, len(indices), size)]

    def mvm(self, inputs: np.ndarray) -> np.ndarray:
        """Noisy MVM: returns MAC estimates per column (float64, (M,)).

        ``inputs`` must be length ``num_pairs`` with entries in
        ``[-1, +1]`` (bipolar hypervector bits; the accelerator feeds
        multi-bit inputs bit-serially).  Chunks of at most
        ``max_active_pairs`` rows are sensed per cycle and accumulated
        digitally.
        """
        if self._g_plus is None or self._weights is None:
            raise RuntimeError("array not programmed")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.num_pairs,):
            raise ValueError(
                f"inputs shape {inputs.shape} != ({self.num_pairs},)"
            )
        if np.abs(inputs).max(initial=0.0) > 1.0:
            raise ValueError("inputs must lie in [-1, +1]")
        total = np.zeros(self.num_outputs, dtype=np.float64)
        for chunk in self._chunks():
            total += sense_chunk(
                inputs[chunk],
                self._g_plus[chunk],
                self._g_minus[chunk],
                self._offsets,
                self.config,
                self.device.config.gmax_us,
                self._w_max,
                self.adc,
                self._rng,
            )
            self.stats.mvm_cycles += 1
            self.stats.adc_conversions += self.num_outputs
        return total

    def mvm_exact(self, inputs: np.ndarray) -> np.ndarray:
        """Noise-free digital reference for the same weights."""
        if self._weights is None:
            raise RuntimeError("array not programmed")
        return np.asarray(inputs, dtype=np.float64) @ self._weights
