"""Error metrics used in the chip-measurement experiments (Section 5.2)."""

from __future__ import annotations

import numpy as np


def bit_error_rate(expected_bits: np.ndarray, actual_bits: np.ndarray) -> float:
    """Fraction of differing positions between two bit/bipolar arrays."""
    expected_bits = np.asarray(expected_bits)
    actual_bits = np.asarray(actual_bits)
    if expected_bits.shape != actual_bits.shape:
        raise ValueError(
            f"shape mismatch: {expected_bits.shape} vs {actual_bits.shape}"
        )
    if expected_bits.size == 0:
        return 0.0
    return float(np.mean(expected_bits != actual_bits))


def level_error_rate(
    expected_levels: np.ndarray, actual_levels: np.ndarray
) -> float:
    """Fraction of cells decoded to a wrong level."""
    return bit_error_rate(expected_levels, actual_levels)


def normalized_rmse(expected: np.ndarray, actual: np.ndarray) -> float:
    """RMSE normalised by the expected values' full scale.

    This is the "normalized mean square error" Figure 9b reports for the
    in-memory Hamming search: raw MAC outputs are integers, so a
    relative error metric is used instead of a bit error rate.
    Normalisation is by the peak-to-peak range of the expected values
    (falling back to their RMS, then to 1, for degenerate inputs).
    """
    expected = np.asarray(expected, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if expected.shape != actual.shape:
        raise ValueError(f"shape mismatch: {expected.shape} vs {actual.shape}")
    if expected.size == 0:
        return 0.0
    rmse = float(np.sqrt(np.mean((expected - actual) ** 2)))
    scale = float(expected.max() - expected.min())
    if scale == 0.0:
        scale = float(np.sqrt(np.mean(expected**2))) or 1.0
    return rmse / scale


def sign_error_rate(expected: np.ndarray, actual: np.ndarray) -> float:
    """Fraction of positions whose sign differs after binarisation.

    Zero is treated as positive on both sides, mirroring the encoder's
    deterministic tiebreak.  This is Figure 9a's "errors from encoding".
    """
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    if expected.shape != actual.shape:
        raise ValueError(f"shape mismatch: {expected.shape} vs {actual.shape}")
    if expected.size == 0:
        return 0.0
    return float(np.mean((expected >= 0) != (actual >= 0)))
