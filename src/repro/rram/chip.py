"""Chip-level facade: the simulated stand-in for the fabricated part.

The paper's test vehicle is a 130 nm MLC RRAM chip with 3M cells driven
through an Opal Kelly FPGA bridge.  :class:`MLCRRAMChip` plays that
role: it owns one device model, hands out storage blocks and compute
matrices, and tracks aggregate cell usage so experiments can check they
fit the part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .crossbar import CrossbarConfig
from .device import DEFAULT_COMPUTE_READ_TIME_S, DeviceConfig, RRAMDeviceModel
from .mapping import TiledMatrix
from .storage import HypervectorStore

#: Cell budget of the paper's test chip (Section 5.1.1).
PAPER_CHIP_CELLS = 3_000_000


@dataclass
class ChipInventory:
    """Running account of allocated resources."""

    storage_cells: int = 0
    compute_cells: int = 0
    stores: int = 0
    matrices: int = 0

    @property
    def total_cells(self) -> int:
        """Total MLC cells across every crossbar on the chip."""
        return self.storage_cells + self.compute_cells


class MLCRRAMChip:
    """A simulated MLC RRAM chip: storage blocks + compute tiles."""

    def __init__(
        self,
        device_config: Optional[DeviceConfig] = None,
        crossbar_config: Optional[CrossbarConfig] = None,
        total_cells: int = PAPER_CHIP_CELLS,
        seed: int = 0,
    ) -> None:
        self.device_config = device_config or DeviceConfig()
        self.crossbar_config = crossbar_config or CrossbarConfig()
        self.total_cells = total_cells
        self.seed = seed
        self.inventory = ChipInventory()
        self._next_seed = seed
        self._stores: List[HypervectorStore] = []
        self._matrices: List[TiledMatrix] = []

    def _allocation_seed(self) -> int:
        self._next_seed += 7919
        return self._next_seed

    def new_store(self, bits_per_cell: int) -> HypervectorStore:
        """Allocate a dense hypervector storage block (Section 4.3)."""
        store = HypervectorStore(
            bits_per_cell,
            device=RRAMDeviceModel(self.device_config, seed=self._allocation_seed()),
            seed=self._allocation_seed(),
        )
        self._stores.append(store)
        self.inventory.stores += 1
        return store

    def new_compute_matrix(
        self,
        weights: np.ndarray,
        w_max: Optional[float] = None,
        read_time_s: float = DEFAULT_COMPUTE_READ_TIME_S,
    ) -> TiledMatrix:
        """Program a weight matrix across compute tiles (Section 4.1)."""
        matrix = TiledMatrix(
            weights,
            w_max=w_max,
            config=self.crossbar_config,
            device=RRAMDeviceModel(self.device_config, seed=self._allocation_seed()),
            seed=self._allocation_seed(),
            read_time_s=read_time_s,
        )
        self._matrices.append(matrix)
        self.inventory.matrices += 1
        self.inventory.compute_cells += matrix.total_cells()
        return matrix

    def refresh_inventory(self) -> ChipInventory:
        """Recount storage cells (stores grow when written to)."""
        self.inventory.storage_cells = sum(
            store.num_cells for store in self._stores
        )
        return self.inventory

    @property
    def utilization(self) -> float:
        """Fraction of the chip's cell budget currently allocated."""
        self.refresh_inventory()
        return self.inventory.total_cells / self.total_cells

    def storage_capacity_hypervectors(
        self, dim: int, bits_per_cell: int
    ) -> int:
        """How many D-bit hypervectors fit in the *remaining* cells.

        The 3x headline claim (Section 5.2.1): at 3 bits/cell this is
        three times the SLC figure for the same cell budget.
        """
        self.refresh_inventory()
        remaining = max(0, self.total_cells - self.inventory.total_cells)
        cells_per_hv = -(-dim // bits_per_cell)
        return remaining // cells_per_hv
