"""Behavioural MLC RRAM device model.

Substitutes for the paper's fabricated 130 nm chip (Wan et al., Nature
2022 lineage).  The model captures the non-idealities the paper's
algorithm must tolerate:

* **programming noise** — write-verify leaves a cell within a tight
  Gaussian of its target conductance;
* **conductance relaxation** — after programming, the conductance
  distribution widens and drifts toward a mid-range attractor, growing
  with ``log10(1 + t/tau)`` (Figure 8's widening histograms);
* **retention tails** — a small, time-growing fraction of cells relaxes
  far from its target (this heavy tail is what makes 2-bit and 3-bit
  BERs of Figure 7 only a small factor apart rather than the orders of
  magnitude a pure Gaussian would give);
* **bounded range** — conductances clip to ``[0, gmax]`` (50 µS full
  scale, matching Figure 8's axis).

Default noise magnitudes were calibrated (see
``experiments/fig7_storage.py``) so the 1/2/3-bit storage BER after one
day lands near the paper's ~0.1% / ~4% / ~13%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Measurement times used throughout the paper's Figures 7 and 8.
PAPER_TIME_POINTS_S = {
    "after_1s": 1.0,
    "after_30min": 30 * 60.0,
    "after_60min": 60 * 60.0,
    "after_1day": 24 * 3600.0,
}

#: The paper collects all compute data "at least 2 hours after
#: programming to account for RRAM relaxation effects" (Section 5.2.1).
DEFAULT_COMPUTE_READ_TIME_S = 2 * 3600.0


@dataclass(frozen=True)
class DeviceConfig:
    """Physical parameters of the RRAM cell population (conductance in µS)."""

    gmax_us: float = 50.0
    sigma_program_us: float = 0.55
    #: Gaussian relaxation growth per decade of (1 + t/tau).
    sigma_relax_us_per_decade: float = 0.55
    #: Mean drift toward the attractor, fraction of distance per decade.
    drift_fraction_per_decade: float = 0.01
    #: Attractor position as a fraction of gmax (relaxed cells move here).
    attractor_fraction: float = 0.4
    #: Probability per decade that a cell joins the heavy retention tail.
    tail_probability_per_decade: float = 0.012
    #: Conductance scatter of tail cells (µS).
    tail_sigma_us: float = 12.0
    relax_tau_s: float = 0.3

    def __post_init__(self) -> None:
        if self.gmax_us <= 0:
            raise ValueError("gmax_us must be > 0")
        for name in (
            "sigma_program_us",
            "sigma_relax_us_per_decade",
            "tail_sigma_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0 <= self.attractor_fraction <= 1:
            raise ValueError("attractor_fraction must be in [0, 1]")
        if not 0 <= self.tail_probability_per_decade <= 1:
            raise ValueError("tail_probability_per_decade must be in [0, 1]")

    def decades(self, time_s: float) -> float:
        """Relaxation progress variable: log10(1 + t/tau)."""
        if time_s < 0:
            raise ValueError("time_s must be >= 0")
        return float(np.log10(1.0 + time_s / self.relax_tau_s))


class RRAMDeviceModel:
    """Stateless sampler of programmed / relaxed conductances."""

    def __init__(
        self, config: Optional[DeviceConfig] = None, seed: int = 0
    ) -> None:
        self.config = config or DeviceConfig()
        self._rng = np.random.default_rng(seed)

    def level_targets(self, num_levels: int) -> np.ndarray:
        """Equally spaced conductance targets over [0, gmax] (µS)."""
        if num_levels < 2:
            raise ValueError(f"num_levels must be >= 2, got {num_levels}")
        return np.linspace(0.0, self.config.gmax_us, num_levels)

    def program(
        self, targets_us: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Write-verify programming: targets + tight Gaussian, clipped."""
        rng = rng or self._rng
        targets_us = np.asarray(targets_us, dtype=np.float64)
        programmed = targets_us + rng.normal(
            0.0, self.config.sigma_program_us, targets_us.shape
        )
        return np.clip(programmed, 0.0, self.config.gmax_us)

    def relax(
        self,
        programmed_us: np.ndarray,
        time_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Conductances after ``time_s`` seconds of relaxation.

        The three effects (drift, Gaussian widening, heavy tail) are
        applied on top of the programmed state; the result is clipped to
        the physical range.
        """
        rng = rng or self._rng
        cfg = self.config
        programmed_us = np.asarray(programmed_us, dtype=np.float64)
        decades = cfg.decades(time_s)
        if decades == 0.0:
            return programmed_us.copy()
        attractor = cfg.attractor_fraction * cfg.gmax_us
        drifted = programmed_us + (
            cfg.drift_fraction_per_decade
            * decades
            * (attractor - programmed_us)
        )
        drifted = drifted + rng.normal(
            0.0, cfg.sigma_relax_us_per_decade * decades, programmed_us.shape
        )
        tail_probability = min(1.0, cfg.tail_probability_per_decade * decades)
        if tail_probability > 0:
            in_tail = rng.random(programmed_us.shape) < tail_probability
            if in_tail.any():
                drifted[in_tail] += rng.normal(
                    0.0, cfg.tail_sigma_us, int(in_tail.sum())
                )
        return np.clip(drifted, 0.0, cfg.gmax_us)

    def program_and_relax(
        self,
        targets_us: np.ndarray,
        time_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Convenience: program then relax in one call."""
        rng = rng or self._rng
        return self.relax(self.program(targets_us, rng), time_s, rng)

    def read_levels(
        self, conductances_us: np.ndarray, num_levels: int
    ) -> np.ndarray:
        """Decode conductances to the nearest of ``num_levels`` targets."""
        targets = self.level_targets(num_levels)
        spacing = targets[1] - targets[0]
        levels = np.rint(np.asarray(conductances_us) / spacing).astype(np.int64)
        return np.clip(levels, 0, num_levels - 1)
