"""Simulated multi-level-cell RRAM substrate (paper Sections 2.2, 4, 5.2).

Replaces the fabricated chip with a calibrated behavioural model:
device-level conductance physics (programming noise, relaxation,
retention tails), differential-pair crossbar MVM with open-circuit
voltage sensing and ADC quantisation, dense n-bit hypervector storage,
and tiling of large matrices across arrays.
"""

from .device import (
    DEFAULT_COMPUTE_READ_TIME_S,
    DeviceConfig,
    PAPER_TIME_POINTS_S,
    RRAMDeviceModel,
)
from .adc import ADC, ADCConfig
from .crossbar import CrossbarArray, CrossbarConfig, CrossbarStats, sense_chunk
from .mapping import TiledMatrix, TileShape, plan_tiles
from .storage import HypervectorStore, StorageReadout
from .chip import PAPER_CHIP_CELLS, ChipInventory, MLCRRAMChip
from .metrics import (
    bit_error_rate,
    level_error_rate,
    normalized_rmse,
    sign_error_rate,
)
from .area import AreaModel, RRAM_CELL_AREA_F2, SRAM_BITCELL_AREA_F2
from .writeverify import (
    WriteVerifyConfig,
    WriteVerifyResult,
    residual_sigma_us,
    write_verify,
)

__all__ = [
    "DEFAULT_COMPUTE_READ_TIME_S",
    "DeviceConfig",
    "PAPER_TIME_POINTS_S",
    "RRAMDeviceModel",
    "ADC",
    "ADCConfig",
    "CrossbarArray",
    "CrossbarConfig",
    "CrossbarStats",
    "sense_chunk",
    "TiledMatrix",
    "TileShape",
    "plan_tiles",
    "HypervectorStore",
    "StorageReadout",
    "PAPER_CHIP_CELLS",
    "ChipInventory",
    "MLCRRAMChip",
    "bit_error_rate",
    "level_error_rate",
    "normalized_rmse",
    "sign_error_rate",
    "AreaModel",
    "RRAM_CELL_AREA_F2",
    "SRAM_BITCELL_AREA_F2",
    "WriteVerifyConfig",
    "WriteVerifyResult",
    "residual_sigma_us",
    "write_verify",
]
