"""Workload presets standing in for the paper's datasets (Table 1).

The paper's workloads are 16k iPRG2012 queries against a 1M-spectrum
human/yeast library and 47k HEK293 queries against a 3M-spectrum human
library.  The presets here reproduce their *character* at laptop scale
(sizes are configurable via ``scale``):

* **iPRG2012-like** — the iPRG2012 study spiked defined modifications
  into a yeast background; moderate modification rate, clean spectra.
* **HEK293-like** — Chick et al.'s mass-tolerant HEK293 study found a
  large fraction of spectra carrying modifications; higher modification
  probability, noisier single-scan queries, larger library.
"""

from __future__ import annotations

from ..ms.synthetic import (
    NoiseModel,
    SyntheticWorkload,
    WorkloadConfig,
    build_workload,
    scaled_config,
)

#: Default sizes keep every experiment minutes-scale on a laptop while
#: preserving >10:1 library:query ratios like the paper's datasets.
IPRG2012_LIKE = WorkloadConfig(
    name="iPRG2012-like",
    num_references=4000,
    num_queries=400,
    seed=2012,
    modification_probability=0.45,
    foreign_fraction=0.12,
)

HEK293_LIKE = WorkloadConfig(
    name="HEK293-like",
    num_references=8000,
    num_queries=800,
    seed=1906,
    modification_probability=0.60,
    foreign_fraction=0.15,
    query_noise=NoiseModel(
        mz_jitter_sd=0.012,
        intensity_jitter_sd=0.30,
        dropout_probability=0.20,
        noise_peaks=35,
        noise_intensity_fraction=0.06,
    ),
)

#: Paper-reported workload sizes (Table 1), for side-by-side reporting.
PAPER_SIZES = {
    "iPRG2012-like": {"num_queries": 16_000, "num_references": 1_000_000},
    "HEK293-like": {"num_queries": 47_000, "num_references": 3_000_000},
}


def iprg2012_like(scale: float = 1.0) -> SyntheticWorkload:
    """Build the iPRG2012-like workload at ``scale`` x the default size."""
    return build_workload(scaled_config(IPRG2012_LIKE, scale))


def hek293_like(scale: float = 1.0) -> SyntheticWorkload:
    """Build the HEK293-like workload at ``scale`` x the default size."""
    return build_workload(scaled_config(HEK293_LIKE, scale))


def both_workloads(scale: float = 1.0):
    """Both presets, in the order the paper reports them."""
    return iprg2012_like(scale), hek293_like(scale)
