"""Figure 10: Venn diagram of identified peptides across tools.

The paper validates its search quality by showing that the peptides it
identifies largely coincide with those found by ANN-SoLo and HyperOMS.
This experiment runs all three tools — our accelerator on simulated
MLC RRAM, the HyperOMS-like binary-HDC searcher, and the ANN-SoLo-like
shifted-dot-product cascade — against the *same* decoy-augmented
library at the same FDR threshold, then reports the seven Venn regions.

Expected shape: the triple intersection dominates every tool's set, and
this work's total is comparable to the baselines'.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..accelerator.accelerator import OmsAccelerator
from ..accelerator.config import AcceleratorConfig
from ..baselines.annsolo import AnnSoloSearcher
from ..baselines.hyperoms import HyperOmsSearcher
from ..hdc.spaces import HDSpaceConfig
from ..ms.decoy import append_decoys
from ..ms.synthetic import SyntheticWorkload
from ..oms.fdr import grouped_fdr
from ..oms.pipeline import decoy_factory_for
from .report import ExperimentResult
from .workloads import iprg2012_like


def venn_regions(
    set_a: Set[str], set_b: Set[str], set_c: Set[str]
) -> Dict[str, int]:
    """Sizes of the 7 regions of a 3-set Venn diagram.

    Convention: ``set_a`` = ANN-SoLo, ``set_b`` = HyperOMS, ``set_c`` =
    this work.
    """
    return {
        "only_annsolo": len(set_a - set_b - set_c),
        "only_hyperoms": len(set_b - set_a - set_c),
        "only_this_work": len(set_c - set_a - set_b),
        "annsolo_and_hyperoms": len((set_a & set_b) - set_c),
        "annsolo_and_this_work": len((set_a & set_c) - set_b),
        "hyperoms_and_this_work": len((set_b & set_c) - set_a),
        "all_three": len(set_a & set_b & set_c),
    }


def run_fig10(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 2048,
    fdr_threshold: float = 0.01,
    accelerator_config: Optional[AcceleratorConfig] = None,
    seed: int = 10,
) -> ExperimentResult:
    """Run the three tools and tabulate the Venn regions."""
    if workload is None:
        workload = iprg2012_like(scale=0.3)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )

    def identified(search_result) -> Set[str]:
        """Peptide keys accepted at the FDR threshold for one searcher."""
        accepted = grouped_fdr(search_result.psms, fdr_threshold)
        return {psm.peptide_key for psm in accepted if psm.peptide_key}

    annsolo = AnnSoloSearcher(library)
    set_annsolo = identified(annsolo.search(workload.queries))

    hyperoms = HyperOmsSearcher(library, dim=dim, seed=seed + 1)
    set_hyperoms = identified(hyperoms.search(workload.queries))

    accelerator = OmsAccelerator(
        config=accelerator_config or AcceleratorConfig(seed=seed + 2),
        space_config=HDSpaceConfig(
            dim=dim, num_levels=16, id_precision_bits=3, seed=seed + 3
        ),
    )
    searcher = accelerator.build_searcher(library)
    set_this_work = identified(searcher.search(workload.queries))

    regions = venn_regions(set_annsolo, set_hyperoms, set_this_work)
    rows = [[region, count] for region, count in regions.items()]
    rows.append(["total_annsolo", len(set_annsolo)])
    rows.append(["total_hyperoms", len(set_hyperoms)])
    rows.append(["total_this_work", len(set_this_work)])
    union = len(set_annsolo | set_hyperoms | set_this_work)
    agreement = regions["all_three"] / union if union else 0.0
    return ExperimentResult(
        experiment_id="fig10",
        title=f"Venn of identified peptides ({workload.config.name}, {fdr_threshold:.0%} FDR)",
        headers=["region", "peptides"],
        rows=rows,
        notes={
            "triple_overlap_fraction_of_union": round(agreement, 3),
            "paper_shape": "majority of identifications shared by all three tools",
        },
    )
