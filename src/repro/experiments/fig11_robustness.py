"""Figure 11: HD robustness — identifications vs. injected bit errors.

Random sign flips at rates {0.15%, 1%, 5%, 10%, 20%} are injected into
both the stored reference hypervectors and each query hypervector
("errors for encoding and search", Section 5.3.2), for ID precisions of
1/2/3 bits.  The paper's shape: identification counts stay essentially
flat up to ~10% BER and drop at 20%, with the multi-bit ID scheme
consistently identifying more peptides.

References are encoded once per precision; the BER sweep then reuses
the clean hypervectors, which keeps the whole sweep fast.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hdc.encoder import SpectrumEncoder
from ..hdc.noise import flip_bits
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.decoy import append_decoys
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.synthetic import SyntheticWorkload
from ..ms.vectorize import BinningConfig, vectorize
from ..oms.candidates import CandidateIndex, WindowConfig
from ..oms.fdr import grouped_fdr
from ..oms.pipeline import decoy_factory_for
from ..oms.psm import PSM
from .report import ExperimentResult
from .workloads import iprg2012_like

#: The paper's BER sweep points.
PAPER_BER_POINTS = (0.0015, 0.01, 0.05, 0.10, 0.20)


def _count_identifications(
    queries,
    query_hvs: np.ndarray,
    reference_spectra,
    reference_hvs: np.ndarray,
    index: CandidateIndex,
    ber: float,
    fdr_threshold: float,
    rng: np.random.Generator,
) -> int:
    """Inject BER into both sides, search, FDR-filter, count peptides."""
    noisy_refs = flip_bits(reference_hvs, ber, rng).astype(np.float32)
    noisy_queries = flip_bits(query_hvs, ber, rng)
    psms: List[PSM] = []
    for query, query_hv in zip(queries, noisy_queries):
        positions = index.select_open(query)
        if len(positions) == 0:
            continue
        scores = noisy_refs[positions] @ query_hv.astype(np.float32)
        best = int(np.argmax(scores))
        reference = reference_spectra[int(positions[best])]
        psms.append(
            PSM(
                query_id=query.identifier,
                reference_id=reference.identifier,
                peptide_key=reference.peptide_key(),
                score=float(scores[best]),
                is_decoy=reference.is_decoy,
                precursor_mass_difference=query.neutral_mass
                - reference.neutral_mass,
            )
        )
    accepted = grouped_fdr(psms, fdr_threshold)
    return len({psm.peptide_key for psm in accepted if psm.peptide_key})


def run_fig11(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 4096,
    bers: Sequence[float] = PAPER_BER_POINTS,
    id_precisions: Sequence[int] = (1, 2, 3),
    num_levels: int = 32,
    fdr_threshold: float = 0.01,
    seed: int = 11,
) -> ExperimentResult:
    """Sweep BER x ID precision on one workload."""
    if workload is None:
        workload = iprg2012_like(scale=0.5)
    binning = BinningConfig()
    preprocessing = PreprocessingConfig()
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    kept: List[Tuple] = []
    for reference in library:
        processed = preprocess(reference, preprocessing)
        if processed is not None:
            kept.append((reference, processed))
    reference_spectra = [original for original, _ in kept]
    index = CandidateIndex(reference_spectra, WindowConfig())
    processed_queries: List[Tuple] = []
    for query in workload.queries:
        processed = preprocess(query, preprocessing)
        if processed is not None:
            processed_queries.append((query, processed))

    # Binning is shared across the precision sweep, so vectorise each
    # spectrum once and feed SparseVectors straight into the fused
    # batch encoder (encode_batch) for every precision.
    reference_vectors = [vectorize(p, binning) for _, p in kept]
    query_vectors = [vectorize(p, binning) for _, p in processed_queries]

    columns = {precision: [] for precision in id_precisions}
    for precision in id_precisions:
        space = HDSpace(
            HDSpaceConfig(
                dim=dim,
                num_bins=binning.num_bins,
                num_levels=num_levels,
                id_precision_bits=precision,
                chunked=True,
                seed=seed + precision,
            )
        )
        encoder = SpectrumEncoder(space, binning)
        reference_hvs = encoder.encode_batch(reference_vectors)
        query_hvs = encoder.encode_batch(query_vectors)
        rng = np.random.default_rng(seed + 100 * precision)
        for ber in bers:
            columns[precision].append(
                _count_identifications(
                    [q for q, _ in processed_queries],
                    query_hvs,
                    reference_spectra,
                    reference_hvs,
                    index,
                    ber,
                    fdr_threshold,
                    rng,
                )
            )
    rows = []
    for row_index, ber in enumerate(bers):
        rows.append(
            [f"{ber:.2%}"]
            + [columns[precision][row_index] for precision in id_precisions]
        )
    return ExperimentResult(
        experiment_id="fig11",
        title=f"HD robustness on {workload.config.name}: identifications vs. BER",
        headers=["BER"]
        + [f"ID_precision_{precision}bit" for precision in id_precisions],
        rows=rows,
        notes={
            "paper_shape": "flat to ~10% BER, drop at 20%; multi-bit IDs identify more",
            "dim": dim,
        },
    )
