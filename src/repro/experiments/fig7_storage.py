"""Figure 7: bit error rate from hypervector storage over time.

Random binary hypervectors are packed at 1/2/3 bits per cell (Section
4.3), programmed into the simulated MLC array, and read back after the
paper's four relaxation intervals (right after programming / 1 s, 30
minutes, 60 minutes, 1 day).  The reproduced shape: BER grows with both
time and bits-per-cell; 1 bit/cell stays near zero, 3 bits/cell reaches
~10-14% after a day — exactly the error level Figure 11 shows the HD
algorithm tolerating.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..rram.device import DeviceConfig, PAPER_TIME_POINTS_S, RRAMDeviceModel
from ..rram.storage import HypervectorStore
from .report import ExperimentResult


def run_fig7(
    num_hypervectors: int = 64,
    dim: int = 4096,
    device_config: Optional[DeviceConfig] = None,
    time_points: Optional[Dict[str, float]] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Measure storage BER for 1/2/3 bits per cell at each time point."""
    time_points = time_points or PAPER_TIME_POINTS_S
    rng = np.random.default_rng(seed)
    hypervectors = (
        rng.integers(0, 2, size=(num_hypervectors, dim), dtype=np.int8) * 2 - 1
    )
    rows = []
    for label, time_s in time_points.items():
        row = [label]
        for bits_per_cell in (1, 2, 3):
            store = HypervectorStore(
                bits_per_cell,
                device=RRAMDeviceModel(device_config, seed=seed + bits_per_cell),
                seed=seed + 31 * bits_per_cell,
            )
            store.write(hypervectors)
            readout = store.read(time_s)
            row.append(round(readout.bit_error_rate * 100, 3))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig7",
        title="Bit error rate from storage (%) vs. relaxation time",
        headers=["time", "1_bit_per_cell", "2_bits_per_cell", "3_bits_per_cell"],
        rows=rows,
        notes={
            "paper_1day": "~0.1% / ~4% / ~12-14% for 1/2/3 bits per cell",
            "cells_per_hv_at_3bpc": -(-dim // 3),
            "storage_capacity_gain_vs_slc": "3x at 3 bits per cell",
        },
    )
