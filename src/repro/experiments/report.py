"""Plain-text rendering of experiment results.

Every experiment module returns an :class:`ExperimentResult`; this
module renders it as the same rows/series the paper's tables and
figures report, so benchmark output can be eyeballed against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def format_cell(value: Any) -> str:
    """Human-friendly cell formatting (bulky containers summarised)."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, (dict, list, tuple)) and len(value) > 8:
        return f"<{type(value).__name__} with {len(value)} entries>"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned monospace table with a title rule."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table/figure: tabular data plus free-form notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The paper-comparable text block."""
        body = format_table(f"[{self.experiment_id}] {self.title}", self.headers, self.rows)
        if self.notes:
            note_lines = [
                f"  {key}: {format_cell(value)}" for key, value in self.notes.items()
            ]
            body += "\n" + "\n".join(note_lines)
        return body

    def column(self, header: str) -> List[Any]:
        """Extract one column by header name (for assertions in benches)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
