"""Figure 8: conductance relaxation of 2/4/8-level RRAM.

The paper shows per-level conductance histograms during programming and
after 30 min / 60 min / 1 day: distributions start as tight peaks and
progressively widen and overlap.  The text rendering reports, per level
and time point, the mean and standard deviation of the measured
conductance plus the *overlap fraction* (cells decoded to a wrong
level) — which is what the histograms visually convey; raw histogram
arrays are included in the notes for plotting.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..rram.device import DeviceConfig, PAPER_TIME_POINTS_S, RRAMDeviceModel
from .report import ExperimentResult

#: "During programming" plus the paper's relaxation intervals.
FIG8_TIME_POINTS_S = {
    "during_programming": 0.0,
    "after_30min": PAPER_TIME_POINTS_S["after_30min"],
    "after_60min": PAPER_TIME_POINTS_S["after_60min"],
    "after_1day": PAPER_TIME_POINTS_S["after_1day"],
}


def run_fig8(
    cells_per_level: int = 4000,
    level_counts=(2, 4, 8),
    device_config: Optional[DeviceConfig] = None,
    seed: int = 8,
    histogram_bins: int = 50,
) -> ExperimentResult:
    """Program equal populations of every level; track their spread."""
    rows = []
    histograms: Dict[str, np.ndarray] = {}
    for num_levels in level_counts:
        device = RRAMDeviceModel(device_config, seed=seed + num_levels)
        targets = device.level_targets(num_levels)
        true_levels = np.repeat(np.arange(num_levels), cells_per_level)
        programmed = device.program(targets[true_levels])
        for label, time_s in FIG8_TIME_POINTS_S.items():
            relaxed = (
                programmed.copy()
                if time_s == 0.0
                else device.relax(programmed, time_s)
            )
            decoded = device.read_levels(relaxed, num_levels)
            wrong = float(np.mean(decoded != true_levels))
            spreads = [
                float(np.std(relaxed[true_levels == level]))
                for level in range(num_levels)
            ]
            rows.append(
                [
                    num_levels,
                    label,
                    round(float(np.mean(spreads)), 3),
                    round(float(np.max(spreads)), 3),
                    round(wrong * 100, 3),
                ]
            )
            histograms[f"{num_levels}level_{label}"] = np.histogram(
                relaxed, bins=histogram_bins, range=(0.0, device.config.gmax_us)
            )[0]
    return ExperimentResult(
        experiment_id="fig8",
        title="Conductance relaxation of 2/4/8-level RRAM",
        headers=[
            "levels",
            "time",
            "mean_sigma_us",
            "max_sigma_us",
            "level_overlap_pct",
        ],
        rows=rows,
        notes={
            "gmax_us": (device_config or DeviceConfig()).gmax_us,
            "histogram_bins": histogram_bins,
            "paper_shape": "peaks widen/shift with time; 8-level overlaps most",
            "histograms": {k: v.tolist() for k, v in histograms.items()},
        },
    )
