"""Figure 13: identifications vs. HD dimension, ideal vs. in-RRAM.

Sweeps the hypervector dimension (the paper uses 8192 down to 1024) and
compares the *ideal* pipeline (exact digital encoding and search) with
the *in-RRAM* pipeline at 3 bits/cell (in-memory encoding, analog
search, and the dense query-hypervector storage round trip).

Expected shape: identifications fall as the dimension shrinks (lower
dimension -> less separability and more noise sensitivity), with the
in-RRAM curve at or below the ideal curve, converging at high D.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..accelerator.accelerator import OmsAccelerator
from ..accelerator.config import AcceleratorConfig
from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.decoy import append_decoys
from ..ms.synthetic import SyntheticWorkload
from ..ms.vectorize import BinningConfig
from ..oms.fdr import grouped_fdr
from ..oms.pipeline import decoy_factory_for
from ..oms.search import HDOmsSearcher, PackedBackend
from .report import ExperimentResult
from .workloads import iprg2012_like


def _count_ids(searcher, queries, fdr_threshold: float) -> int:
    result = searcher.search(queries)
    accepted = grouped_fdr(result.psms, fdr_threshold)
    return len({psm.peptide_key for psm in accepted if psm.peptide_key})


def run_fig13(
    workload: Optional[SyntheticWorkload] = None,
    dims: Sequence[int] = (4096, 2048, 1024, 512, 256),
    id_precision_bits: int = 3,
    fdr_threshold: float = 0.01,
    storage_bits_per_cell: int = 3,
    seed: int = 13,
) -> ExperimentResult:
    """Identifications vs. dimension for ideal and in-RRAM pipelines."""
    if workload is None:
        workload = iprg2012_like(scale=0.2)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    binning = BinningConfig()
    rows = []
    for dim in dims:
        space_config = HDSpaceConfig(
            dim=dim,
            num_bins=binning.num_bins,
            num_levels=16,
            id_precision_bits=id_precision_bits,
            chunked=True,
            seed=seed + dim,
        )
        # Ideal: exact digital encode + packed Hamming search.
        ideal_encoder = SpectrumEncoder(HDSpace(space_config), binning)
        ideal_searcher = HDOmsSearcher(
            ideal_encoder, library, backend=PackedBackend()
        )
        ideal_ids = _count_ids(ideal_searcher, workload.queries, fdr_threshold)
        # In-RRAM: analog encode + analog search + MLC storage round trip.
        accelerator = OmsAccelerator(
            config=AcceleratorConfig(
                storage_bits_per_cell=storage_bits_per_cell, seed=seed + dim
            ),
            space_config=space_config,
            binning=binning,
            store_query_hypervectors=True,
        )
        rram_searcher = accelerator.build_searcher(library)
        rram_ids = _count_ids(rram_searcher, workload.queries, fdr_threshold)
        rows.append([dim, ideal_ids, rram_ids])
    return ExperimentResult(
        experiment_id="fig13",
        title=f"Identifications vs. HD dimension ({workload.config.name}, "
        f"{id_precision_bits}-bit IDs)",
        headers=["hd_dim", "ideal", f"in_rram_{storage_bits_per_cell}bpc"],
        rows=rows,
        notes={
            "paper_shape": "identifications fall as D shrinks; RRAM curve <= ideal",
            "num_queries": len(workload.queries),
            "library_with_decoys": len(library),
        },
    )
