"""Figure 12 + Section 5.3.3: energy efficiency and speedup.

Evaluates the analytical cost models at the paper's workload scale
(16k queries x 1M references).  The reproduction targets:

* speedups of this work: 76.7x vs. ANN-SoLo CPU, 24.8x vs. ANN-SoLo
  GPU, 1.7x vs. HyperOMS GPU;
* energy-efficiency improvement over ANN-SoLo CPU: 1x (CPU), 1.41x
  (ANN-SoLo GPU), 5.44x (HyperOMS GPU), 2993.61x (this work).

Our model reproduces the speedups and the CPU/GPU energy ordering with
a two-to-three order-of-magnitude gap for this work; the HyperOMS
energy point comes out higher than the paper's 5.44x because the
paper's own speedup and energy figures cannot be produced by any single
physically-possible (time, power) pair for a 450 W GPU — see
EXPERIMENTS.md for the arithmetic.
"""

from __future__ import annotations

from typing import Optional

from ..accelerator.perf import (
    AcceleratorPerfModel,
    PAPER_IPRG2012_SHAPE,
    WorkloadShape,
    energy_improvements,
    platform_costs,
    speedups_vs_this_work,
)
from .report import ExperimentResult

#: The paper's reported values, for side-by-side printing.
PAPER_ENERGY_IMPROVEMENTS = {
    "ann-solo-cpu-i7-11700K": 1.00,
    "ann-solo-gpu-rtx4090": 1.41,
    "hyperoms-gpu-rtx4090": 5.44,
    "this-work-mlc-rram": 2993.61,
}
PAPER_SPEEDUPS = {
    "ann-solo-cpu-i7-11700K": 76.7,
    "ann-solo-gpu-rtx4090": 24.8,
    "hyperoms-gpu-rtx4090": 1.7,
}


def run_fig12(
    shape: Optional[WorkloadShape] = None,
    model: Optional[AcceleratorPerfModel] = None,
) -> ExperimentResult:
    """Evaluate all platform models and tabulate ratios vs. the paper."""
    shape = shape or PAPER_IPRG2012_SHAPE
    model = model or AcceleratorPerfModel()
    costs = platform_costs(shape, model)
    energy = energy_improvements(shape, model)
    speedup = speedups_vs_this_work(shape, model)
    rows = []
    for name, cost in costs.items():
        rows.append(
            [
                name,
                round(cost.seconds, 3),
                round(cost.joules, 3),
                round(energy[name], 2),
                PAPER_ENERGY_IMPROVEMENTS.get(name, "-"),
                round(speedup[name], 1) if name in speedup else "-",
                PAPER_SPEEDUPS.get(name, "-"),
            ]
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Energy efficiency & speedup (modelled, iPRG2012 scale)",
        headers=[
            "platform",
            "time_s",
            "energy_J",
            "energy_impr",
            "paper_energy",
            "ours_speedup_vs",
            "paper_speedup",
        ],
        rows=rows,
        notes={
            "num_queries": shape.num_queries,
            "num_references": shape.num_references,
            "open_candidates_per_query": int(shape.avg_open_candidates),
        },
    )
