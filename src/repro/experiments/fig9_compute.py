"""Figure 9: in-memory computation errors vs. number of activated rows.

Two sub-experiments, mirroring Section 5.2.2:

* **(a) encoding errors** — the in-memory encoder (chunked-LV MVM over
  the ID codebook) is compared against the exact digital encoder on
  real synthetic spectra; the metric is the sign-disagreement rate of
  Eq. 1's accumulator (dimensions with an exactly-zero accumulator are
  excluded: their sign is resolved by the digital tiebreak, so neither
  outcome is an error).  The ID precision (1/2/3 bits) sets the number
  of conductance levels the cells must hold — the paper's "1/2/3 bits
  per cell".
* **(b) search errors** — raw MVM outputs of a crossbar holding
  n-bit-alphabet weights are compared against exact dot products; the
  metric is the range-normalised RMSE, as the paper reports for the
  integer-valued Hamming-search outputs.

Both errors must grow with the number of activated rows (the 1/N
voltage-sensing scale factor plus ADC resolution shared across a larger
full scale) and with bits per cell (tighter level margins).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..accelerator.config import AcceleratorConfig
from ..accelerator.im_encoder import InMemoryEncoder
from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.preprocessing import preprocess
from ..ms.synthetic import WorkloadConfig, build_workload
from ..ms.vectorize import BinningConfig, vectorize
from ..rram.crossbar import CrossbarArray, CrossbarConfig
from ..rram.device import DeviceConfig
from ..rram.metrics import normalized_rmse
from .report import ExperimentResult

#: Signed alphabets for 1/2/3-bit weights (zero excluded, Section 4.2.2).
_WEIGHT_ALPHABETS = {
    1: np.array([-1, 1]),
    2: np.array([-2, -1, 1, 2]),
    3: np.array([-4, -3, -2, -1, 1, 2, 3, 4]),
}


def _crossbar_config(active_rows: int, base: CrossbarConfig) -> CrossbarConfig:
    rows = max(base.rows, 2 * active_rows)
    return replace(base, rows=rows, max_active_pairs=active_rows)


def run_fig9_encoding(
    activated_rows: Sequence[int] = (16, 32, 48, 64, 96, 128),
    dim: int = 1024,
    num_spectra: int = 12,
    device_config: Optional[DeviceConfig] = None,
    seed: int = 9,
) -> ExperimentResult:
    """Sub-figure (a): encoding bit error rate vs. activated rows."""
    binning = BinningConfig()
    # Long peptides + generous background give ~100-150 retained peaks,
    # matching the paper's preprocessing output (Section 3.1) — the
    # activated-rows knob only bites when spectra have at least that
    # many peaks to drive simultaneously.
    from ..ms.synthetic import NoiseModel

    workload = build_workload(
        WorkloadConfig(
            name="fig9",
            num_references=num_spectra,
            num_queries=0,
            seed=seed,
            min_length=28,
            max_length=45,
            reference_noise=NoiseModel(
                mz_jitter_sd=0.002,
                intensity_jitter_sd=0.05,
                dropout_probability=0.0,
                noise_peaks=130,
                noise_intensity_fraction=0.08,
            ),
        )
    )
    vectors = []
    for spectrum in workload.references:
        processed = preprocess(spectrum)
        if processed is not None:
            vectors.append(vectorize(processed, binning))
    rows = []
    base_crossbar = CrossbarConfig()
    for active in activated_rows:
        row = [active]
        for bits in (1, 2, 3):
            space = HDSpace(
                HDSpaceConfig(
                    dim=dim,
                    num_bins=binning.num_bins,
                    num_levels=16,
                    id_precision_bits=bits,
                    chunked=True,
                    seed=seed + bits,
                )
            )
            exact = SpectrumEncoder(space, binning)
            config = AcceleratorConfig(
                crossbar=_crossbar_config(active, base_crossbar),
                device=device_config or DeviceConfig(),
                seed=seed + 13 * bits + active,
            )
            encoder = InMemoryEncoder(exact, config)
            row.append(
                round(encoder.encoding_bit_error_rate(vectors) * 100, 2)
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9a",
        title="Errors from encoding (%) vs. number of activated rows",
        headers=["activated_rows", "1_bit_per_cell", "2_bits_per_cell", "3_bits_per_cell"],
        rows=rows,
        notes={"paper_shape": "grows with rows and bits/cell, up to ~40%"},
    )


def run_fig9_search(
    activated_rows: Sequence[int] = (16, 32, 48, 64, 96, 128),
    num_outputs: int = 64,
    num_mvms: int = 25,
    device_config: Optional[DeviceConfig] = None,
    seed: int = 99,
) -> ExperimentResult:
    """Sub-figure (b): search output NRMSE vs. activated rows."""
    rng = np.random.default_rng(seed)
    rows = []
    base_crossbar = CrossbarConfig(cols=num_outputs)
    for active in activated_rows:
        row = [active]
        for bits in (1, 2, 3):
            alphabet = _WEIGHT_ALPHABETS[bits]
            config = _crossbar_config(active, base_crossbar)
            array = CrossbarArray(
                config,
                device=None,
                seed=seed + 7 * bits + active,
            )
            if device_config is not None:
                from ..rram.device import RRAMDeviceModel

                array = CrossbarArray(
                    config,
                    device=RRAMDeviceModel(device_config, seed=seed + bits),
                    seed=seed + 7 * bits + active,
                )
            weights = rng.choice(alphabet, size=(active, num_outputs)).astype(
                np.float64
            )
            array.program(weights, w_max=float(np.abs(alphabet).max()))
            errors = []
            for _ in range(num_mvms):
                inputs = rng.choice([-1.0, 1.0], size=active)
                errors.append(
                    normalized_rmse(array.mvm_exact(inputs), array.mvm(inputs))
                )
            row.append(round(float(np.mean(errors)), 4))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9b",
        title="Errors from search (NRMSE) vs. number of activated rows",
        headers=["activated_rows", "1_bit_per_cell", "2_bits_per_cell", "3_bits_per_cell"],
        rows=rows,
        notes={
            "paper_shape": "NRMSE 0.02-0.12, grows with rows and bits/cell",
            "paper_operating_point": "64 rows with 8-level cells (16x over prior MLC macro)",
        },
    )
