"""Ablations of the paper's design choices.

The paper motivates four co-design decisions; each gets a controlled
experiment here:

* **chunked level hypervectors** (Section 4.2.1) — claimed to have
  "minimal impact on final results" while turning element-wise encoding
  into MVM: we compare identifications under classic vs. chunked level
  construction, and the sensing-cycle count of both dataflows;
* **multi-bit ID hypervectors** (Section 4.2.2) — claimed to improve
  quality at no hardware cost: identifications vs. ID precision on a
  clean (noise-free) pipeline;
* **differential weight mapping** (Section 4.1.1) — claimed to be "a
  better solution to challenges arising from non-linearities": MVM
  NRMSE of differential vs. single-cell (non-differential) mapping
  under identical device noise;
* **subgroup FDR** (ANN-SoLo heritage) — grouped vs. global q-values:
  how many modified identifications the grouped variant rescues.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.decoy import append_decoys
from ..ms.synthetic import SyntheticWorkload
from ..ms.vectorize import BinningConfig
from ..oms.fdr import assign_qvalues, filter_at_fdr, grouped_fdr
from ..oms.pipeline import decoy_factory_for
from ..oms.search import HDOmsSearcher
from ..rram.adc import ADC
from ..rram.crossbar import CrossbarConfig
from ..rram.device import DEFAULT_COMPUTE_READ_TIME_S, RRAMDeviceModel
from ..rram.metrics import normalized_rmse
from .report import ExperimentResult
from .workloads import iprg2012_like


def _identifications(searcher, queries, fdr_threshold: float) -> int:
    result = searcher.search(queries)
    accepted = grouped_fdr(result.psms, fdr_threshold)
    return len({psm.peptide_key for psm in accepted if psm.peptide_key})


def run_ablation_levels(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 2048,
    num_levels: int = 32,
    fdr_threshold: float = 0.01,
    seed: int = 41,
) -> ExperimentResult:
    """Chunked vs. classic level hypervectors (Section 4.2.1).

    Quality must be statistically indistinguishable; the cycle counts
    show why the chunked variant exists: element-wise encoding needs one
    cycle per *dimension* per row-group, the chunked variant one cycle
    per *chunk*.
    """
    if workload is None:
        workload = iprg2012_like(scale=0.25)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    binning = BinningConfig()
    rows = []
    max_active = CrossbarConfig().max_active_pairs
    avg_peaks = 100.0
    row_groups = -(-int(avg_peaks) // max_active)
    for chunked in (False, True):
        space = HDSpace(
            HDSpaceConfig(
                dim=dim,
                num_bins=binning.num_bins,
                num_levels=num_levels,
                id_precision_bits=3,
                chunked=chunked,
                seed=seed + int(chunked),
            )
        )
        searcher = HDOmsSearcher(SpectrumEncoder(space, binning), library)
        ids = _identifications(searcher, workload.queries, fdr_threshold)
        if chunked:
            cycles = space.config.resolved_num_chunks * row_groups
        else:
            cycles = dim * row_groups  # element-wise: one column at a time
        rows.append(
            ["chunked" if chunked else "classic", ids, cycles]
        )
    return ExperimentResult(
        experiment_id="ablation_levels",
        title="Chunked vs. classic level hypervectors (Sec. 4.2.1)",
        headers=["level_scheme", "identifications", "encode_cycles_per_spectrum"],
        rows=rows,
        notes={
            "claim": "similar quality, ~D/num_chunks fewer encoding cycles",
            "dim": dim,
        },
    )


def run_ablation_id_precision(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 2048,
    precisions: Sequence[int] = (1, 2, 3),
    fdr_threshold: float = 0.01,
    seed: int = 43,
) -> ExperimentResult:
    """Multi-bit ID hypervectors on a clean pipeline (Section 4.2.2)."""
    if workload is None:
        workload = iprg2012_like(scale=0.25)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    binning = BinningConfig()
    rows = []
    for bits in precisions:
        space = HDSpace(
            HDSpaceConfig(
                dim=dim,
                num_bins=binning.num_bins,
                num_levels=32,
                id_precision_bits=bits,
                seed=seed,
            )
        )
        searcher = HDOmsSearcher(SpectrumEncoder(space, binning), library)
        ids = _identifications(searcher, workload.queries, fdr_threshold)
        rows.append([f"{bits}-bit", ids])
    return ExperimentResult(
        experiment_id="ablation_id_precision",
        title="ID hypervector precision vs. identifications (Sec. 4.2.2)",
        headers=["id_precision", "identifications"],
        rows=rows,
        notes={"claim": "multi-bit IDs match or beat binary at no HW cost"},
    )


def _nondifferential_mvm(
    weights: np.ndarray,
    inputs: np.ndarray,
    device: RRAMDeviceModel,
    config: CrossbarConfig,
    adc: ADC,
    rng: np.random.Generator,
    w_max: float,
) -> np.ndarray:
    """Single-cell-per-weight MVM with digital common-mode subtraction.

    ``g = ½ (1 + W/Wmax) · gmax`` on ONE cell; the common-mode term
    ``Σ x_i / 2`` is removed digitally.  Unlike the differential pair,
    gain errors (driver droop) now act on the full common-mode current,
    which is what makes this mapping fragile — exactly the paper's
    argument for Section 4.1.1.
    """
    gmax = device.config.gmax_us
    targets = 0.5 * (1.0 + weights / w_max) * gmax
    conductances = device.program_and_relax(
        targets, DEFAULT_COMPUTE_READ_TIME_S, rng
    )
    active = len(inputs)
    read = conductances + rng.normal(0.0, config.read_noise_us, conductances.shape)
    droop_scale = 1.0 - config.driver_droop * (active / config.rows)
    v_sl = (
        config.v_ref
        + (inputs @ read) / (active * gmax) * (config.v_pulse * droop_scale)
        + rng.normal(0.0, config.offset_sigma_v, weights.shape[1])
    )
    v_digital = adc.convert(v_sl)
    raw = (v_digital - config.v_ref) / config.v_pulse * active
    # Digital common-mode subtraction: MAC = (2*raw - sum(x)) * Wmax.
    return (2.0 * raw - float(inputs.sum())) * w_max


def run_ablation_weight_mapping(
    activated_rows: Sequence[int] = (16, 32, 64),
    num_outputs: int = 64,
    num_mvms: int = 25,
    seed: int = 47,
) -> ExperimentResult:
    """Differential vs. non-differential weight mapping (Section 4.1.1)."""
    from ..rram.crossbar import CrossbarArray

    rng = np.random.default_rng(seed)
    rows = []
    for active in activated_rows:
        config = CrossbarConfig(
            rows=max(256, 2 * active), cols=num_outputs, max_active_pairs=active
        )
        weights = rng.choice([-1.0, 1.0], size=(active, num_outputs))
        array = CrossbarArray(config, seed=seed + active)
        array.program(weights, w_max=1.0)
        device = RRAMDeviceModel(seed=seed + active + 1)
        adc = ADC(config.adc_config())
        nd_rng = np.random.default_rng(seed + active + 2)
        diff_errors, nondiff_errors = [], []
        for _ in range(num_mvms):
            inputs = rng.choice([-1.0, 1.0], size=active)
            exact = array.mvm_exact(inputs)
            diff_errors.append(normalized_rmse(exact, array.mvm(inputs)))
            nondiff = _nondifferential_mvm(
                weights, inputs, device, config, adc, nd_rng, 1.0
            )
            nondiff_errors.append(normalized_rmse(exact, nondiff))
        rows.append(
            [
                active,
                round(float(np.mean(diff_errors)), 4),
                round(float(np.mean(nondiff_errors)), 4),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_weight_mapping",
        title="Differential vs. non-differential weight mapping (Sec. 4.1.1)",
        headers=["activated_rows", "differential_nrmse", "nondifferential_nrmse"],
        rows=rows,
        notes={
            "claim": "differential pairs suppress common-mode nonlinearity",
        },
    )


def run_ablation_encoding_scheme(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 2048,
    fdr_threshold: float = 0.01,
    seed: int = 59,
) -> ExperimentResult:
    """ID-Level vs. random projection vs. permutation encoding (§3.2).

    The paper argues the alternatives "may not effectively capture key
    features, such as m/z values and peak intensities"; this ablation
    runs all three encoders through the identical search + FDR stack.
    """
    from ..hdc.alt_encoders import PermutationEncoder, RandomProjectionEncoder

    if workload is None:
        workload = iprg2012_like(scale=0.25)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=dim,
            num_bins=binning.num_bins,
            num_levels=32,
            id_precision_bits=3,
            seed=seed,
        )
    )
    encoders = [
        ("id-level", SpectrumEncoder(space, binning)),
        ("random-projection", RandomProjectionEncoder(space, binning)),
        ("permutation", PermutationEncoder(space, binning)),
    ]
    rows = []
    for name, encoder in encoders:
        searcher = HDOmsSearcher(encoder, library)
        result = searcher.search(workload.queries)
        accepted = grouped_fdr(result.psms, fdr_threshold)
        ids = len({psm.peptide_key for psm in accepted if psm.peptide_key})
        correct = sum(
            1
            for psm in accepted
            if workload.truth.get(psm.query_id) == psm.peptide_key
        )
        rows.append([name, ids, correct])
    return ExperimentResult(
        experiment_id="ablation_encoding_scheme",
        title="Encoding scheme comparison (Sec. 3.2)",
        headers=["encoder", "identifications", "correct_psms"],
        rows=rows,
        notes={
            "claim": "ID-Level captures m/z+intensity best",
            "dim": dim,
        },
    )


def run_ablation_fdr(
    workload: Optional[SyntheticWorkload] = None,
    dim: int = 2048,
    fdr_threshold: float = 0.01,
    seed: int = 53,
) -> ExperimentResult:
    """Grouped (subgroup) vs. global FDR control."""
    if workload is None:
        workload = iprg2012_like(scale=0.25)
    library = append_decoys(
        workload.references, decoy_factory_for(workload), seed=seed
    )
    binning = BinningConfig()
    space = HDSpace(
        HDSpaceConfig(
            dim=dim, num_bins=binning.num_bins, id_precision_bits=3, seed=seed
        )
    )
    searcher = HDOmsSearcher(SpectrumEncoder(space, binning), library)
    result = searcher.search(workload.queries)
    rows = []
    for name in ("global", "grouped"):
        if name == "grouped":
            accepted = grouped_fdr(list(result.psms), fdr_threshold)
        else:
            psms = list(result.psms)
            assign_qvalues(psms)
            accepted = filter_at_fdr(psms, fdr_threshold)
        modified = sum(1 for psm in accepted if psm.is_modified_match)
        correct = sum(
            1
            for psm in accepted
            if workload.truth.get(psm.query_id) == psm.peptide_key
        )
        rows.append([name, len(accepted), modified, correct])
    return ExperimentResult(
        experiment_id="ablation_fdr",
        title="Global vs. subgroup FDR control",
        headers=["fdr_variant", "accepted_psms", "modified_psms", "correct_psms"],
        rows=rows,
        notes={"claim": "subgroup FDR rescues modified identifications"},
    )
