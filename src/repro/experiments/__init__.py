"""Experiment modules regenerating every table and figure of the paper.

Each ``run_*`` function returns an
:class:`~repro.experiments.report.ExperimentResult` whose rows/series
mirror what the paper plots; the corresponding benchmark under
``benchmarks/`` executes it, prints the rendering, and asserts the
reproduced *shape* (orderings, monotonicity, crossovers).
"""

from .report import ExperimentResult, format_table
from .workloads import (
    HEK293_LIKE,
    IPRG2012_LIKE,
    PAPER_SIZES,
    both_workloads,
    hek293_like,
    iprg2012_like,
)
from .table1 import run_table1
from .fig7_storage import run_fig7
from .fig8_relaxation import FIG8_TIME_POINTS_S, run_fig8
from .fig9_compute import run_fig9_encoding, run_fig9_search
from .fig10_venn import run_fig10, venn_regions
from .fig11_robustness import PAPER_BER_POINTS, run_fig11
from .fig12_energy import (
    PAPER_ENERGY_IMPROVEMENTS,
    PAPER_SPEEDUPS,
    run_fig12,
)
from .fig13_dimension import run_fig13
from .ablations import (
    run_ablation_encoding_scheme,
    run_ablation_fdr,
    run_ablation_id_precision,
    run_ablation_levels,
    run_ablation_weight_mapping,
)

__all__ = [
    "run_ablation_encoding_scheme",
    "run_ablation_fdr",
    "run_ablation_id_precision",
    "run_ablation_levels",
    "run_ablation_weight_mapping",
    "ExperimentResult",
    "format_table",
    "HEK293_LIKE",
    "IPRG2012_LIKE",
    "PAPER_SIZES",
    "both_workloads",
    "hek293_like",
    "iprg2012_like",
    "run_table1",
    "run_fig7",
    "FIG8_TIME_POINTS_S",
    "run_fig8",
    "run_fig9_encoding",
    "run_fig9_search",
    "run_fig10",
    "venn_regions",
    "PAPER_BER_POINTS",
    "run_fig11",
    "PAPER_ENERGY_IMPROVEMENTS",
    "PAPER_SPEEDUPS",
    "run_fig12",
    "run_fig13",
]
