"""Table 1: OMS workload settings.

Regenerates the paper's workload table, extended with the synthetic
stand-ins' actual statistics (modified fraction, decoys, mean open /
standard candidate counts) so readers can judge the substitution.
"""

from __future__ import annotations

from ..oms.candidates import CandidateIndex, WindowConfig
from .report import ExperimentResult
from .workloads import PAPER_SIZES, both_workloads


def run_table1(scale: float = 1.0) -> ExperimentResult:
    """Build both workloads and tabulate their settings."""
    rows = []
    for workload in both_workloads(scale):
        index = CandidateIndex(workload.references, WindowConfig())
        paper = PAPER_SIZES.get(workload.config.name, {})
        rows.append(
            [
                workload.config.name,
                len(workload.queries),
                len(workload.references),
                round(workload.summary()["modified_fraction"], 3),
                round(index.average_candidates(workload.queries, "open"), 1),
                round(index.average_candidates(workload.queries, "standard"), 2),
                paper.get("num_queries", "-"),
                paper.get("num_references", "-"),
            ]
        )
    return ExperimentResult(
        experiment_id="table1",
        title="OMS workload settings (synthetic stand-ins vs. paper)",
        headers=[
            "dataset",
            "queries",
            "references",
            "modified_frac",
            "open_cands",
            "std_cands",
            "paper_queries",
            "paper_references",
        ],
        rows=rows,
        notes={"scale": scale},
    )
