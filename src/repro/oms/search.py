"""The HD open-modification searcher (paper Figure 2's middle stages).

References are preprocessed and encoded into hypervectors once; each
query is encoded and compared — by Hamming similarity — against the
references inside its precursor window.  The similarity computation is
delegated to a pluggable *backend* so the same searcher can run on the
exact dense/packed software paths or on the simulated MLC RRAM
accelerator (:mod:`repro.accelerator`).

Bit-error injection hooks (``query_ber`` / ``reference_ber``) implement
the robustness study of Section 5.3.2 / Figure 11.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence

import numpy as np

from ..ann import AnnConfig, AnnStats, CandidatePrefilter, HammingLSHIndex
from ..hdc.encoder import SpectrumEncoder
from ..hdc.noise import flip_bits
from ..hdc.packing import pack_bipolar
from ..hdc.similarity import packed_dot_scores
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..obs.trace import get_tracer
from .candidates import CandidateIndex, WindowConfig
from .psm import PSM, SearchResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import EngineConfig
    from ..index.library import LibraryIndex

#: Queries encoded per fused ``encode_batch`` call inside ``search``.
ENCODE_BLOCK_SIZE = 256

#: Target working-set bytes of one scoring block (reference rows
#: gathered / XORed at a time).  Sized to sit inside a typical L2
#: cache slice so the gather + reduce stays cache-resident; the row
#: count is derived per backend from its bytes-per-row.
SCORE_BLOCK_BYTES = 4 << 20

#: Never tile below this many rows — tiny blocks would turn one BLAS
#: call into a Python-loop of degenerate kernels.
MIN_SCORE_BLOCK_ROWS = 256


def _auto_block_rows(row_bytes: int) -> int:
    """Rows per scoring block for a given per-row byte cost."""
    return max(MIN_SCORE_BLOCK_ROWS, SCORE_BLOCK_BYTES // max(1, row_bytes))


def encode_queries(encoder, processed: Sequence[Spectrum]) -> np.ndarray:
    """Encode preprocessed queries into one ``(n, dim)`` int8 matrix.

    The exact software :class:`~repro.hdc.encoder.SpectrumEncoder` goes
    through its fused batch pipeline in blocks of
    ``ENCODE_BLOCK_SIZE`` (bit-identical to per-query ``encode``, one
    vectorized pass per block).  Other encoders — the analog in-memory
    encoder, the MLC storage round-trip wrapper — keep their
    per-spectrum path so their internal noise draw order is unchanged.
    """
    if not processed:
        return np.empty((0, encoder.space.dim), dtype=np.int8)
    if isinstance(encoder, SpectrumEncoder):
        blocks = [
            encoder.encode_batch(processed[start : start + ENCODE_BLOCK_SIZE])
            for start in range(0, len(processed), ENCODE_BLOCK_SIZE)
        ]
        return blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    return np.stack([encoder.encode(spectrum) for spectrum in processed])


class SimilarityBackend(Protocol):
    """Scores a query hypervector against stored reference rows."""

    name: str

    def prepare(self, reference_hvs: np.ndarray) -> None:
        """Load the encoded reference matrix (called once)."""

    def scores(
        self, query_hv: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Dot-product scores of the query against ``positions`` rows."""


class DenseBackend:
    """Exact similarity via BLAS matmul on the int8 reference matrix.

    ``block_rows`` tiles the gather path: ``None`` (default) derives a
    block from :data:`SCORE_BLOCK_BYTES` so the gathered row copy stays
    cache-resident, ``0`` disables tiling, any positive value is used
    as-is.  Tiling never changes results — float32 accumulation of
    integer dot products below 2^24 is exact in any order.
    """

    name = "dense"

    def __init__(self, block_rows: Optional[int] = None) -> None:
        self._refs: Optional[np.ndarray] = None
        self._block_rows = block_rows

    def set_block_rows(self, block_rows: Optional[int]) -> None:
        """Override the scoring block size (``None`` = auto, ``0`` = off)."""
        self._block_rows = block_rows

    def _resolved_block_rows(self) -> int:
        if self._block_rows is None:
            return _auto_block_rows(self._refs.shape[1] * 4)
        return self._block_rows

    def prepare(self, reference_hvs: np.ndarray) -> None:
        """Stage the reference matrix for repeated scoring."""
        self._refs = reference_hvs.astype(np.float32)

    def scores(self, query_hv: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Similarity scores of ``query_hv`` against rows at ``positions``."""
        if self._refs is None:
            raise RuntimeError("backend not prepared")
        query = query_hv.astype(np.float32)
        if len(positions) == self._refs.shape[0]:
            # The window covers every stored row (the common wide-window
            # open-search case): score the prepared matrix directly and
            # reorder the (n,) score vector, skipping the (n, dim)
            # fancy-index gather copy.  Exact for any positions order —
            # (refs @ q)[positions][i] == refs[positions[i]] @ q.
            return (self._refs @ query).astype(np.int32)[positions]
        block = self._resolved_block_rows()
        if block and len(positions) > block:
            # Tile the gather: each block's (block, dim) float32 copy
            # fits the cache budget instead of materialising the whole
            # (window, dim) temporary at once.
            out = np.empty(len(positions), dtype=np.int32)
            for start in range(0, len(positions), block):
                chunk = positions[start : start + block]
                out[start : start + len(chunk)] = (
                    self._refs[chunk] @ query
                ).astype(np.int32)
            return out
        return (self._refs[positions] @ query).astype(np.int32)


class PackedBackend:
    """Digital-hardware reference path: packed bits, XOR + popcount.

    ``block_rows`` follows the :class:`DenseBackend` contract (``None``
    auto-sizes from :data:`SCORE_BLOCK_BYTES`, ``0`` disables tiling).
    Full-coverage windows score the prepared matrix as one contiguous
    slab — no gather copy, and the XOR/popcount ufuncs release the GIL
    over the slab, which is what thread-pool scoring overlaps on.
    """

    name = "packed"

    def __init__(self, block_rows: Optional[int] = None) -> None:
        self._packed: Optional[np.ndarray] = None
        self._dim: int = 0
        self._block_rows = block_rows

    def set_block_rows(self, block_rows: Optional[int]) -> None:
        """Override the scoring block size (``None`` = auto, ``0`` = off)."""
        self._block_rows = block_rows

    def _resolved_block_rows(self) -> int:
        if self._block_rows is None:
            return _auto_block_rows(self._packed.shape[1])
        return self._block_rows

    def prepare(self, reference_hvs: np.ndarray) -> None:
        """Stage the float32 copy of the reference matrix."""
        self._dim = reference_hvs.shape[1]
        self._packed = pack_bipolar(reference_hvs)

    def prepare_packed(self, packed: np.ndarray, dim: int) -> None:
        """Adopt an already bit-packed matrix (pack_bipolar layout).

        Lets index-backed callers hand over persisted packed rows
        without a decode/re-encode round trip.
        """
        self._dim = dim
        self._packed = np.asarray(packed)

    def scores(self, query_hv: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Similarity scores of ``query_hv`` against rows at ``positions``."""
        if self._packed is None:
            raise RuntimeError("backend not prepared")
        packed_query = pack_bipolar(query_hv[np.newaxis, :])[0]
        block = self._resolved_block_rows()
        if len(positions) == self._packed.shape[0]:
            # Full-coverage fast path, mirroring DenseBackend: score the
            # contiguous prepared matrix and reorder the (n,) result —
            # exact for any positions order, and the XOR runs on one
            # contiguous slab instead of a gathered copy.
            return packed_dot_scores(
                self._packed, packed_query, self._dim, block
            )[positions]
        return packed_dot_scores(
            self._packed[positions], packed_query, self._dim, block
        )


@dataclass(frozen=True)
class HDSearchConfig:
    """Search-stage knobs.

    ``mode`` is ``"open"`` (the paper's setting), ``"standard"``, or
    ``"cascade"`` (standard first, open only when the narrow window
    yields nothing).  ``query_ber`` / ``reference_ber`` inject random
    sign flips into query/stored hypervectors (Figure 11's x-axis).

    ``ann`` (optional :class:`~repro.ann.AnnConfig`) enables the
    Hamming-LSH candidate prefilter: windows of at least
    ``ann.ann_threshold`` rows are shortlisted approximately and only
    the shortlist is scored exactly.  ``min_candidates`` always gates
    on the *full* window size, not the shortlist size.
    """

    mode: str = "open"
    query_ber: float = 0.0
    reference_ber: float = 0.0
    noise_seed: int = 1234
    min_candidates: int = 1
    ann: Optional[AnnConfig] = None

    def __post_init__(self) -> None:
        """Validate mode and bit-error rates."""
        if self.mode not in ("open", "standard", "cascade"):
            raise ValueError(f"unknown search mode {self.mode!r}")
        for rate in (self.query_ber, self.reference_ber):
            if not 0 <= rate <= 1:
                raise ValueError("bit error rates must be in [0, 1]")


class HDOmsSearcher:
    """Open modification search over hypervector-encoded references.

    Parameters
    ----------
    encoder:
        Object with ``encode(spectrum) -> hypervector``; either the
        software :class:`~repro.hdc.encoder.SpectrumEncoder` or the
        in-memory accelerator encoder.
    references:
        Library spectra (targets + decoys) to index.
    preprocessing / windows / config:
        Stage configurations; sensible defaults everywhere.
    backend:
        Similarity backend; defaults to :class:`DenseBackend`.
    """

    def __init__(
        self,
        encoder,
        references: Sequence[Spectrum],
        preprocessing: Optional[PreprocessingConfig] = None,
        windows: Optional[WindowConfig] = None,
        config: Optional[HDSearchConfig] = None,
        backend: Optional[SimilarityBackend] = None,
    ) -> None:
        self.encoder = encoder
        self.preprocessing = preprocessing or PreprocessingConfig()
        self.windows = windows or WindowConfig()
        self.config = config or HDSearchConfig()
        self.backend = backend or DenseBackend()
        self._noise_rng = np.random.default_rng(self.config.noise_seed)

        kept: List[Spectrum] = []
        for reference in references:
            processed = preprocess(reference, self.preprocessing)
            if processed is not None:
                # Keep the original for metadata, the processed for encoding.
                kept.append((reference, processed))
        if not kept:
            raise ValueError("no reference spectrum survived preprocessing")
        self.references: List[Spectrum] = [original for original, _ in kept]
        reference_hvs = encoder.encode_batch([p for _, p in kept])
        if self.config.reference_ber > 0:
            reference_hvs = flip_bits(
                reference_hvs, self.config.reference_ber, self._noise_rng
            )
        self.reference_hvs = reference_hvs
        self.backend.prepare(reference_hvs)
        self.index = CandidateIndex(self.references, self.windows)
        self._init_prefilter()

    @classmethod
    def from_index(
        cls,
        index: "LibraryIndex",
        windows: Optional[WindowConfig] = None,
        config: Optional[HDSearchConfig] = None,
        backend: Optional[SimilarityBackend] = None,
        encoder=None,
        engine: Optional["EngineConfig"] = None,
    ) -> "HDOmsSearcher":
        """Build a searcher from a persisted library index.

        Skips reference preprocessing *and* encoding entirely: the
        hypervectors and metadata come straight from the index, and the
        query-side encoder is reconstructed from the index's stored
        configuration (pass ``encoder`` to share one; it is validated
        against the index provenance).  Query preprocessing uses the
        exact config the index was built with, so results match a
        searcher built from the original spectra bit for bit.

        ``engine`` (an :class:`~repro.engine.EngineConfig`) supplies the
        backend and the ANN prefilter config when ``backend`` /
        ``config.ann`` do not; an explicit ``backend`` argument wins,
        and an ``engine.ann`` that disagrees with ``config.ann`` is an
        error rather than a silent preference.
        """
        if engine is not None:
            if backend is None:
                backend = engine.build_backend()
            if engine.ann is not None:
                config = config or HDSearchConfig()
                if config.ann is None:
                    config = dataclasses.replace(config, ann=engine.ann)
                elif config.ann != engine.ann:
                    raise ValueError(
                        "conflicting ANN configs: engine.ann disagrees "
                        "with config.ann"
                    )
        if encoder is not None:
            index.validate(encoder.space.config, encoder.binning)
        searcher = cls.__new__(cls)
        searcher.encoder = encoder if encoder is not None else index.make_encoder()
        searcher.preprocessing = index.preprocessing
        searcher.windows = windows or WindowConfig()
        searcher.config = config or HDSearchConfig()
        searcher.backend = backend or DenseBackend()
        searcher._noise_rng = np.random.default_rng(searcher.config.noise_seed)
        searcher.references = index.records()
        reference_hvs = index.hypervectors()
        if searcher.config.reference_ber > 0:
            reference_hvs = flip_bits(
                reference_hvs, searcher.config.reference_ber, searcher._noise_rng
            )
        searcher.reference_hvs = reference_hvs
        searcher.backend.prepare(reference_hvs)
        searcher.index = CandidateIndex(searcher.references, searcher.windows)
        searcher._init_prefilter(index=index)
        return searcher

    def _init_prefilter(self, index: Optional["LibraryIndex"] = None) -> None:
        """Build (or adopt) the ANN prefilter when ``config.ann`` is set.

        Persisted hash tables from ``index`` are reused when they were
        built with the same :class:`~repro.ann.AnnConfig` and no
        reference-side bit errors are injected; otherwise fresh tables
        are hashed from the (possibly noisy) reference hypervectors.
        """
        self._prefilter: Optional[CandidatePrefilter] = None
        self.ann_stats: Optional[AnnStats] = None
        ann = self.config.ann
        if ann is None:
            return
        lsh: Optional[HammingLSHIndex] = None
        if (
            index is not None
            and self.config.reference_ber == 0
            and index.ann is not None
            and index.ann.config == ann
        ):
            lsh = index.ann
        if lsh is None:
            packed = pack_bipolar(self.reference_hvs)
            lsh = HammingLSHIndex.build(packed, self.reference_hvs.shape[1], ann)
        masses = np.array([ref.neutral_mass for ref in self.references])
        charges = np.array([ref.precursor_charge for ref in self.references])
        self._prefilter = CandidatePrefilter(
            lsh, masses, charges, charge_aware=self.windows.charge_aware
        )
        self.ann_stats = AnnStats()

    @property
    def num_references(self) -> int:
        """Number of library rows this searcher scores against."""
        return len(self.references)

    def _candidates(self, query: Spectrum, mode: str) -> np.ndarray:
        if mode == "standard":
            return self.index.select_standard(query)
        return self.index.select_open(query)

    def _select(
        self, query: Spectrum, query_hv: np.ndarray, mode: str
    ) -> tuple:
        """Positions to score plus the full window size for one query."""
        if self._prefilter is None:
            positions = self._candidates(query, mode)
            return positions, len(positions)
        half_width = (
            self.windows.standard_tolerance_da
            if mode == "standard"
            else self.windows.open_window_da
        )
        with get_tracer().span("ann.prefilter", mode=mode) as span:
            selection = self._prefilter.select(
                query_hv, query.neutral_mass, query.precursor_charge, half_width
            )
            span.tag(
                outcome=selection.outcome,
                window=selection.window_count,
                shortlist=len(selection.positions),
            )
        self.ann_stats.record(
            selection.outcome, selection.window_count, len(selection.positions)
        )
        return selection.positions, selection.window_count

    def _best_psm(
        self,
        query: Spectrum,
        query_hv: np.ndarray,
        positions: np.ndarray,
        mode: str,
        window_count: Optional[int] = None,
    ) -> Optional[PSM]:
        if window_count is None:
            window_count = len(positions)
        if window_count < self.config.min_candidates or len(positions) == 0:
            return None
        with get_tracer().span(
            "score.window", rows=len(positions), backend=self.backend.name
        ):
            scores = self.backend.scores(query_hv, positions)
        best = int(np.argmax(scores))
        reference = self.references[int(positions[best])]
        return PSM(
            query_id=query.identifier,
            reference_id=reference.identifier,
            peptide_key=reference.peptide_key(),
            score=float(scores[best]),
            is_decoy=reference.is_decoy,
            precursor_mass_difference=query.neutral_mass - reference.neutral_mass,
            mode=mode,
            reference_mass=float(reference.neutral_mass),
            library_position=int(positions[best]),
        )

    def _search_encoded(
        self, query: Spectrum, query_hv: np.ndarray
    ) -> Optional[PSM]:
        """Noise injection + windowed scoring for one encoded query."""
        if self.config.query_ber > 0:
            query_hv = flip_bits(query_hv, self.config.query_ber, self._noise_rng)
        if self.config.mode == "cascade":
            positions, window = self._select(query, query_hv, "standard")
            psm = self._best_psm(query, query_hv, positions, "standard", window)
            if psm is not None:
                return psm
            positions, window = self._select(query, query_hv, "open")
            return self._best_psm(query, query_hv, positions, "open", window)
        mode = self.config.mode
        positions, window = self._select(query, query_hv, mode)
        return self._best_psm(query, query_hv, positions, mode, window)

    def search_one(self, query: Spectrum) -> Optional[PSM]:
        """Search a single query; None when preprocessing/candidates fail."""
        processed = preprocess(query, self.preprocessing)
        if processed is None:
            return None
        return self._search_encoded(query, self.encoder.encode(processed))

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Search all queries, returning one best PSM per matched query.

        Queries are encoded in fused blocks (see :func:`encode_queries`)
        instead of one at a time inside the scoring loop; BER injection
        and scoring then run per query in arrival order, so results are
        bit-identical to repeated :meth:`search_one` calls.
        """
        start = time.perf_counter()
        psms: List[PSM] = []
        unmatched = 0
        # Preprocess, encode, and score one block at a time: the fused
        # encode keeps its batch win while extra memory stays
        # O(ENCODE_BLOCK_SIZE * dim) — the streaming behaviour of the
        # old per-query loop, not a whole-workload hypervector matrix.
        position = 0
        while position < len(queries):
            block: List[tuple] = []
            while position < len(queries) and len(block) < ENCODE_BLOCK_SIZE:
                query = queries[position]
                position += 1
                processed = preprocess(query, self.preprocessing)
                if processed is None:
                    unmatched += 1
                else:
                    block.append((query, processed))
            query_hvs = encode_queries(
                self.encoder, [processed for _, processed in block]
            )
            for (query, _processed), query_hv in zip(block, query_hvs):
                psm = self._search_encoded(query, query_hv)
                if psm is None:
                    unmatched += 1
                else:
                    psms.append(psm)
        elapsed = time.perf_counter() - start
        return SearchResult(
            psms=psms,
            num_queries=len(queries),
            num_unmatched=unmatched,
            elapsed_seconds=elapsed,
            backend_name=self.backend.name,
        )
