"""Shared micro-batched preprocess → encode → score consumer loop.

:class:`MicroBatchSearchMixin` factors the pipelined query loop out of
the fan-out searchers (:class:`~repro.index.sharded.ShardedSearcher`,
:class:`~repro.store.search.SegmentedSearcher`): queries are
preprocessed and encoded in micro-batches on a producer thread running
one stage ahead of scoring, BER noise injection stays in the consumer
in arrival order, and cascade mode retries unmatched queries through
the open pass.  Hosts provide the fan-out itself via ``_run_pass`` plus
the ``preprocessing`` / ``encoder`` / ``config`` / ``_noise_rng`` /
``_pipeline_batch`` / ``backend_name`` attributes.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exec.pipeline import pipeline_map
from ..hdc.noise import flip_bits
from ..ms.preprocessing import preprocess
from ..ms.spectrum import Spectrum
from .psm import PSM, SearchResult
from .search import encode_queries


class MicroBatchSearchMixin:
    """Pipelined query loop shared by the fan-out searchers.

    Subclasses implement ``_run_pass(pairs, mode)`` — one windowed
    scoring pass over already-encoded ``(query, hypervector)`` pairs —
    and the mixin supplies batching, pipelining, noise injection, and
    cascade retry on top.
    """

    def _search_batch(
        self, survivors: Sequence[Tuple[Spectrum, np.ndarray]]
    ) -> List[Optional[PSM]]:
        """Noise injection + mode dispatch for one encoded micro-batch.

        BER flips draw from the searcher's RNG here — in the consumer
        stage, per query in arrival order — so the noise stream is
        identical whether or not the encode stage ran ahead.
        """
        pairs: List[Tuple[Spectrum, np.ndarray]] = []
        for query, query_hv in survivors:
            if self.config.query_ber > 0:
                query_hv = flip_bits(
                    query_hv, self.config.query_ber, self._noise_rng
                )
            pairs.append((query, query_hv))
        if not pairs:
            return []
        if self.config.mode == "cascade":
            results = self._run_pass(pairs, "standard")
            retry = [
                column for column, psm in enumerate(results) if psm is None
            ]
            if retry:
                reopened = self._run_pass(
                    [pairs[column] for column in retry], "open"
                )
                for column, psm in zip(retry, reopened):
                    results[column] = psm
            return results
        return self._run_pass(pairs, self.config.mode)

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Search all queries; PSM stream identical to HDOmsSearcher.

        Queries are preprocessed and encoded in micro-batches of
        ``pipeline_batch`` on a producer thread running one stage ahead
        of scoring (two-deep bounded queue — encode batch ``k+1`` while
        batch ``k`` is scored and merged).  Deterministic work (the
        preprocess + fused ``encode_batch``) moves ahead; everything
        consuming the searcher's RNG (BER injection) stays in the
        consumer in arrival order, so the PSM stream is unchanged.
        """
        start = time.perf_counter()
        unmatched = 0
        chunks = [
            queries[position : position + self._pipeline_batch]
            for position in range(0, len(queries), self._pipeline_batch)
        ]

        def encode_chunk(chunk):
            survivors = []
            dropped = 0
            for query in chunk:
                processed = preprocess(query, self.preprocessing)
                if processed is None:
                    dropped += 1
                else:
                    survivors.append((query, processed))
            encoded = encode_queries(
                self.encoder, [processed for _, processed in survivors]
            )
            return (
                [
                    (query, query_hv)
                    for (query, _processed), query_hv in zip(survivors, encoded)
                ],
                dropped,
            )

        results: List[Optional[PSM]] = []
        for survivors, dropped in pipeline_map(encode_chunk, chunks):
            unmatched += dropped
            results.extend(self._search_batch(survivors))

        psms = [psm for psm in results if psm is not None]
        unmatched += sum(1 for psm in results if psm is None)
        return SearchResult(
            psms=psms,
            num_queries=len(queries),
            num_unmatched=unmatched,
            elapsed_seconds=time.perf_counter() - start,
            backend_name=self.backend_name,
        )
