"""Open modification search engine (the paper's application layer).

Candidate selection by precursor window, HD Hamming search with
pluggable backends, target-decoy FDR filtering, and the end-to-end
pipeline of paper Figure 2.
"""

from .candidates import CandidateIndex, WindowConfig
from .psm import PSM, SearchResult, evaluate_against_truth
from .fdr import assign_qvalues, decoy_statistics, filter_at_fdr, grouped_fdr
from .search import (
    DenseBackend,
    HDOmsSearcher,
    HDSearchConfig,
    PackedBackend,
    SimilarityBackend,
)
from .pipeline import (
    OmsPipeline,
    PipelineConfig,
    PipelineResult,
    decoy_factory_for,
)
from .batch import BatchedHDOmsSearcher
from .modification_analysis import (
    DeltaMassPeak,
    ModificationReport,
    analyze_modifications,
    annotate_delta_mass,
    delta_mass_histogram,
)

__all__ = [
    "CandidateIndex",
    "WindowConfig",
    "PSM",
    "SearchResult",
    "evaluate_against_truth",
    "assign_qvalues",
    "decoy_statistics",
    "filter_at_fdr",
    "grouped_fdr",
    "DenseBackend",
    "HDOmsSearcher",
    "HDSearchConfig",
    "PackedBackend",
    "SimilarityBackend",
    "OmsPipeline",
    "PipelineConfig",
    "PipelineResult",
    "decoy_factory_for",
    "BatchedHDOmsSearcher",
    "DeltaMassPeak",
    "ModificationReport",
    "analyze_modifications",
    "annotate_delta_mass",
    "delta_mass_histogram",
]
