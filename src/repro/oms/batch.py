"""Batched open search: the dense-matrix dataflow of GPU accelerators.

The per-query searcher (:class:`~repro.oms.search.HDOmsSearcher`)
gathers each query's candidates and scores just those rows.  GPUs (and
the in-memory fabric) prefer the opposite: one dense score matrix of
*all* queries against *all* references per charge bucket, with the
precursor-window constraint applied as a mask afterwards — exactly how
HyperOMS lays the problem out.  Results are bit-identical to the
per-query path; only the schedule differs.

Useful at library scale: one BLAS call per charge bucket instead of one
gather + matmul per query.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import AnnConfig, AnnStats, CandidatePrefilter, HammingLSHIndex
from ..hdc.noise import flip_bits
from ..hdc.packing import pack_bipolar
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..obs.trace import get_tracer
from .candidates import WindowConfig
from .psm import PSM, SearchResult
from .search import encode_queries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import EngineConfig
    from ..index.library import LibraryIndex


class BatchedHDOmsSearcher:
    """Charge-bucketed dense-matrix open search.

    Same constructor contract as :class:`HDOmsSearcher` (encoder +
    references + configs); ``search`` produces the same PSMs, scheduled
    as dense matmuls.
    """

    def __init__(
        self,
        encoder,
        references: Sequence[Spectrum],
        preprocessing: Optional[PreprocessingConfig] = None,
        windows: Optional[WindowConfig] = None,
        mode: str = "open",
        query_ber: float = 0.0,
        reference_ber: float = 0.0,
        noise_seed: int = 1234,
        ann: Optional[AnnConfig] = None,
        score_block_rows: Optional[int] = None,
    ) -> None:
        """Encode *references* and lay them out as charge buckets.

        Args:
            encoder: Object with ``encode_batch(spectra) -> (n, dim)``.
            references: Library spectra (targets and decoys).
            preprocessing: Spectrum preprocessing config.
            windows: Precursor window config.
            mode: ``"open"`` or ``"standard"``.
            query_ber: Per-query random bit-flip rate.
            reference_ber: Reference-side random bit-flip rate.
            noise_seed: Seed of the bit-flip generator.
            ann: Optional ANN prefilter config; when set, large windows
                are shortlisted via Hamming LSH instead of the dense
                matmul.
            score_block_rows: Reference rows per matmul block (``None``
                or ``0`` = one unblocked gemm; BLAS tiles internally, so
                blocking here mainly bounds the transient score slab).
                Never changes results.

        Raises:
            ValueError: On unsupported ``mode`` or when no reference
                survives preprocessing.
        """
        if mode not in ("open", "standard"):
            raise ValueError(
                f"batched search supports 'open'/'standard', got {mode!r}"
            )
        self.encoder = encoder
        self.preprocessing = preprocessing or PreprocessingConfig()
        self.windows = windows or WindowConfig()
        self.mode = mode
        self._noise_rng = np.random.default_rng(noise_seed)
        self.query_ber = query_ber
        self._score_block_rows = score_block_rows

        kept: List[Tuple[Spectrum, Spectrum]] = []
        for reference in references:
            processed = preprocess(reference, self.preprocessing)
            if processed is not None:
                kept.append((reference, processed))
        if not kept:
            raise ValueError("no reference spectrum survived preprocessing")
        self.references = [original for original, _ in kept]
        hvs = encoder.encode_batch([p for _, p in kept])
        if reference_ber > 0:
            hvs = flip_bits(hvs, reference_ber, self._noise_rng)
        self._build_buckets(hvs)
        self._init_prefilter(ann, hvs)

    def _build_buckets(self, hvs: np.ndarray) -> None:
        """Charge buckets: references sorted by neutral mass within each.

        With ``charge_aware=False`` everything lands in bucket 0,
        matching how ``search`` keys queries (and CandidateIndex).
        """
        self._buckets: Dict[int, Dict[str, np.ndarray]] = {}
        masses = np.array([ref.neutral_mass for ref in self.references])
        if self.windows.charge_aware:
            charges = np.array(
                [ref.precursor_charge for ref in self.references]
            )
        else:
            charges = np.zeros(len(self.references), dtype=np.int64)
        for charge in np.unique(charges):
            positions = np.flatnonzero(charges == charge)
            order = np.argsort(masses[positions], kind="stable")
            sorted_positions = positions[order]
            self._buckets[int(charge)] = {
                "positions": sorted_positions,
                "masses": masses[sorted_positions],
                "hvs": hvs[sorted_positions].astype(np.float32),
            }

    def _init_prefilter(
        self,
        ann: Optional[AnnConfig],
        hvs: np.ndarray,
        persisted: Optional[HammingLSHIndex] = None,
    ) -> None:
        """Build (or adopt) the ANN prefilter when ``ann`` is set."""
        self.ann_config = ann
        self._prefilter: Optional[CandidatePrefilter] = None
        self.ann_stats: Optional[AnnStats] = None
        if ann is None:
            return
        lsh = persisted if persisted is not None and persisted.config == ann else None
        if lsh is None:
            lsh = HammingLSHIndex.build(pack_bipolar(hvs), hvs.shape[1], ann)
        masses = np.array([ref.neutral_mass for ref in self.references])
        charges = np.array([ref.precursor_charge for ref in self.references])
        self._prefilter = CandidatePrefilter(
            lsh, masses, charges, charge_aware=self.windows.charge_aware
        )
        self.ann_stats = AnnStats()

    @classmethod
    def from_index(
        cls,
        index: "LibraryIndex",
        windows: Optional[WindowConfig] = None,
        mode: str = "open",
        query_ber: float = 0.0,
        reference_ber: float = 0.0,
        noise_seed: int = 1234,
        encoder=None,
        ann: Optional[AnnConfig] = None,
        score_block_rows: Optional[int] = None,
        engine: Optional["EngineConfig"] = None,
    ) -> "BatchedHDOmsSearcher":
        """Build the batched searcher from a persisted library index.

        Same amortisation as :meth:`HDOmsSearcher.from_index`: reference
        preprocessing and encoding are skipped, query preprocessing and
        the encoder come from the index provenance.  Persisted ANN
        tables are reused when ``ann`` matches the config they were
        built with and no reference-side bit errors are injected.

        Args:
            index: The persisted library index.
            windows: Precursor window config.
            mode: ``"open"`` or ``"standard"``.
            query_ber: Per-query random bit-flip rate.
            reference_ber: Reference-side random bit-flip rate.
            noise_seed: Seed of the bit-flip generator.
            encoder: Optional shared encoder (validated against the
                index provenance).
            ann: Optional ANN prefilter config.
            score_block_rows: Reference rows per matmul block (``None``
                or ``0`` disables blocking).
            engine: Optional :class:`~repro.engine.EngineConfig`
                supplying ``ann`` / ``score_block_rows`` defaults when
                the explicit kwargs are unset.

        Returns:
            A ready-to-search batched searcher.

        Raises:
            ValueError: On unsupported ``mode`` or when ``engine.ann``
                disagrees with an explicit ``ann``.
            IndexCompatibilityError: If ``encoder`` disagrees with the
                index provenance.
        """
        if mode not in ("open", "standard"):
            raise ValueError(
                f"batched search supports 'open'/'standard', got {mode!r}"
            )
        if engine is not None:
            if score_block_rows is None:
                score_block_rows = engine.score_block_rows
            if engine.ann is not None:
                if ann is None:
                    ann = engine.ann
                elif ann != engine.ann:
                    raise ValueError(
                        "conflicting ANN configs: engine.ann disagrees "
                        "with the explicit ann argument"
                    )
        if encoder is not None:
            index.validate(encoder.space.config, encoder.binning)
        searcher = cls.__new__(cls)
        searcher.encoder = encoder if encoder is not None else index.make_encoder()
        searcher.preprocessing = index.preprocessing
        searcher.windows = windows or WindowConfig()
        searcher.mode = mode
        searcher._noise_rng = np.random.default_rng(noise_seed)
        searcher.query_ber = query_ber
        searcher._score_block_rows = score_block_rows
        searcher.references = index.records()
        hvs = index.hypervectors()
        if reference_ber > 0:
            hvs = flip_bits(hvs, reference_ber, searcher._noise_rng)
        searcher._build_buckets(hvs)
        searcher._init_prefilter(
            ann, hvs, persisted=index.ann if reference_ber == 0 else None
        )
        return searcher

    @property
    def num_references(self) -> int:
        """Number of library rows this searcher scores against."""
        return len(self.references)

    def _half_width(self) -> float:
        if self.mode == "standard":
            return self.windows.standard_tolerance_da
        return self.windows.open_window_da

    def search(self, queries: Sequence[Spectrum]) -> SearchResult:
        """Search all queries via one dense matmul per charge bucket.

        The whole batch is encoded through the fused vectorized pipeline
        first (one ``encode_batch`` pass in arrival order — this is what
        the service's micro-batch flushes ride on), then bucketed by
        charge; BER injection stays per query in arrival order so
        results are bit-identical to the per-query schedule.
        """
        start = time.perf_counter()
        prepared: Dict[int, List[Tuple[int, Spectrum, np.ndarray]]] = {}
        unmatched = 0
        admitted: List[Tuple[Spectrum, Spectrum, int]] = []
        for query in queries:
            processed = preprocess(query, self.preprocessing)
            if processed is None:
                unmatched += 1
                continue
            charge = (
                query.precursor_charge if self.windows.charge_aware else 0
            )
            bucket_key = charge if charge in self._buckets else None
            if bucket_key is None and self.windows.charge_aware:
                unmatched += 1
                continue
            admitted.append((query, processed, bucket_key))
        query_hvs = encode_queries(
            self.encoder, [processed for _, processed, _ in admitted]
        )
        for order_index, ((query, _processed, bucket_key), query_hv) in enumerate(
            zip(admitted, query_hvs)
        ):
            if self.query_ber > 0:
                query_hv = flip_bits(query_hv, self.query_ber, self._noise_rng)
            prepared.setdefault(bucket_key, []).append(
                (order_index, query, query_hv)
            )

        indexed_psms: List[Tuple[int, PSM]] = []
        half_width = self._half_width()
        for charge, items in prepared.items():
            bucket = self._buckets[charge]
            if self._prefilter is not None:
                # ANN path: no dense (q, n) matmul — each query scores
                # only its shortlist rows, gathered from the bucket by
                # local rank (the prefilter and the bucket share the
                # same stable mass ordering).
                for order_key, query, query_hv in items:
                    psm = self._search_prefiltered(
                        bucket, query, query_hv, half_width
                    )
                    if psm is None:
                        unmatched += 1
                    else:
                        indexed_psms.append((order_key, psm))
                continue
            with get_tracer().span(
                "score.dense",
                charge=int(charge),
                queries=len(items),
                refs=int(bucket["hvs"].shape[0]),
            ):
                query_matrix = np.stack(
                    [hv for _, _, hv in items]
                ).astype(np.float32)
                scores = self._bucket_scores(query_matrix, bucket["hvs"])
            masses = bucket["masses"]
            for row, (order_key, query, _hv) in enumerate(items):
                low = np.searchsorted(
                    masses, query.neutral_mass - half_width, "left"
                )
                high = np.searchsorted(
                    masses, query.neutral_mass + half_width, "right"
                )
                if high <= low:
                    unmatched += 1
                    continue
                window_scores = scores[row, low:high]
                best = int(np.argmax(window_scores))
                position = int(bucket["positions"][low + best])
                reference = self.references[position]
                indexed_psms.append(
                    (
                        order_key,
                        PSM(
                            query_id=query.identifier,
                            reference_id=reference.identifier,
                            peptide_key=reference.peptide_key(),
                            score=float(window_scores[best]),
                            is_decoy=reference.is_decoy,
                            precursor_mass_difference=query.neutral_mass
                            - reference.neutral_mass,
                            mode=self.mode,
                            reference_mass=float(reference.neutral_mass),
                            library_position=position,
                        ),
                    )
                )
        indexed_psms.sort(key=lambda pair: pair[0])
        return SearchResult(
            psms=[psm for _, psm in indexed_psms],
            num_queries=len(queries),
            num_unmatched=unmatched,
            elapsed_seconds=time.perf_counter() - start,
            backend_name=(
                "batched-dense+ann"
                if self._prefilter is not None
                else "batched-dense"
            ),
        )

    def _bucket_scores(
        self, query_matrix: np.ndarray, refs: np.ndarray
    ) -> np.ndarray:
        """Dense ``(q, n)`` scores, optionally column-blocked.

        Each output element is one row-column dot product, so blocking
        the reference axis never changes any accumulation order — the
        result is bit-identical to the single gemm.
        """
        block = self._score_block_rows
        num_refs = refs.shape[0]
        if not block or num_refs <= block:
            return query_matrix @ refs.T  # (q, n) dense
        scores = np.empty((query_matrix.shape[0], num_refs), dtype=np.float32)
        for start in range(0, num_refs, block):
            stop = min(start + block, num_refs)
            np.matmul(
                query_matrix, refs[start:stop].T, out=scores[:, start:stop]
            )
        return scores

    def _search_prefiltered(
        self,
        bucket: Dict[str, np.ndarray],
        query: Spectrum,
        query_hv: np.ndarray,
        half_width: float,
    ) -> Optional[PSM]:
        """Score one query against its ANN shortlist rows only."""
        tracer = get_tracer()
        with tracer.span("ann.prefilter") as span:
            selection = self._prefilter.select(
                query_hv, query.neutral_mass, query.precursor_charge, half_width
            )
            span.tag(
                outcome=selection.outcome,
                window=selection.window_count,
                shortlist=len(selection.positions),
            )
        self.ann_stats.record(
            selection.outcome, selection.window_count, len(selection.positions)
        )
        if selection.window_count == 0:
            return None
        with tracer.span("score.rerank", rows=len(selection.positions)):
            rows = bucket["hvs"][selection.ranks]
            scores = rows @ query_hv.astype(np.float32)
        best = int(np.argmax(scores))
        position = int(selection.positions[best])
        reference = self.references[position]
        return PSM(
            query_id=query.identifier,
            reference_id=reference.identifier,
            peptide_key=reference.peptide_key(),
            score=float(scores[best]),
            is_decoy=reference.is_decoy,
            precursor_mass_difference=query.neutral_mass
            - reference.neutral_mass,
            mode=self.mode,
            reference_mass=float(reference.neutral_mass),
            library_position=position,
        )
