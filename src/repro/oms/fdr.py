"""Target-decoy false-discovery-rate estimation (paper Section 3.4).

The library is augmented with decoy spectra; every query's best match is
then either a target or a decoy.  Sorting PSMs by score, the estimated
FDR at a score cutoff is ``#decoys / #targets`` above the cutoff, and
the *q-value* of a PSM is the minimum FDR at which it would be accepted
(the running FDR made monotone from the bottom).  A grouped variant
mirrors ANN-SoLo's subgroup FDR, which controls standard (unmodified)
and open (modified) hits separately.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from .psm import PSM


def assign_qvalues(psms: List[PSM]) -> List[PSM]:
    """Assign q-values in place; returns the list sorted by score desc.

    Decoy PSMs receive q-values too (they are excluded at acceptance
    time, not here).  Ties in score are processed in input order, which
    keeps the procedure deterministic.
    """
    ordered = sorted(psms, key=lambda psm: -psm.score)
    num_targets = 0
    num_decoys = 0
    running: List[float] = []
    for psm in ordered:
        if psm.is_decoy:
            num_decoys += 1
        else:
            num_targets += 1
        # +1 pessimism (Elias & Gygi style) avoids 0/0 and makes the
        # estimate conservative for tiny result sets.
        running.append(num_decoys / max(num_targets, 1))
    # Monotone non-decreasing from the top means taking the running
    # minimum from the bottom.
    minimum = np.minimum.accumulate(np.asarray(running)[::-1])[::-1]
    for psm, q_value in zip(ordered, minimum):
        psm.q_value = float(q_value)
    return ordered


def filter_at_fdr(psms: Iterable[PSM], threshold: float) -> List[PSM]:
    """Accepted target PSMs at the given FDR threshold.

    Assigns q-values on a copy of the list if any PSM lacks one.
    """
    psm_list = list(psms)
    if any(psm.q_value is None for psm in psm_list):
        assign_qvalues(psm_list)
    return [
        psm
        for psm in psm_list
        if not psm.is_decoy and psm.q_value is not None and psm.q_value <= threshold
    ]


def grouped_fdr(
    psms: Iterable[PSM],
    threshold: float,
    group_key: Optional[Callable[[PSM], str]] = None,
) -> List[PSM]:
    """Subgroup FDR: q-values computed independently per group.

    The default grouping separates "standard" (|Δmass| <= 0.5 Da) from
    "open" (modified) PSMs, following ANN-SoLo's observation that mixing
    the two biases the estimate against modified identifications.
    """
    if group_key is None:
        def group_key(psm):
            """Default grouping: open vs standard PSMs."""
            return "open" if psm.is_modified_match else "standard"
    groups: Dict[str, List[PSM]] = {}
    for psm in psms:
        groups.setdefault(group_key(psm), []).append(psm)
    accepted: List[PSM] = []
    for _name, group in sorted(groups.items()):
        assign_qvalues(group)
        accepted.extend(
            psm
            for psm in group
            if not psm.is_decoy and psm.q_value is not None and psm.q_value <= threshold
        )
    return accepted


def decoy_statistics(psms: Iterable[PSM]) -> Dict[str, float]:
    """Summary counts used when sanity-checking an FDR run."""
    psm_list = list(psms)
    num_decoys = sum(1 for psm in psm_list if psm.is_decoy)
    num_targets = len(psm_list) - num_decoys
    return {
        "num_psms": float(len(psm_list)),
        "num_targets": float(num_targets),
        "num_decoys": float(num_decoys),
        "decoy_fraction": num_decoys / len(psm_list) if psm_list else 0.0,
    }
