"""Peptide-spectrum matches (PSMs) and search-result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set


@dataclass
class PSM:
    """One peptide-spectrum match: a query paired with its best reference.

    ``score`` is backend-specific (Hamming dot product for HD backends,
    cosine-like for the ANN-SoLo baseline) but always "higher is
    better".  ``precursor_mass_difference`` is the query-minus-reference
    neutral-mass delta in Dalton — near zero for unmodified matches, the
    PTM mass for modified ones.  ``q_value`` is filled in by the FDR
    filter.

    ``reference_mass`` and ``library_position`` are *merge fields*: the
    winner's exact reference neutral mass and its library row number.
    Every engine applies the same winner rule — max score, ties to
    lowest reference mass, then lowest library position — and these two
    fields carry the rule's tie-break keys across process boundaries,
    so a scatter-gather coordinator can merge per-worker winners
    bit-identically to a single-node search (recovering the reference
    mass as ``query_mass - precursor_mass_difference`` is *not* exact
    in IEEE754).  They are excluded from equality (``compare=False``)
    and default to ``None`` for PSMs built outside the engines.
    """

    query_id: str
    reference_id: str
    peptide_key: Optional[str]
    score: float
    is_decoy: bool
    precursor_mass_difference: float
    mode: str = "open"  # "standard" or "open"
    q_value: Optional[float] = None
    reference_mass: Optional[float] = field(default=None, compare=False)
    library_position: Optional[int] = field(default=None, compare=False)

    @property
    def is_modified_match(self) -> bool:
        """True when the mass delta indicates a modification (>0.5 Da)."""
        return abs(self.precursor_mass_difference) > 0.5

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every field (the service wire format)."""
        return {
            "query_id": self.query_id,
            "reference_id": self.reference_id,
            "peptide_key": self.peptide_key,
            "score": float(self.score),
            "is_decoy": bool(self.is_decoy),
            "precursor_mass_difference": float(self.precursor_mass_difference),
            "mode": self.mode,
            "q_value": float(self.q_value) if self.q_value is not None else None,
            "reference_mass": (
                float(self.reference_mass)
                if self.reference_mass is not None
                else None
            ),
            "library_position": (
                int(self.library_position)
                if self.library_position is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PSM":
        """Rebuild a PSM from :meth:`to_dict` output (round-trip exact)."""
        try:
            q_value = payload.get("q_value")
            reference_mass = payload.get("reference_mass")
            library_position = payload.get("library_position")
            return cls(
                query_id=str(payload["query_id"]),
                reference_id=str(payload["reference_id"]),
                peptide_key=(
                    str(payload["peptide_key"])
                    if payload.get("peptide_key") is not None
                    else None
                ),
                score=float(payload["score"]),
                is_decoy=bool(payload["is_decoy"]),
                precursor_mass_difference=float(
                    payload["precursor_mass_difference"]
                ),
                mode=str(payload.get("mode", "open")),
                q_value=float(q_value) if q_value is not None else None,
                reference_mass=(
                    float(reference_mass) if reference_mass is not None else None
                ),
                library_position=(
                    int(library_position) if library_position is not None else None
                ),
            )
        except KeyError as missing:
            raise ValueError(f"PSM payload is missing {missing}") from None


@dataclass
class SearchResult:
    """All PSMs produced by one search run plus bookkeeping."""

    psms: List[PSM] = field(default_factory=list)
    num_queries: int = 0
    num_unmatched: int = 0
    elapsed_seconds: float = 0.0
    backend_name: str = ""

    def __len__(self) -> int:
        return len(self.psms)

    def accepted(self, fdr_threshold: float) -> List[PSM]:
        """Target PSMs whose q-value passes the threshold.

        Requires q-values to have been assigned (see
        :func:`repro.oms.fdr.assign_qvalues`); PSMs without a q-value are
        never accepted.
        """
        return [
            psm
            for psm in self.psms
            if not psm.is_decoy
            and psm.q_value is not None
            and psm.q_value <= fdr_threshold
        ]

    def identified_peptides(self, fdr_threshold: float) -> Set[str]:
        """Unique peptide keys accepted at the FDR threshold.

        This is the quantity Figures 10/11/13 report ("# of
        identifications" / Venn members).
        """
        return {
            psm.peptide_key
            for psm in self.accepted(fdr_threshold)
            if psm.peptide_key is not None
        }

    def score_by_query(self) -> Dict[str, float]:
        """Map query id -> best score (for cross-backend comparisons)."""
        return {psm.query_id: psm.score for psm in self.psms}

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict: PSM payloads plus run bookkeeping."""
        return {
            "psms": [psm.to_dict() for psm in self.psms],
            "num_queries": self.num_queries,
            "num_unmatched": self.num_unmatched,
            "elapsed_seconds": float(self.elapsed_seconds),
            "backend_name": self.backend_name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SearchResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            psms=[PSM.from_dict(entry) for entry in payload.get("psms", [])],
            num_queries=int(payload.get("num_queries", 0)),
            num_unmatched=int(payload.get("num_unmatched", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            backend_name=str(payload.get("backend_name", "")),
        )


def evaluate_against_truth(
    psms: Iterable[PSM], truth: Dict[str, Optional[str]]
) -> Dict[str, float]:
    """Precision/recall of accepted PSMs against workload ground truth.

    ``truth`` maps query id to the true unmodified peptide key (None for
    foreign queries that have no correct answer).  Only call with
    already-FDR-filtered PSMs.
    """
    psms = list(psms)
    num_correct = sum(
        1
        for psm in psms
        if psm.peptide_key is not None
        and truth.get(psm.query_id) == psm.peptide_key
    )
    answerable = sum(1 for value in truth.values() if value is not None)
    return {
        "num_accepted": float(len(psms)),
        "num_correct": float(num_correct),
        "precision": num_correct / len(psms) if psms else 0.0,
        "recall": num_correct / answerable if answerable else 0.0,
    }
