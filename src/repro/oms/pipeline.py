"""End-to-end OMS pipeline (paper Figure 2).

``preprocess -> encode -> hamming search -> FDR filter`` wired together
with decoy generation, configurable in every stage, and reporting the
numbers the paper's evaluation uses (identifications at 1% FDR, plus
ground-truth precision/recall that only a synthetic workload can give).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..constants import DEFAULT_FDR_THRESHOLD
from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..ms.decoy import append_decoys
from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..ms.synthetic import REFERENCE_NOISE, SpectrumSimulator, SyntheticWorkload
from ..ms.vectorize import BinningConfig
from .candidates import WindowConfig
from .fdr import assign_qvalues, filter_at_fdr, grouped_fdr
from .psm import PSM, SearchResult, evaluate_against_truth
from .search import HDOmsSearcher, HDSearchConfig, SimilarityBackend


@dataclass(frozen=True)
class PipelineConfig:
    """Every knob of the end-to-end pipeline in one place."""

    binning: BinningConfig = field(default_factory=BinningConfig)
    space: HDSpaceConfig = field(default_factory=HDSpaceConfig)
    preprocessing: PreprocessingConfig = field(default_factory=PreprocessingConfig)
    windows: WindowConfig = field(default_factory=WindowConfig)
    search: HDSearchConfig = field(default_factory=HDSearchConfig)
    fdr_threshold: float = DEFAULT_FDR_THRESHOLD
    use_grouped_fdr: bool = True
    decoy_method: str = "shuffle"
    decoy_seed: int = 99

    def resolved_space(self) -> HDSpaceConfig:
        """Space config with ``num_bins`` synced to the binning config."""
        return replace(self.space, num_bins=self.binning.num_bins)


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    search_result: SearchResult
    accepted_psms: List[PSM]
    identified_peptides: Set[str]
    evaluation: Dict[str, float]
    timings: Dict[str, float]
    num_references_with_decoys: int

    @property
    def num_identifications(self) -> int:
        """Unique peptides accepted at the FDR threshold (Figures 10-13)."""
        return len(self.identified_peptides)


def decoy_factory_for(workload: SyntheticWorkload) -> Callable:
    """Spectrum factory reproducing the workload's generation model.

    Decoys must look statistically like targets, so they are synthesised
    by the same simulator (re-seeded from the workload config).
    """
    simulator = SpectrumSimulator(seed=workload.config.seed)

    def factory(peptide, charge, identifier) -> Spectrum:
        """Generate one simulated decoy spectrum."""
        return simulator.spectrum(
            peptide, charge, identifier, noise=REFERENCE_NOISE
        )

    return factory


class OmsPipeline:
    """Reusable pipeline bound to one reference library.

    Construction cost (decoy generation + reference encoding) is paid
    once; ``run`` can then be called with different query sets.
    """

    def __init__(
        self,
        references: Sequence[Spectrum],
        decoy_factory: Callable,
        config: Optional[PipelineConfig] = None,
        encoder=None,
        backend: Optional[SimilarityBackend] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        self.library = append_decoys(
            list(references),
            decoy_factory,
            seed=self.config.decoy_seed,
            method=self.config.decoy_method,
        )
        timings["decoy_generation"] = time.perf_counter() - start

        start = time.perf_counter()
        if encoder is None:
            space = HDSpace(self.config.resolved_space())
            encoder = SpectrumEncoder(space, self.config.binning)
        self.encoder = encoder
        self.searcher = HDOmsSearcher(
            encoder,
            self.library,
            preprocessing=self.config.preprocessing,
            windows=self.config.windows,
            config=self.config.search,
            backend=backend,
        )
        timings["reference_encoding"] = time.perf_counter() - start
        self._setup_timings = timings

    @classmethod
    def from_index(
        cls,
        index,
        config: Optional[PipelineConfig] = None,
        backend: Optional[SimilarityBackend] = None,
    ) -> "OmsPipeline":
        """Bind the pipeline to a persisted :class:`~repro.index.LibraryIndex`.

        The library in the index is used as-is (decoys are expected to
        have been appended before the index was built) and reference
        encoding is skipped entirely.  The ``space``/``binning``/
        ``preprocessing`` members of *config* are superseded by the
        index provenance; ``windows``, ``search`` and the FDR knobs
        still apply.
        """
        pipeline = cls.__new__(cls)
        pipeline.config = config or PipelineConfig()
        start = time.perf_counter()
        pipeline.library = index.records()
        pipeline.encoder = index.make_encoder()
        pipeline.searcher = HDOmsSearcher.from_index(
            index,
            windows=pipeline.config.windows,
            config=pipeline.config.search,
            backend=backend,
            encoder=pipeline.encoder,
        )
        pipeline._setup_timings = {
            "decoy_generation": 0.0,
            "reference_encoding": 0.0,
            "index_load": time.perf_counter() - start,
        }
        return pipeline

    @classmethod
    def from_workload(
        cls,
        workload: SyntheticWorkload,
        config: Optional[PipelineConfig] = None,
        encoder=None,
        backend: Optional[SimilarityBackend] = None,
    ) -> "OmsPipeline":
        """Convenience constructor for synthetic workloads."""
        return cls(
            workload.references,
            decoy_factory_for(workload),
            config=config,
            encoder=encoder,
            backend=backend,
        )

    def run(
        self,
        queries: Sequence[Spectrum],
        truth: Optional[Dict[str, Optional[str]]] = None,
    ) -> PipelineResult:
        """Search *queries* and apply the FDR filter."""
        timings = dict(self._setup_timings)

        start = time.perf_counter()
        search_result = self.searcher.search(queries)
        timings["search"] = time.perf_counter() - start

        start = time.perf_counter()
        if self.config.use_grouped_fdr:
            accepted = grouped_fdr(search_result.psms, self.config.fdr_threshold)
        else:
            assign_qvalues(search_result.psms)
            accepted = filter_at_fdr(search_result.psms, self.config.fdr_threshold)
        timings["fdr_filter"] = time.perf_counter() - start

        identified = {
            psm.peptide_key for psm in accepted if psm.peptide_key is not None
        }
        evaluation = (
            evaluate_against_truth(accepted, truth) if truth is not None else {}
        )
        return PipelineResult(
            search_result=search_result,
            accepted_psms=accepted,
            identified_peptides=identified,
            evaluation=evaluation,
            timings=timings,
            num_references_with_decoys=len(self.library),
        )

    def run_workload(self, workload: SyntheticWorkload) -> PipelineResult:
        """Run against a workload's queries with its ground truth."""
        return self.run(workload.queries, workload.truth)
