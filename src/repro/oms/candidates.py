"""Precursor-mass candidate selection (the "open" in open search).

A standard search compares a query only against references whose
precursor mass lies within a tight tolerance; OMS widens that window to
hundreds of Dalton so modified peptides (whose precursor is shifted by
the PTM mass) still meet their unmodified reference (paper Section 1).

The index pre-partitions references by precursor charge (both HyperOMS
and ANN-SoLo match charge states) and keeps a sorted neutral-mass array
per charge for O(log n) window queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..constants import DEFAULT_OPEN_WINDOW_DA, DEFAULT_STANDARD_WINDOW_DA
from ..ms.spectrum import Spectrum


@dataclass(frozen=True)
class WindowConfig:
    """Precursor window widths for the two search modes (in Dalton)."""

    standard_tolerance_da: float = DEFAULT_STANDARD_WINDOW_DA
    open_window_da: float = DEFAULT_OPEN_WINDOW_DA
    charge_aware: bool = True

    def __post_init__(self) -> None:
        if self.standard_tolerance_da <= 0 or self.open_window_da <= 0:
            raise ValueError("window widths must be > 0")
        if self.open_window_da < self.standard_tolerance_da:
            raise ValueError("open window must be at least the standard window")


class CandidateIndex:
    """Sorted precursor-mass index over a reference library.

    ``select`` returns *positions into the original reference sequence*
    so callers can slice their encoded hypervector matrices directly.
    """

    def __init__(
        self,
        references: Sequence[Spectrum],
        config: Optional[WindowConfig] = None,
    ) -> None:
        self.config = config or WindowConfig()
        self.num_references = len(references)
        self._by_charge: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        masses = np.array([ref.neutral_mass for ref in references])
        charges = np.array([ref.precursor_charge for ref in references])
        if self.config.charge_aware:
            for charge in np.unique(charges):
                positions = np.flatnonzero(charges == charge)
                order = np.argsort(masses[positions], kind="stable")
                self._by_charge[int(charge)] = (
                    masses[positions][order],
                    positions[order],
                )
        else:
            order = np.argsort(masses, kind="stable")
            self._by_charge[0] = (masses[order], np.arange(len(references))[order])

    def _bucket(self, charge: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        key = charge if self.config.charge_aware else 0
        return self._by_charge.get(key)

    def select_window(
        self, neutral_mass: float, charge: int, half_width_da: float
    ) -> np.ndarray:
        """Positions of references with |mass - neutral_mass| <= half_width."""
        bucket = self._bucket(charge)
        if bucket is None:
            return np.empty(0, dtype=np.int64)
        sorted_masses, positions = bucket
        low = np.searchsorted(sorted_masses, neutral_mass - half_width_da, "left")
        high = np.searchsorted(sorted_masses, neutral_mass + half_width_da, "right")
        return positions[low:high]

    def select_standard(self, query: Spectrum) -> np.ndarray:
        """Narrow-window candidates for *query* (unmodified matches)."""
        return self.select_window(
            query.neutral_mass,
            query.precursor_charge,
            self.config.standard_tolerance_da,
        )

    def select_open(self, query: Spectrum) -> np.ndarray:
        """Wide-window candidates for *query* (modified matches too)."""
        return self.select_window(
            query.neutral_mass,
            query.precursor_charge,
            self.config.open_window_da,
        )

    def average_candidates(
        self, queries: Sequence[Spectrum], mode: str = "open"
    ) -> float:
        """Mean candidate-set size over *queries* (workload statistics)."""
        if not queries:
            return 0.0
        select = self.select_open if mode == "open" else self.select_standard
        return float(np.mean([len(select(query)) for query in queries]))
