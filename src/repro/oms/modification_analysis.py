"""Post-search modification analysis (the practitioner's view of OMS).

An open search does not localise or identify modifications — it only
produces a precursor mass difference per PSM.  Standard practice
(Chick et al. 2015, the paper's HEK293 source) is to histogram those
delta masses and annotate the recurring peaks with known modification
masses.  This module provides exactly that: delta-mass histogramming,
nearest-PTM annotation against the Unimod-like table, and a summary
report, turning raw PSMs into the biology-facing result.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ms.modifications import COMMON_MODIFICATIONS, ModificationType
from .psm import PSM

#: Delta masses within this tolerance of zero count as unmodified.
UNMODIFIED_TOLERANCE_DA = 0.5


@dataclass(frozen=True)
class DeltaMassPeak:
    """One recurring mass shift in the delta-mass histogram."""

    delta_mass: float
    count: int
    annotation: Optional[str] = None
    annotation_error_da: Optional[float] = None

    @property
    def is_annotated(self) -> bool:
        """Whether the mass shift matched a known modification."""
        return self.annotation is not None


def annotate_delta_mass(
    delta_mass: float,
    modifications: Sequence[ModificationType] = COMMON_MODIFICATIONS,
    tolerance_da: float = 0.02,
) -> Optional[Tuple[str, float]]:
    """Match a mass shift to the nearest known modification.

    Returns ``(name, error)`` when a modification's monoisotopic delta
    lies within ``tolerance_da``; None otherwise.  Negative shifts are
    matched against negated deltas (e.g. a loss), multiples are not
    attempted (consistent with single-modification open search).
    """
    best: Optional[Tuple[str, float]] = None
    for modification in modifications:
        for sign, suffix in ((1.0, ""), (-1.0, " (loss)")):
            error = delta_mass - sign * modification.mass_delta
            if abs(error) <= tolerance_da:
                if best is None or abs(error) < abs(best[1]):
                    best = (modification.name + suffix, error)
    return best


def delta_mass_histogram(
    psms: Iterable[PSM],
    bin_width_da: float = 0.01,
    min_count: int = 2,
    modifications: Sequence[ModificationType] = COMMON_MODIFICATIONS,
    annotation_tolerance_da: float = 0.02,
) -> List[DeltaMassPeak]:
    """Find recurring precursor mass shifts among modified PSMs.

    Shifts are quantised to ``bin_width_da`` bins; bins with at least
    ``min_count`` PSMs become peaks, annotated against the modification
    table.  Returned in descending count order.
    """
    if bin_width_da <= 0:
        raise ValueError("bin_width_da must be > 0")
    shifts = [
        psm.precursor_mass_difference
        for psm in psms
        if abs(psm.precursor_mass_difference) > UNMODIFIED_TOLERANCE_DA
    ]
    if not shifts:
        return []
    binned = Counter(
        int(round(shift / bin_width_da)) for shift in shifts
    )
    peaks: List[DeltaMassPeak] = []
    for bin_index, count in binned.items():
        if count < min_count:
            continue
        center = bin_index * bin_width_da
        annotation = annotate_delta_mass(
            center, modifications, annotation_tolerance_da
        )
        peaks.append(
            DeltaMassPeak(
                delta_mass=round(center, 4),
                count=count,
                annotation=annotation[0] if annotation else None,
                annotation_error_da=(
                    round(annotation[1], 5) if annotation else None
                ),
            )
        )
    peaks.sort(key=lambda peak: (-peak.count, abs(peak.delta_mass)))
    return peaks


@dataclass
class ModificationReport:
    """Summary of what an open search found, modification-wise."""

    num_psms: int
    num_unmodified: int
    num_modified: int
    peaks: List[DeltaMassPeak] = field(default_factory=list)

    @property
    def annotated_fraction(self) -> float:
        """Fraction of modified PSMs explained by annotated peaks."""
        if self.num_modified == 0:
            return 0.0
        explained = sum(
            peak.count for peak in self.peaks if peak.is_annotated
        )
        return min(1.0, explained / self.num_modified)

    def top_modifications(self, limit: int = 10) -> List[Tuple[str, int]]:
        """Most frequent annotated modifications with PSM counts."""
        counts: Dict[str, int] = {}
        for peak in self.peaks:
            if peak.annotation is not None:
                counts[peak.annotation] = (
                    counts.get(peak.annotation, 0) + peak.count
                )
        return sorted(counts.items(), key=lambda item: -item[1])[:limit]

    def render(self) -> str:
        """Human-readable summary block."""
        lines = [
            f"PSMs analysed      : {self.num_psms}",
            f"  unmodified       : {self.num_unmodified}",
            f"  modified         : {self.num_modified} "
            f"({self.annotated_fraction:.0%} explained by known PTMs)",
            "recurring mass shifts:",
        ]
        for peak in self.peaks[:12]:
            label = peak.annotation or "unannotated"
            lines.append(
                f"  {peak.delta_mass:+9.4f} Da  x{peak.count:<4d} {label}"
            )
        return "\n".join(lines)


def analyze_modifications(
    psms: Iterable[PSM],
    bin_width_da: float = 0.01,
    min_count: int = 2,
    modifications: Sequence[ModificationType] = COMMON_MODIFICATIONS,
) -> ModificationReport:
    """Full modification analysis of (FDR-accepted) PSMs."""
    psm_list = list(psms)
    num_modified = sum(1 for psm in psm_list if psm.is_modified_match)
    return ModificationReport(
        num_psms=len(psm_list),
        num_unmodified=len(psm_list) - num_modified,
        num_modified=num_modified,
        peaks=delta_mass_histogram(
            psm_list, bin_width_da, min_count, modifications
        ),
    )
