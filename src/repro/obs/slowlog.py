"""Ring-buffer slow-query log for the search service.

Aggregate histograms say *that* latency regressed; the slow-query log
says *which request* and *where the time went*.  The HTTP layer offers
every finished search request to a :class:`SlowQueryLog`; requests at
or above the threshold are kept in a bounded ring buffer (served by
``/debug/slow``) and logged as one structured line through the module
logger — with ``--log-format json`` each slow query becomes a single
machine-parseable JSON record including its per-stage breakdown.

The log is deliberately independent of the tracer: it works (minus the
stage breakdown) even when tracing is disabled, and a threshold of 0
turns it into a plain rolling request log.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "SlowQueryLog",
    "stage_breakdown",
    "DEFAULT_SLOW_MS",
    "DEFAULT_SLOW_CAPACITY",
]

logger = logging.getLogger(__name__)

#: Default slowness threshold (milliseconds) for the service.
DEFAULT_SLOW_MS = 250.0

#: Default number of slow-query records kept.
DEFAULT_SLOW_CAPACITY = 128


class SlowQueryLog:
    """Bounded ring buffer of requests slower than a threshold.

    Thread-safe: handler threads observe concurrently, ``/debug/slow``
    snapshots under the same lock.
    """

    def __init__(
        self,
        threshold_ms: float = DEFAULT_SLOW_MS,
        capacity: int = DEFAULT_SLOW_CAPACITY,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_ms = float(threshold_ms)
        self._records: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._observed = 0
        self._slow = 0

    @property
    def capacity(self) -> int:
        """Maximum records retained before the oldest are evicted."""
        return self._records.maxlen or 0

    def observe(
        self,
        duration_ms: float,
        request_id: Optional[str] = None,
        route: Optional[str] = None,
        endpoint: Optional[str] = None,
        cached: Optional[bool] = None,
        stages: Optional[Dict[str, float]] = None,
        **extra: object,
    ) -> bool:
        """Offer one finished request; returns True when it was recorded.

        Args:
            duration_ms: End-to-end wall latency of the request.
            request_id: The request's id (joins it to its trace spans).
            route: Route label that served the request.
            endpoint: HTTP endpoint (``search`` / ``search_batch``).
            cached: Whether the result came from the cache.
            stages: Per-stage millisecond breakdown (from the tracer).
            **extra: Additional context stored verbatim (batch size...).
        """
        with self._lock:
            self._observed += 1
            slow = duration_ms >= self.threshold_ms
            if slow:
                self._slow += 1
        if not slow:
            return False
        record: Dict[str, object] = {
            "time": time.time(),
            "duration_ms": round(float(duration_ms), 3),
            "request_id": request_id,
            "route": route,
            "endpoint": endpoint,
        }
        if cached is not None:
            record["cached"] = cached
        if stages:
            record["stages_ms"] = {
                name: round(1000.0 * seconds, 3)
                for name, seconds in sorted(stages.items())
            }
        record.update(extra)
        with self._lock:
            self._records.append(record)
        logger.warning(
            "slow query %s on route %s: %.1f ms (%s)",
            request_id or "-",
            route or "-",
            duration_ms,
            endpoint or "-",
            extra={"slow_query": record},
        )
        return True

    def snapshot(self) -> Dict[str, object]:
        """The ``/debug/slow`` payload: config, counters, newest-first records."""
        with self._lock:
            records = list(self._records)
            observed, slow = self._observed, self._slow
        records.reverse()
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "observed": observed,
            "slow": slow,
            "records": records,
        }

    def clear(self) -> None:
        """Drop all records (counters keep accumulating)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def stage_breakdown(spans) -> Dict[str, float]:
    """Summed seconds per span name, for :meth:`SlowQueryLog.observe`.

    A convenience for callers holding a list of
    :class:`~repro.obs.trace.Span` objects for one request.
    """
    stages: Dict[str, float] = {}
    for span in spans:
        stages[span.name] = stages.get(span.name, 0.0) + span.duration
    return stages
