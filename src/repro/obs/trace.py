"""Zero-dependency span tracing for the search pipeline.

A :class:`Tracer` records nested :class:`Span`\\ s — monotonic start,
duration, free-form tags (batch size, candidate ratio, shard id...) —
into a bounded ring buffer.  The design constraints, in order:

* **near-zero overhead when disabled** — ``tracer.span(...)`` returns a
  shared no-op singleton without allocating a span, touching a context
  variable, or taking a lock, so instrumentation can live permanently
  on hot paths (``encode_batch``, backend scoring, the micro-batch
  flusher) and cost one method call plus a kwargs dict per site;
* **implicit parenting via contextvars** — ``with tracer.span("a"):``
  makes every span opened inside (same thread / task) a child of
  ``a``, which is how one ``engine.search`` span ends up the shared
  parent of the encode / prefilter / scoring spans of a whole flushed
  micro-batch;
* **cross-thread linkage** — :meth:`Tracer.capture` snapshots the
  current span so a *different* thread (the micro-batch flusher, a
  worker-pool parent) can :meth:`Tracer.emit` explicitly-timed spans
  under it; this carries a request's identity from the HTTP handler
  thread into the batch that served it, and per-shard timings out of a
  process pool into the parent's trace;
* **request identity** — every span carries an optional ``request_id``
  (inherited from its parent unless given), generated at service
  ingress by :func:`new_request_id` and queried later to assemble one
  request's stage breakdown.

Finished spans are offered to registered listeners (the service bridges
them into per-stage Prometheus histograms) and appended to the ring
buffer, which :mod:`repro.obs.export` renders as Chrome
``trace_event`` JSON.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "new_request_id",
    "DEFAULT_CAPACITY",
]

#: Ring-buffer capacity a bare ``enable()`` installs.
DEFAULT_CAPACITY = 4096

_SPAN_IDS = itertools.count(1)

#: The innermost open span of the current thread/task (None at top level).
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char request identifier (collision-safe via uuid4)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed, tagged node of a trace tree.

    Spans are context managers: entering stamps the monotonic start and
    installs the span as the thread's current parent; exiting computes
    ``duration``, restores the parent, and hands the finished span to
    the tracer.  ``request_id`` and ``route`` are inherited from the
    parent when not given explicitly.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "request_id",
        "route",
        "start",
        "duration",
        "tags",
        "thread",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        request_id: Optional[str] = None,
        route: Optional[str] = None,
        tags: Optional[Dict[str, object]] = None,
        thread: Optional[str] = None,
    ) -> None:
        self._tracer = tracer
        self._token = None
        self.name = name
        self.span_id = next(_SPAN_IDS)
        self.parent_id = parent.span_id if parent is not None else None
        self.request_id = request_id if request_id is not None else (
            parent.request_id if parent is not None else None
        )
        self.route = route if route is not None else (
            parent.route if parent is not None else None
        )
        self.start = 0.0
        self.duration = 0.0
        self.tags: Dict[str, object] = tags if tags is not None else {}
        self.thread = (
            thread if thread is not None else threading.current_thread().name
        )

    def tag(self, **tags: object) -> "Span":
        """Attach (or overwrite) tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.tags.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self)
        return False

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON endpoints, tests)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "request_id": self.request_id,
            "route": self.route,
            "start": self.start,
            "duration_ms": round(1000.0 * self.duration, 4),
            "thread": self.thread,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"request={self.request_id}, {1000.0 * self.duration:.3f} ms)"
        )


class _NullSpan:
    """Shared no-op stand-in returned by a disabled tracer.

    Works as a context manager *and* as a span (``tag`` is a no-op), so
    instrumentation sites never branch on the tracer state.  A single
    instance is shared process-wide; it is immutable by construction.
    """

    __slots__ = ()

    name = "null"
    span_id = 0
    parent_id = None
    request_id = None
    route = None
    start = 0.0
    duration = 0.0
    tags: Dict[str, object] = {}
    thread = ""

    def tag(self, **tags: object) -> "_NullSpan":
        """No-op; returns self so call sites can chain unconditionally."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton every ``span()`` call of a disabled tracer returns.
NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory + bounded ring buffer of finished spans.

    Disabled by default; :meth:`enable` turns recording on (optionally
    resizing the ring buffer).  All methods are thread-safe: spans are
    created and finished on arbitrary threads, the buffer is a
    ``deque(maxlen=...)`` whose appends are atomic, and listeners are
    invoked outside any lock (exceptions are swallowed — observability
    must never break the pipeline).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self._records: "deque[Span]" = deque(maxlen=capacity)
        self._listeners: List[Callable[[Span], None]] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Ring-buffer size (oldest spans are evicted beyond it)."""
        return self._records.maxlen or 0

    def enable(self, capacity: Optional[int] = None) -> "Tracer":
        """Start recording spans; optionally resize (and clear) the buffer."""
        with self._lock:
            if capacity is not None and capacity != self._records.maxlen:
                if capacity < 1:
                    raise ValueError(f"capacity must be >= 1, got {capacity}")
                self._records = deque(maxlen=capacity)
            self._epoch = time.perf_counter()
            self._epoch_wall = time.time()
            self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Stop recording; the buffer keeps its spans until :meth:`clear`."""
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all recorded spans and restart the export epoch."""
        with self._lock:
            self._records.clear()
            self._epoch = time.perf_counter()
            self._epoch_wall = time.time()

    @property
    def epoch(self) -> float:
        """``time.perf_counter()`` origin of the current recording window."""
        return self._epoch

    @property
    def epoch_wall(self) -> float:
        """Wall-clock time (``time.time()``) matching :attr:`epoch`."""
        return self._epoch_wall

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------

    def span(
        self,
        name: str,
        request_id: Optional[str] = None,
        route: Optional[str] = None,
        **tags: object,
    ):
        """Open a child span of the thread's current span.

        Returns the shared :data:`NULL_SPAN` when disabled — the hot
        path pays one attribute check and no allocation beyond the
        caller's kwargs.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(
            self,
            name,
            parent=_CURRENT.get(),
            request_id=request_id,
            route=route,
            tags=tags or None,
        )

    def emit(
        self,
        name: str,
        duration: float,
        parent: Optional[Span] = None,
        request_id: Optional[str] = None,
        route: Optional[str] = None,
        thread: Optional[str] = None,
        start: Optional[float] = None,
        **tags: object,
    ) -> Optional[Span]:
        """Record an externally-timed span without entering a context.

        This is how timings measured elsewhere join the trace: the
        scheduler emits each request's queue wait when its batch
        flushes (parented on the span :meth:`capture`\\ d at submit
        time), and the sharded searcher emits per-shard scoring spans
        timed inside pool workers onto virtual ``shard-N`` lanes.
        ``start`` is a ``perf_counter`` value; omitted, the span is
        assumed to have just ended.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = _CURRENT.get()
        if parent is NULL_SPAN:
            parent = None
        span = Span(
            self,
            name,
            parent=parent,
            request_id=request_id,
            route=route,
            tags=tags or None,
            thread=thread,
        )
        span.duration = float(duration)
        span.start = (
            float(start)
            if start is not None
            else time.perf_counter() - span.duration
        )
        self._finish(span)
        return span

    def capture(self) -> Optional[Span]:
        """The current span of this thread/task (for cross-thread emits)."""
        if not self.enabled:
            return None
        return _CURRENT.get()

    def current_request_id(self) -> Optional[str]:
        """Request id of the innermost open span, if any."""
        current = _CURRENT.get()
        return current.request_id if current is not None else None

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Register a finished-span callback (idempotent per callable)."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        """Unregister a callback registered with :meth:`add_listener`."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _finish(self, span: Span) -> None:
        """Record one finished span and notify listeners."""
        if not self.enabled:
            return
        self._records.append(span)
        for listener in list(self._listeners):
            try:
                listener(span)
            except Exception:  # noqa: BLE001 - observability never raises
                pass

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def records(self) -> List[Span]:
        """Snapshot of the ring buffer, oldest first."""
        return list(self._records)

    def spans_for(self, request_id: str) -> List[Span]:
        """All recorded spans carrying ``request_id`` (oldest first)."""
        return [s for s in self._records if s.request_id == request_id]

    def stage_durations(self, spans: Iterable[Span]) -> Dict[str, float]:
        """Summed duration (seconds) per span name over ``spans``."""
        stages: Dict[str, float] = {}
        for span in spans:
            stages[span.name] = stages.get(span.name, 0.0) + span.duration
        return stages


#: Process-global tracer shared by all instrumentation sites.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global :class:`Tracer` every pipeline stage reports to."""
    return _TRACER
