"""Observability: span tracing, profiling, slow-query log, logging.

The scaling work on the ROADMAP (threaded kernels, scale-out tier)
needs to know *where* a query's time goes; ``repro.obs`` is the
zero-dependency layer every later performance PR is measured with:

* :mod:`repro.obs.trace` — nested :class:`Span`\\ s with request-id
  propagation and a near-zero-cost disabled path, recorded by the
  process-global :func:`get_tracer`;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON rendering
  (``/debug/trace``, ``repro profile``) for ``about:tracing``/Perfetto;
* :mod:`repro.obs.slowlog` — ring-buffer slow-query log behind
  ``/debug/slow`` plus structured log lines;
* :mod:`repro.obs.logging` — ``--log-level`` / ``--log-format
  {text,json}`` handler setup shared by the CLI and ``serve()``;
* :mod:`repro.obs.profile` — per-stage aggregation for the
  ``repro profile`` command.

See ``docs/observability.md`` for the tracing model and how the
service endpoints fit together.
"""

from .export import chrome_trace, spans_to_events
from .logging import (
    JsonFormatter,
    LOG_FORMATS,
    LOG_LEVELS,
    ensure_default_logging,
    setup_logging,
)
from .profile import render_stage_table, summarize_spans
from .slowlog import (
    DEFAULT_SLOW_CAPACITY,
    DEFAULT_SLOW_MS,
    SlowQueryLog,
    stage_breakdown,
)
from .trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    new_request_id,
)

__all__ = [
    "chrome_trace",
    "spans_to_events",
    "JsonFormatter",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "ensure_default_logging",
    "setup_logging",
    "render_stage_table",
    "summarize_spans",
    "DEFAULT_SLOW_CAPACITY",
    "DEFAULT_SLOW_MS",
    "SlowQueryLog",
    "stage_breakdown",
    "DEFAULT_CAPACITY",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "get_tracer",
    "new_request_id",
]
