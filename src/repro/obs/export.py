"""Chrome ``trace_event`` JSON export of recorded spans.

Renders a :class:`~repro.obs.trace.Tracer`'s ring buffer into the
`trace event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
understood by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:

* every span becomes one complete (``"ph": "X"``) event with
  microsecond ``ts``/``dur`` relative to the tracer's recording epoch;
* spans are laid out on one *lane* (``tid``) per originating thread —
  including the virtual ``shard-N`` lanes the sharded searcher emits
  for pool-worker timings — with ``"M"`` metadata events naming each
  lane;
* tags, request id, route, and span/parent ids ride in ``args`` so
  selecting an event in the viewer shows the full context.

The output is a plain dict; ``json.dumps`` it to produce a file the
viewer opens directly (this is what ``/debug/trace`` and
``repro profile`` serve/write).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .trace import Span, Tracer

__all__ = ["chrome_trace", "spans_to_events"]

#: Single-process traces all share one pid.
_PID = 1


def spans_to_events(
    spans: Iterable[Span], epoch: float = 0.0
) -> List[Dict[str, object]]:
    """Convert spans into trace-event dicts (metadata lanes included).

    Args:
        spans: Finished spans (any order; output keeps input order).
        epoch: ``perf_counter`` origin subtracted from every start so
            timestamps begin near zero.

    Returns:
        A list of Chrome trace events: one ``"M"`` (``thread_name``)
        event per distinct lane followed by one ``"X"`` event per span.
    """
    lanes: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    metadata: List[Dict[str, object]] = []
    for span in spans:
        tid = lanes.get(span.thread)
        if tid is None:
            tid = len(lanes) + 1
            lanes[span.thread] = tid
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": span.thread},
                }
            )
        args: Dict[str, object] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.request_id is not None:
            args["request_id"] = span.request_id
        if span.route is not None:
            args["route"] = span.route
        args.update(span.tags)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": round(1e6 * (span.start - epoch), 3),
                "dur": round(1e6 * span.duration, 3),
                "args": args,
            }
        )
    return metadata + events


def chrome_trace(
    tracer: Tracer, request_id: Optional[str] = None
) -> Dict[str, object]:
    """The full Chrome trace payload for a tracer's recorded spans.

    Args:
        tracer: The tracer whose ring buffer to export.
        request_id: Optional filter — keep only spans of one request.

    Returns:
        ``{"traceEvents": [...], "displayTimeUnit": "ms", "metadata": ...}``,
        ready for ``json.dumps``.  ``traceEvents`` is empty (never
        absent) for a disabled or freshly-cleared tracer, so consumers
        can always parse the same shape.
    """
    spans = (
        tracer.spans_for(request_id) if request_id is not None else tracer.records()
    )
    return {
        "traceEvents": spans_to_events(spans, epoch=tracer.epoch),
        "displayTimeUnit": "ms",
        "metadata": {
            "enabled": tracer.enabled,
            "capacity": tracer.capacity,
            "spans": len(spans),
            "epoch_unix_seconds": tracer.epoch_wall,
        },
    }
