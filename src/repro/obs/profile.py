"""Offline profiling support for the ``repro profile`` CLI command.

``repro profile`` runs a query file against a persisted index with the
tracer enabled, writes the recorded spans as a Chrome trace (openable
in ``about:tracing`` / Perfetto), and prints a per-stage summary table.
This module holds the reusable pieces — the span aggregation and the
table renderer — so the CLI stays thin and the logic is unit-testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .trace import Span

__all__ = ["summarize_spans", "render_stage_table"]


def summarize_spans(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Aggregate spans by name into per-stage rows, slowest total first.

    Returns:
        One row per span name with ``name`` / ``count`` / ``total_ms``
        / ``mean_ms`` / ``max_ms`` keys.
    """
    totals: Dict[str, List[float]] = {}
    for span in spans:
        entry = totals.get(span.name)
        if entry is None:
            totals[span.name] = [1, span.duration, span.duration]
        else:
            entry[0] += 1
            entry[1] += span.duration
            entry[2] = max(entry[2], span.duration)
    rows = [
        {
            "name": name,
            "count": int(count),
            "total_ms": round(1000.0 * total, 3),
            "mean_ms": round(1000.0 * total / count, 3),
            "max_ms": round(1000.0 * peak, 3),
        }
        for name, (count, total, peak) in totals.items()
    ]
    rows.sort(key=lambda row: -float(row["total_ms"]))  # type: ignore[arg-type]
    return rows


def render_stage_table(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text table of :func:`summarize_spans` rows."""
    if not rows:
        return "(no spans recorded)"
    name_width = max(len("stage"), max(len(str(r["name"])) for r in rows))
    header = (
        f"{'stage':<{name_width}}  {'count':>7}  {'total_ms':>10}  "
        f"{'mean_ms':>9}  {'max_ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  "
            f"{row['total_ms']:>10.3f}  {row['mean_ms']:>9.3f}  "
            f"{row['max_ms']:>9.3f}"
        )
    return "\n".join(lines)
