"""Structured logging setup shared by the CLI and the service.

Every module in :mod:`repro` logs through a standard
``logging.getLogger(__name__)`` module logger; this module owns the
*handler* side: one stream handler on the ``"repro"`` package logger,
formatted either as human-readable text or as one JSON object per line
(:class:`JsonFormatter`), selected by the ``--log-format {text,json}``
CLI flag.

:func:`setup_logging` is idempotent — it replaces any handler it
previously installed instead of stacking duplicates — and deliberately
leaves the root logger alone so embedding applications keep full
control.  :func:`ensure_default_logging` is the soft variant used by
library entry points (``serve()``): it installs the text handler only
when neither the ``repro`` logger nor the root logger has one, so a
host application's configuration always wins.
"""

from __future__ import annotations

import json
import logging
import sys
import time
import traceback
from typing import Optional, TextIO

__all__ = [
    "JsonFormatter",
    "setup_logging",
    "ensure_default_logging",
    "LOG_LEVELS",
    "LOG_FORMATS",
]

#: CLI-facing level names accepted by :func:`setup_logging`.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: CLI-facing output formats accepted by :func:`setup_logging`.
LOG_FORMATS = ("text", "json")

TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"

#: ``LogRecord`` attributes that are plumbing, not user-supplied extras.
_RESERVED = frozenset(
    {
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    }
)


class JsonFormatter(logging.Formatter):
    """One JSON object per log line: ``ts``/``level``/``logger``/``message``.

    Anything passed via ``extra={...}`` (e.g. the slow-query log's
    structured record) is merged into the object as long as it is
    JSON-serialisable; non-serialisable values fall back to ``repr``.
    Exceptions are rendered into an ``exc`` field as a traceback string.
    """

    def format(self, record: logging.LogRecord) -> str:
        """Render ``record`` as a single-line JSON document."""
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
        return json.dumps(payload)


def _resolve_level(level: str) -> int:
    try:
        return getattr(logging, str(level).upper())
    except AttributeError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        ) from None


def setup_logging(
    level: str = "info",
    fmt: str = "text",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Install (or replace) the package log handler; returns the logger.

    Args:
        level: One of :data:`LOG_LEVELS` (case-insensitive).
        fmt: ``"text"`` for classic single-line records, ``"json"`` for
            one JSON object per line.
        stream: Target stream; defaults to ``sys.stderr`` so stdout
            stays clean for command output (TSV/JSONL streams).

    Returns:
        The configured ``"repro"`` package logger.

    Raises:
        ValueError: On an unknown level or format name.
    """
    if fmt not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {fmt!r}; expected one of {LOG_FORMATS}"
        )
    resolved = _resolve_level(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else logging.Formatter(TEXT_FORMAT)
    )
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger = logging.getLogger("repro")
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_managed", False):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    # Our handler is authoritative for the package: propagating further
    # would double-print every record once the root logger also has a
    # handler (basicConfig in a host application).
    logger.propagate = False
    return logger


def ensure_default_logging(level: str = "info") -> logging.Logger:
    """Install the text handler only if nobody configured logging yet.

    Library entry points (``serve()``) call this so their operational
    messages are visible by default, without clobbering an embedding
    application's existing configuration — if either the ``repro``
    logger or the root logger already has handlers, nothing changes.
    """
    logger = logging.getLogger("repro")
    if logger.handlers or logging.getLogger().handlers:
        return logger
    return setup_logging(level=level)
