"""Read side of a segmented store: lazy segments, range pruning.

:class:`SegmentedStore` opens the manifest only; segment archives are
memory-mapped on first touch (:meth:`SegmentedStore.segment`) and
cached.  :meth:`SegmentedStore.segments_for_range` is the pruning
primitive the searcher builds on: given a precursor-mass interval it
names exactly the segments whose recorded range intersects it, so a
window-restricted search never pays I/O — or arena bytes — for
segments it cannot match.  Per-segment open counters make that
laziness assertable in tests.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from ..ann import AnnConfig
from ..hdc.spaces import HDSpaceConfig
from ..index.library import LibraryIndex, ReferenceRecord
from ..ms.preprocessing import PreprocessingConfig
from ..ms.vectorize import BinningConfig
from .manifest import MANIFEST_NAME, SegmentMeta, StoreCompatibilityError, StoreManifest


class SegmentedStore:
    """A manifest-backed library that opens segments on demand.

    Presents the provenance surface of a :class:`LibraryIndex`
    (``dim``, ``num_references``, ``provenance()``, ``summary()``,
    ``make_encoder()``) without loading a single vector until a
    segment is actually requested.
    """

    def __init__(self, root: Union[str, Path], manifest: StoreManifest) -> None:
        """Adopt a loaded manifest; prefer :meth:`open`.

        Args:
            root: The store directory holding ``manifest.json``.
            manifest: The parsed manifest for that directory.
        """
        self.root = Path(root)
        self.manifest = manifest
        self._segments: dict[int, LibraryIndex] = {}
        self._open_counts = [0] * len(manifest.segments)
        # Searchers may share one store across scoring threads; the
        # lock keeps the segment cache and its open counters exact.
        self._segment_lock = threading.Lock()

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SegmentedStore":
        """Open a store from its root directory (or the manifest file)."""
        manifest_path = StoreManifest.manifest_path(path)
        return cls(manifest_path.parent, StoreManifest.load(manifest_path))

    # ------------------------------------------------------------------
    # segment access
    # ------------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        """Number of segment archives in the manifest."""
        return len(self.manifest.segments)

    @property
    def segment_metas(self) -> List[SegmentMeta]:
        """The manifest's segment descriptors, in global row order."""
        return list(self.manifest.segments)

    def segment(self, segment_id: int, mmap: bool = True) -> LibraryIndex:
        """Load (and cache) one segment archive.

        The per-segment open counter increments only on an actual disk
        open, not on cache hits — it measures laziness, not traffic.
        """
        index = self._segments.get(segment_id)
        if index is not None:
            return index
        with self._segment_lock:
            index = self._segments.get(segment_id)
            if index is None:
                meta = self.manifest.segments[segment_id]
                index = LibraryIndex.load(self.root / meta.file, mmap=mmap)
                self._segments[segment_id] = index
                self._open_counts[segment_id] += 1
        return index

    def segments_for_range(self, lo: float, hi: float) -> List[int]:
        """Ids of segments whose mass range intersects ``[lo, hi]``."""
        return [
            segment_id
            for segment_id, meta in enumerate(self.manifest.segments)
            if meta.intersects(lo, hi)
        ]

    @property
    def offsets(self) -> np.ndarray:
        """Global row offset of each segment (manifest order)."""
        counts = [meta.num_references for meta in self.manifest.segments]
        return np.concatenate(([0], np.cumsum(counts)))[:-1].astype(np.int64)

    @property
    def open_counts(self) -> tuple:
        """Per-segment disk-open counts (the laziness assertion hook)."""
        return tuple(self._open_counts)

    def reset_open_counts(self) -> None:
        """Zero the open counters (for before/after assertions)."""
        self._open_counts = [0] * len(self.manifest.segments)

    def close(self) -> None:
        """Drop cached segment arrays (mmaps release with them)."""
        self._segments.clear()

    def __enter__(self) -> "SegmentedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # LibraryIndex-compatible provenance surface
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Unpacked hypervector dimensionality."""
        return self.manifest.dim

    @property
    def num_references(self) -> int:
        """Total reference rows across all segments."""
        return self.manifest.num_references

    def __len__(self) -> int:
        return self.num_references

    @property
    def space_config(self) -> HDSpaceConfig:
        """HD space the segments were encoded in."""
        return self.manifest.configs()[0]

    @property
    def binning(self) -> BinningConfig:
        """Peak binning the segments were encoded with."""
        return self.manifest.configs()[1]

    @property
    def preprocessing(self) -> PreprocessingConfig:
        """Preprocessing every segment's rows went through."""
        return self.manifest.configs()[2]

    @property
    def ann_config(self) -> Optional[AnnConfig]:
        """ANN configuration persisted per segment (None = no tables)."""
        return self.manifest.configs()[3]

    def make_encoder(self):
        """Reconstruct the query encoder from the recorded provenance."""
        from ..hdc.encoder import SpectrumEncoder
        from ..hdc.spaces import HDSpace

        space, binning, _pre, _ann = self.manifest.configs()
        return SpectrumEncoder(HDSpace(space), binning)

    def provenance(self) -> dict:
        """Store provenance, segment list included.

        The segment list makes the service's config fingerprint — and
        therefore its result cache — roll over whenever the manifest
        changes, so a hot-reloaded route can never serve results cached
        against a stale segment set.
        """
        return self.manifest.provenance()

    def summary(self) -> str:
        """One-line human-readable description."""
        tiers = sorted({meta.tier for meta in self.manifest.segments})
        suffix = "+ann" if self.manifest.ann is not None else ""
        return (
            f"SegmentedStore: {self.num_references} references in "
            f"{self.num_segments} segments (tiers {tiers}), dim "
            f"{self.dim}{suffix}, at {self.root}"
        )

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def iter_records(self) -> Iterator[ReferenceRecord]:
        """Yield every reference record in global row order."""
        for segment_id in range(self.num_segments):
            yield from self.segment(segment_id).records()

    def to_index(self, mmap: bool = True) -> LibraryIndex:
        """Concatenate every segment into one in-memory index.

        Convenience for tests and for workloads that fit in RAM after
        all — the resulting rows are exactly the store's global row
        order, so searches over it are bit-identical to segmented
        searches.
        """
        if self.num_segments == 0:
            raise StoreCompatibilityError(f"store at {self.root} has no segments")
        parts = [
            self.segment(segment_id, mmap=mmap)
            for segment_id in range(self.num_segments)
        ]
        space, binning, preprocessing, _ann = self.manifest.configs()
        return LibraryIndex(
            packed=np.concatenate([np.asarray(part.packed) for part in parts]),
            dim=self.dim,
            identifiers=[i for part in parts for i in part.identifiers],
            peptide_keys=[k for part in parts for k in part.peptide_keys],
            is_decoy=np.concatenate([part.is_decoy for part in parts]),
            neutral_masses=np.concatenate(
                [part.neutral_masses for part in parts]
            ),
            charges=np.concatenate([part.charges for part in parts]),
            space_config=space,
            binning=binning,
            preprocessing=preprocessing,
            source=f"store:{self.root}",
        )


def open_search_source(
    path: Union[str, Path],
) -> Union[LibraryIndex, SegmentedStore]:
    """Open either index flavor from one path argument.

    A directory (or an explicit ``manifest.json`` path) opens as a
    :class:`SegmentedStore`; anything else loads as a monolithic
    :class:`LibraryIndex` archive.  This is the dispatch every CLI verb
    and service route uses, so segmented stores are accepted anywhere a
    ``.npz`` path was.
    """
    path = Path(path)
    if path.is_dir() or path.name == MANIFEST_NAME:
        return SegmentedStore.open(path)
    return LibraryIndex.load(path)
