"""JSON manifest describing a segmented library store.

A store is a directory::

    mystore/
      manifest.json
      segments/
        seg-000000.npz
        seg-000001.npz
        ...

Each segment file is a standard :class:`~repro.index.library.LibraryIndex`
archive (so every existing loader, memory-mapper, and provenance check
applies unchanged); the manifest records the encoding provenance once
plus, per segment, the row count, the precursor neutral-mass range, the
compaction tier, and the ingest source.  Global library row order is
the concatenation of segments in manifest order — appending segments
never reorders existing rows, which is what makes incremental builds
bit-identical to from-scratch builds.

The manifest is always rewritten atomically (temp file + ``os.replace``
in the same directory), and ingest flushes it after every segment
write, so a crash mid-build leaves a valid store containing the
segments completed so far.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..ann import AnnConfig
from ..hdc.spaces import HDSpaceConfig
from ..index.library import INDEX_FORMAT_VERSION
from ..ms.preprocessing import PreprocessingConfig
from ..ms.vectorize import BinningConfig

#: Bumped when the manifest layout changes incompatibly.
STORE_FORMAT_VERSION = 1

#: The manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: The subdirectory holding segment archives.
SEGMENT_DIR = "segments"


class StoreCompatibilityError(ValueError):
    """A store's recorded provenance conflicts with the requested config."""


@dataclass(frozen=True)
class SegmentMeta:
    """One segment's row count, precursor-mass range, and lineage.

    Attributes:
        file: Path of the archive, relative to the store root.
        num_references: Rows in this segment.
        mass_min: Smallest reference neutral mass in the segment.
        mass_max: Largest reference neutral mass in the segment.
        tier: Compaction generation — ``0`` for freshly ingested
            segments, ``max(inputs) + 1`` after a merge.
        source: Free-form ingest origin (library path, ``"merge"``).
    """

    file: str
    num_references: int
    mass_min: float
    mass_max: float
    tier: int = 0
    source: str = ""

    def to_dict(self) -> dict:
        """JSON-safe dict form (manifest serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentMeta":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            file=str(payload["file"]),
            num_references=int(payload["num_references"]),
            mass_min=float(payload["mass_min"]),
            mass_max=float(payload["mass_max"]),
            tier=int(payload.get("tier", 0)),
            source=str(payload.get("source", "")),
        )

    def intersects(self, lo: float, hi: float) -> bool:
        """Whether this segment's mass range overlaps ``[lo, hi]``."""
        return self.mass_max >= lo and self.mass_min <= hi


class StoreManifest:
    """In-memory form of ``manifest.json`` with atomic persistence."""

    def __init__(
        self,
        *,
        dim: int,
        space: Dict,
        binning: Dict,
        preprocessing: Dict,
        ann: Optional[Dict] = None,
        segments: Optional[List[SegmentMeta]] = None,
    ) -> None:
        self.dim = int(dim)
        self.space = dict(space)
        self.binning = dict(binning)
        self.preprocessing = dict(preprocessing)
        self.ann = dict(ann) if ann is not None else None
        self.segments: List[SegmentMeta] = list(segments or [])

    # ------------------------------------------------------------------
    # construction / persistence
    # ------------------------------------------------------------------

    @classmethod
    def from_configs(
        cls,
        space_config: HDSpaceConfig,
        binning: BinningConfig,
        preprocessing: PreprocessingConfig,
        ann: Optional[AnnConfig] = None,
    ) -> "StoreManifest":
        """Create an empty manifest recording the given provenance."""
        return cls(
            dim=space_config.dim,
            space=dataclasses.asdict(space_config),
            binning=dataclasses.asdict(binning),
            preprocessing=dataclasses.asdict(preprocessing),
            ann=dataclasses.asdict(ann) if ann is not None else None,
        )

    @classmethod
    def manifest_path(cls, path: Union[str, Path]) -> Path:
        """Resolve a store root or manifest file to the manifest path."""
        path = Path(path)
        if path.name == MANIFEST_NAME:
            return path
        return path / MANIFEST_NAME

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StoreManifest":
        """Load a manifest from a store root (or the file itself)."""
        manifest_path = cls.manifest_path(path)
        try:
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreCompatibilityError(
                f"{manifest_path.parent} is not a segmented store "
                f"(no {MANIFEST_NAME})"
            ) from None
        version = payload.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StoreCompatibilityError(
                f"store format version mismatch: file has {version!r}, "
                f"this build reads {STORE_FORMAT_VERSION}"
            )
        return cls(
            dim=payload["dim"],
            space=payload["space"],
            binning=payload["binning"],
            preprocessing=payload["preprocessing"],
            ann=payload.get("ann"),
            segments=[SegmentMeta.from_dict(s) for s in payload["segments"]],
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form of the whole manifest."""
        return {
            "format_version": STORE_FORMAT_VERSION,
            "index_format_version": INDEX_FORMAT_VERSION,
            "dim": self.dim,
            "space": self.space,
            "binning": self.binning,
            "preprocessing": self.preprocessing,
            "ann": self.ann,
            "segments": [meta.to_dict() for meta in self.segments],
        }

    def save(self, root: Union[str, Path]) -> Path:
        """Atomically write ``manifest.json`` under ``root``.

        The temp file lives in the same directory so ``os.replace`` is
        a same-filesystem atomic rename: readers only ever observe the
        old or the new manifest, never a partial write.
        """
        root = Path(root)
        target = self.manifest_path(root)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, target)
        return target

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------

    def configs(
        self,
    ) -> Tuple[HDSpaceConfig, BinningConfig, PreprocessingConfig, Optional[AnnConfig]]:
        """Reconstruct the dataclass configs the manifest records."""
        return (
            HDSpaceConfig(**self.space),
            BinningConfig(**self.binning),
            PreprocessingConfig(**self.preprocessing),
            AnnConfig(**self.ann) if self.ann is not None else None,
        )

    def validate_configs(
        self,
        space_config: Optional[HDSpaceConfig] = None,
        binning: Optional[BinningConfig] = None,
        preprocessing: Optional[PreprocessingConfig] = None,
        ann: Optional[AnnConfig] = None,
        check_ann: bool = False,
    ) -> None:
        """Reject configs that disagree with the recorded provenance.

        Only the arguments actually supplied are checked (``ann`` only
        when ``check_ann`` is set, since ``None`` is a meaningful ANN
        value), so callers can pass through user overrides untouched.

        Raises:
            StoreCompatibilityError: Naming every mismatched section.
        """
        stored_space, stored_binning, stored_pre, stored_ann = self.configs()
        mismatches = []
        if space_config is not None and space_config != stored_space:
            mismatches.append("space")
        if binning is not None and binning != stored_binning:
            mismatches.append("binning")
        if preprocessing is not None and preprocessing != stored_pre:
            mismatches.append("preprocessing")
        if check_ann and ann != stored_ann:
            mismatches.append("ann")
        if mismatches:
            raise StoreCompatibilityError(
                "store provenance mismatch on append: requested config "
                f"disagrees with the manifest in {mismatches}"
            )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def num_references(self) -> int:
        """Total rows across all segments, in manifest order."""
        return sum(meta.num_references for meta in self.segments)

    def next_segment_id(self) -> int:
        """Smallest id larger than any segment file ever recorded."""
        highest = -1
        for meta in self.segments:
            stem = Path(meta.file).stem
            try:
                highest = max(highest, int(stem.split("-")[-1]))
            except ValueError:
                continue
        return highest + 1

    def provenance(self) -> dict:
        """Config + segment provenance (feeds the cache fingerprint).

        Includes the segment list so a route's fingerprint — and
        therefore its result cache — changes whenever the manifest
        gains, loses, or rewrites segments.
        """
        return {
            "store_format_version": STORE_FORMAT_VERSION,
            "format_version": INDEX_FORMAT_VERSION,
            "dim": self.dim,
            "space": self.space,
            "binning": self.binning,
            "preprocessing": self.preprocessing,
            "ann": self.ann,
            "num_references": self.num_references,
            "segments": [meta.to_dict() for meta in self.segments],
        }
