"""Streaming ingest, append, and compaction for segmented stores.

:class:`StreamingStoreBuilder` consumes spectra one at a time —
pair it with :func:`repro.ms.iter_spectra` and only ``segment_rows``
spectra (plus one encode chunk) are ever resident — and flushes each
full buffer as a tier-0 segment through the existing
:meth:`~repro.index.library.LibraryIndex.build` pipeline (chunked
charge-bucket encode, bit-packing, optional per-segment ANN tables).
The manifest is rewritten atomically after every segment, so a crash
mid-ingest leaves a valid store holding the segments completed so far.

Because each row's hypervector is a pure function of (spectrum,
encoding config) and segments concatenate in ingestion order, any
split of one spectrum stream across :func:`build_store` and
:func:`append_store` calls produces bit-identical packed rows — and
:func:`merge_store` compacts segments by concatenating those rows
without re-encoding, so search results survive compaction unchanged.
"""

from __future__ import annotations

import dataclasses
import logging
from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from ..ann import AnnConfig
from ..hdc.encoder import SpectrumEncoder
from ..hdc.spaces import HDSpace, HDSpaceConfig
from ..index.library import (
    DEFAULT_CHUNK_SIZE,
    IndexCompatibilityError,
    LibraryIndex,
)
from ..ms.preprocessing import PreprocessingConfig, preprocess
from ..ms.spectrum import Spectrum
from ..ms.vectorize import BinningConfig
from .manifest import (
    MANIFEST_NAME,
    SEGMENT_DIR,
    SegmentMeta,
    StoreCompatibilityError,
    StoreManifest,
)
from .store import SegmentedStore

logger = logging.getLogger(__name__)

#: Spectra buffered per segment before a flush.
DEFAULT_SEGMENT_ROWS = 8192


class StreamingStoreBuilder:
    """Accumulate spectra into segment files, one bounded buffer at a time.

    Use :func:`build_store` / :func:`append_store` unless you need
    fine-grained control over when spectra arrive.  The builder holds
    at most ``segment_rows`` raw spectra; every flush runs the normal
    chunked charge-bucket encode and writes one tier-0 segment plus an
    updated manifest.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        space_config: Optional[HDSpaceConfig] = None,
        binning: Optional[BinningConfig] = None,
        preprocessing: Optional[PreprocessingConfig] = None,
        encoder: Optional[SpectrumEncoder] = None,
        ann: Optional[AnnConfig] = None,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        source: str = "",
        manifest: Optional[StoreManifest] = None,
    ) -> None:
        """Open a new store (or continue an existing manifest).

        Args:
            root: Store directory (created if missing).
            space_config: HD space to encode in (ignored with ``encoder``).
            binning: Peak binning config.
            preprocessing: Spectrum preprocessing config.
            encoder: Ready encoder to share across builds.
            ann: When set, every segment gets persisted Hamming-LSH
                tables built with this config.
            segment_rows: Spectra buffered per segment flush.
            chunk_size: Spectra per fused encode call inside a flush.
            source: Free-form origin recorded on each segment.
            manifest: Pass the existing manifest when appending; the
                derived configs are validated against it.

        Raises:
            ValueError: On non-positive ``segment_rows``/``chunk_size``.
            FileExistsError: When creating a fresh store over an
                existing manifest (use :func:`append_store` instead).
            StoreCompatibilityError: When appending with configs that
                disagree with the manifest.
        """
        if segment_rows < 1:
            raise ValueError(f"segment_rows must be >= 1, got {segment_rows}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.root = Path(root)
        # Mirror LibraryIndex.build's config resolution exactly so a
        # store and a monolithic index built from the same arguments
        # share provenance (and therefore encoded bits).
        binning = binning or (encoder.binning if encoder else BinningConfig())
        if encoder is None:
            space_config = space_config or HDSpaceConfig()
            space_config = dataclasses.replace(
                space_config, num_bins=binning.num_bins
            )
            encoder = SpectrumEncoder(HDSpace(space_config), binning)
        else:
            space_config = encoder.space.config
            if encoder.binning != binning:
                raise IndexCompatibilityError(
                    "encoder binning disagrees with the binning argument"
                )
        preprocessing = preprocessing or PreprocessingConfig()
        self._encoder = encoder
        self._preprocessing = preprocessing
        self._ann = ann
        self._segment_rows = segment_rows
        self._chunk_size = chunk_size
        self._source = source
        if manifest is not None:
            manifest.validate_configs(
                space_config, binning, preprocessing, ann, check_ann=True
            )
            self.manifest = manifest
        else:
            if StoreManifest.manifest_path(self.root).exists():
                raise FileExistsError(
                    f"{self.root} already holds a store manifest; use "
                    "append_store() to add spectra to it"
                )
            self.manifest = StoreManifest.from_configs(
                space_config, binning, preprocessing, ann
            )
        self._next_id = self.manifest.next_segment_id()
        self._buffer: List[Spectrum] = []
        self.num_ingested = 0
        self.num_dropped = 0
        self._finalized = False

    def add(self, spectrum: Spectrum) -> None:
        """Buffer one spectrum, flushing a segment when the buffer fills."""
        self._buffer.append(spectrum)
        self.num_ingested += 1
        if len(self._buffer) >= self._segment_rows:
            self._flush()

    def extend(self, spectra: Iterable[Spectrum]) -> None:
        """Stream many spectra through :meth:`add`."""
        for spectrum in spectra:
            self.add(spectrum)

    def _flush(self) -> None:
        """Encode the buffered spectra into one segment file."""
        buffer, self._buffer = self._buffer, []
        if not buffer:
            return
        # LibraryIndex.build raises when *nothing* survives
        # preprocessing; an all-dropped buffer is a legitimate
        # streaming event, so detect it up front and skip the segment.
        if not any(
            preprocess(spectrum, self._preprocessing) is not None
            for spectrum in buffer
        ):
            self.num_dropped += len(buffer)
            logger.info(
                "segment buffer of %d spectra fully dropped by "
                "preprocessing; no segment written",
                len(buffer),
            )
            return
        index = LibraryIndex.build(
            buffer,
            encoder=self._encoder,
            preprocessing=self._preprocessing,
            chunk_size=self._chunk_size,
            source=self._source,
            ann=self._ann,
        )
        self.num_dropped += len(buffer) - index.num_references
        name = f"seg-{self._next_id:06d}.npz"
        self._next_id += 1
        written = index.save(self.root / SEGMENT_DIR / name)
        self.manifest.segments.append(
            SegmentMeta(
                file=f"{SEGMENT_DIR}/{written.name}",
                num_references=index.num_references,
                mass_min=float(index.neutral_masses.min()),
                mass_max=float(index.neutral_masses.max()),
                tier=0,
                source=self._source,
            )
        )
        # Persist after every segment: a crash leaves a valid store
        # holding everything flushed so far.
        self.manifest.save(self.root)
        logger.info(
            "wrote %s: %d references, mass %.1f..%.1f",
            name,
            index.num_references,
            float(index.neutral_masses.min()),
            float(index.neutral_masses.max()),
        )

    def finalize(self) -> SegmentedStore:
        """Flush the tail buffer and return the opened store.

        Raises:
            ValueError: When no spectrum in the whole stream survived
                preprocessing (matching ``LibraryIndex.build``).
        """
        if self._finalized:
            return SegmentedStore.open(self.root)
        self._flush()
        if not self.manifest.segments:
            raise ValueError("no reference spectrum survived preprocessing")
        self.manifest.save(self.root)
        self._finalized = True
        return SegmentedStore.open(self.root)


def build_store(
    spectra: Iterable[Spectrum],
    root: Union[str, Path],
    *,
    space_config: Optional[HDSpaceConfig] = None,
    binning: Optional[BinningConfig] = None,
    preprocessing: Optional[PreprocessingConfig] = None,
    encoder: Optional[SpectrumEncoder] = None,
    ann: Optional[AnnConfig] = None,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    source: str = "",
) -> SegmentedStore:
    """Stream ``spectra`` into a fresh segmented store at ``root``.

    Peak memory is bounded by ``segment_rows`` buffered spectra plus
    one segment's encode working set, regardless of library size.

    Returns:
        The opened store.
    """
    builder = StreamingStoreBuilder(
        root,
        space_config=space_config,
        binning=binning,
        preprocessing=preprocessing,
        encoder=encoder,
        ann=ann,
        segment_rows=segment_rows,
        chunk_size=chunk_size,
        source=source,
    )
    builder.extend(spectra)
    return builder.finalize()


def append_store(
    root: Union[str, Path],
    spectra: Iterable[Spectrum],
    *,
    space_config: Optional[HDSpaceConfig] = None,
    binning: Optional[BinningConfig] = None,
    preprocessing: Optional[PreprocessingConfig] = None,
    encoder: Optional[SpectrumEncoder] = None,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    source: str = "",
) -> SegmentedStore:
    """Append new segments to an existing store without a rebuild.

    The encoding configs are read from the manifest; any explicitly
    supplied config (or a shared ``encoder``) is validated against the
    recorded provenance first, so two libraries encoded differently can
    never end up in one store.

    Returns:
        The reopened store (old segments untouched, new ones appended).

    Raises:
        StoreCompatibilityError: On provenance mismatch or when ``root``
            holds no manifest.
    """
    manifest = StoreManifest.load(root)
    stored_space, stored_binning, stored_pre, stored_ann = manifest.configs()
    manifest.validate_configs(space_config, binning, preprocessing)
    if encoder is not None and encoder.space.config != stored_space:
        raise StoreCompatibilityError(
            "store provenance mismatch on append: the supplied encoder's "
            "space config disagrees with the manifest"
        )
    builder = StreamingStoreBuilder(
        root,
        space_config=stored_space,
        binning=stored_binning,
        preprocessing=stored_pre,
        encoder=encoder,
        ann=stored_ann,
        segment_rows=segment_rows,
        chunk_size=chunk_size,
        source=source,
        manifest=manifest,
    )
    builder.extend(spectra)
    return builder.finalize()


def merge_store(
    root: Union[str, Path],
    *,
    target_rows: Optional[int] = None,
) -> SegmentedStore:
    """Compact adjacent segments without re-encoding a single row.

    Consecutive segments are greedily grouped until a group would
    exceed ``target_rows`` (``None`` merges everything into one
    segment); each multi-segment group is rewritten as one archive by
    concatenating the already-encoded packed rows, its tier set to
    ``max(input tiers) + 1``.  Grouping only ever touches *adjacent*
    segments, so the global row order — and therefore every search
    result — is bit-identical before and after.  The new manifest is
    swapped in atomically before the superseded segment files are
    unlinked.

    Returns:
        The reopened, compacted store.
    """
    root = Path(root)
    manifest = StoreManifest.load(root)
    space, binning, preprocessing, ann = manifest.configs()

    groups: List[List[SegmentMeta]] = []
    for meta in manifest.segments:
        if (
            groups
            and target_rows is not None
            and sum(m.num_references for m in groups[-1]) + meta.num_references
            > target_rows
        ):
            groups.append([meta])
        elif not groups:
            groups.append([meta])
        else:
            groups[-1].append(meta)
    if all(len(group) == 1 for group in groups):
        return SegmentedStore.open(root)  # nothing to compact

    next_id = manifest.next_segment_id()
    new_segments: List[SegmentMeta] = []
    written: List[Path] = []
    for group in groups:
        if len(group) == 1:
            new_segments.append(group[0])
            continue
        parts = [
            LibraryIndex.load(root / meta.file, mmap=False) for meta in group
        ]
        merged = LibraryIndex(
            packed=np.concatenate([np.asarray(part.packed) for part in parts]),
            dim=manifest.dim,
            identifiers=[i for part in parts for i in part.identifiers],
            peptide_keys=[k for part in parts for k in part.peptide_keys],
            is_decoy=np.concatenate([part.is_decoy for part in parts]),
            neutral_masses=np.concatenate(
                [part.neutral_masses for part in parts]
            ),
            charges=np.concatenate([part.charges for part in parts]),
            space_config=space,
            binning=binning,
            preprocessing=preprocessing,
            source="merge",
        )
        if ann is not None:
            # Tables hash over the merged row set; rebuilt, not stitched
            # (bucket contents depend on local row numbering).
            merged.attach_ann(ann)
        name = f"seg-{next_id:06d}.npz"
        next_id += 1
        path = merged.save(root / SEGMENT_DIR / name)
        written.append(path)
        new_segments.append(
            SegmentMeta(
                file=f"{SEGMENT_DIR}/{path.name}",
                num_references=merged.num_references,
                mass_min=float(merged.neutral_masses.min()),
                mass_max=float(merged.neutral_masses.max()),
                tier=max(meta.tier for meta in group) + 1,
                source="merge",
            )
        )

    old_files = {meta.file for meta in manifest.segments}
    manifest.segments = new_segments
    # Ordering is the crash-safety contract: new segments exist on disk,
    # then the manifest flips atomically, and only then do the
    # superseded files go away.  A crash at any point leaves a valid
    # store (possibly with orphaned-but-unreferenced files).
    manifest.save(root)
    for relative in old_files - {meta.file for meta in new_segments}:
        (root / relative).unlink(missing_ok=True)
    logger.info(
        "merged %d segments into %d (%s)",
        len(old_files),
        len(new_segments),
        root / MANIFEST_NAME,
    )
    return SegmentedStore.open(root)
