"""Segmented, manifest-driven library stores that scale past RAM.

A store is a directory of tiered segment archives (each a standard
:class:`~repro.index.library.LibraryIndex` ``.npz``) described by one
JSON manifest carrying the encoding provenance and each segment's
precursor-mass range.  Streaming ingest (:func:`build_store` /
:func:`append_store`) bounds peak memory by the segment size;
:func:`merge_store` compacts segments without re-encoding a row; and
:class:`SegmentedSearcher` opens only the segments whose mass range a
query batch can actually hit — all bit-identical to a monolithic
single-``.npz`` search.
"""

from .ingest import (
    DEFAULT_SEGMENT_ROWS,
    StreamingStoreBuilder,
    append_store,
    build_store,
    merge_store,
)
from .manifest import (
    MANIFEST_NAME,
    SEGMENT_DIR,
    STORE_FORMAT_VERSION,
    SegmentMeta,
    StoreCompatibilityError,
    StoreManifest,
)
from .search import SegmentedSearcher
from .store import SegmentedStore, open_search_source

__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "MANIFEST_NAME",
    "SEGMENT_DIR",
    "STORE_FORMAT_VERSION",
    "SegmentMeta",
    "SegmentedSearcher",
    "SegmentedStore",
    "StoreCompatibilityError",
    "StoreManifest",
    "StreamingStoreBuilder",
    "append_store",
    "build_store",
    "merge_store",
    "open_search_source",
]
