"""Window-pruned search over a :class:`~repro.store.store.SegmentedStore`.

Mirrors :class:`~repro.index.sharded.ShardedSearcher`'s pipeline —
micro-batched encode one stage ahead, exact lexsort winner merge, the
same ANN bookkeeping — but the unit of fan-out is a manifest segment
instead of a row-range shard, and segments are strictly lazy: a
scoring pass computes the batch's precursor-mass interval (widened by
the active window half-width) and only segments whose recorded mass
range intersects it are ever opened.  A skipped segment contributes
zero candidate rows to *every* query in the batch by construction, so
pruning is exact: results are bit-identical to a monolithic search,
``min_candidates`` gating included.

Each opened segment gets its own :class:`~repro.exec.arena.SharedShardArena`
(packed rows, masses, charges copied out of the mmap once) and a
:class:`~repro.exec.scorer.ShardScorer` whose positions are offset to
global row numbers.  Scoring runs in-process — serially or on a thread
pool over the GIL-releasing kernels; ``executor="process"`` is accepted
for config compatibility but downgraded to threads, because a process
pool would force every segment open up front, defeating the pruning.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ann import AnnStats, HammingLSHIndex
from ..engine import EngineConfig
from ..exec.arena import SharedShardArena
from ..exec.scorer import ShardScorer, resolve_backend, shard_payload
from ..index.library import IndexCompatibilityError, ReferenceRecord
from ..ms.preprocessing import PreprocessingConfig
from ..ms.spectrum import Spectrum
from ..obs.trace import get_tracer
from ..oms.candidates import WindowConfig
from ..oms.loop import MicroBatchSearchMixin
from ..oms.psm import PSM
from ..oms.search import ENCODE_BLOCK_SIZE, HDSearchConfig
from .store import SegmentedStore

logger = logging.getLogger(__name__)


class SegmentedSearcher(MicroBatchSearchMixin):
    """Search a segmented store, opening only the segments a batch needs.

    Parameters
    ----------
    store:
        An opened :class:`SegmentedStore` (or a path to one).
    preprocessing / windows / config / encoder:
        Same semantics as :class:`~repro.index.sharded.ShardedSearcher`.
    engine:
        :class:`~repro.engine.EngineConfig`; ``num_workers`` picks the
        scoring thread count (``0`` = serial, ``None`` = auto up to the
        segment count), ``num_shards`` is ignored (the manifest decides
        the partitioning).
    """

    def __init__(
        self,
        store: Union[SegmentedStore, str, Path],
        preprocessing: Optional[PreprocessingConfig] = None,
        windows: Optional[WindowConfig] = None,
        config: Optional[HDSearchConfig] = None,
        engine: Optional[EngineConfig] = None,
        encoder=None,
    ) -> None:
        # A searcher that opened the store itself owns it (and closes
        # it); a caller-provided store stays the caller's to close.
        self._owns_store = not isinstance(store, SegmentedStore)
        if self._owns_store:
            store = SegmentedStore.open(store)
        engine = engine or EngineConfig()
        if engine.kind not in ("auto", "segmented"):
            raise ValueError(
                f"SegmentedSearcher cannot host engine kind {engine.kind!r}"
            )
        resolve_backend(engine.backend)  # fail fast on bad factories
        config = config or HDSearchConfig()
        if engine.ann is not None and engine.ann != config.ann:
            if config.ann is not None:
                raise ValueError(
                    "conflicting ANN configs: engine.ann disagrees with "
                    "config.ann"
                )
            config = dataclasses.replace(config, ann=engine.ann)
        if config.reference_ber > 0:
            raise ValueError(
                "SegmentedSearcher does not support reference_ber: noise "
                "injection over the full library would force every segment "
                "open, defeating lazy segment pruning"
            )
        if encoder is not None and encoder.space.config != store.space_config:
            raise IndexCompatibilityError(
                "encoder space config disagrees with the store provenance"
            )
        self.store = store
        self.engine = engine
        self.encoder = encoder if encoder is not None else store.make_encoder()
        self.preprocessing = preprocessing or store.preprocessing
        self.windows = windows or WindowConfig()
        self.config = config
        self._backend = engine.backend
        self._backend_label = engine.backend_label
        self._noise_rng = np.random.default_rng(config.noise_seed)
        num_workers = engine.num_workers
        if num_workers is None:
            num_workers = min(max(store.num_segments, 1), os.cpu_count() or 1)
        self._num_workers = num_workers
        if engine.executor == "process" and num_workers > 0:
            logger.info(
                "segmented search scores in-process; executor='process' "
                "downgraded to the thread pool (%d workers)",
                num_workers,
            )
        self._score_block_rows = engine.score_block_rows
        self._pipeline_batch = engine.pipeline_batch or ENCODE_BLOCK_SIZE
        self._offsets = store.offsets
        self._scorers: Dict[int, ShardScorer] = {}
        self._arenas: Dict[int, SharedShardArena] = {}
        self._records: Dict[int, List[ReferenceRecord]] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self.ann_stats = AnnStats() if config.ann is not None else None
        # Concurrent searches share this searcher (the coordinator's
        # workers, storm tests): _open_lock serializes segment
        # materialization (a double-open would leak a shared-memory
        # arena), _stats_lock guards the plain-int counters that
        # scoring threads bump.
        self._open_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._segments_opened_count = 0
        self._segment_batches: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lazy segment plumbing
    # ------------------------------------------------------------------

    def _scorer(self, segment_id: int) -> ShardScorer:
        """Open one segment on first use: arena + offset scorer + records.

        Thread-safe: concurrent searches race to materialize the same
        segment, and an unsynchronized double-open would build two
        arenas and leak one (shared memory is unlinked by name).  The
        fast path stays lock-free — dict reads are atomic and entries
        are only ever added, never replaced.
        """
        scorer = self._scorers.get(segment_id)
        if scorer is not None:
            return scorer
        with self._open_lock:
            return self._open_segment(segment_id)

    def _open_segment(self, segment_id: int) -> ShardScorer:
        """Materialize one segment; caller holds ``_open_lock``."""
        scorer = self._scorers.get(segment_id)
        if scorer is not None:
            return scorer
        segment = self.store.segment(segment_id)
        arrays = {
            "packed": np.asarray(segment.packed),
            "masses": np.asarray(segment.neutral_masses, dtype=np.float64),
            "charges": np.asarray(segment.charges, dtype=np.int64),
        }
        tables = None
        if self.config.ann is not None:
            if segment.ann is not None and segment.ann.config == self.config.ann:
                tables = segment.ann
            else:
                tables = HammingLSHIndex.build(
                    arrays["packed"], segment.dim, self.config.ann
                )
        arena = SharedShardArena.create(arrays)
        payload = shard_payload(
            segment_id,
            (0, segment.num_references),
            arena.array("packed"),
            arena.array("masses"),
            arena.array("charges"),
            dim=segment.dim,
            backend=self._backend,
            charge_aware=self.windows.charge_aware,
            ann=self.config.ann,
            ann_tables=tables,
            score_block_rows=self._score_block_rows,
        )
        # Winners must carry *global* row numbers so the exact
        # tie-break (score, mass, position) matches a monolithic index.
        payload["positions"] = payload["positions"] + int(
            self._offsets[segment_id]
        )
        scorer = ShardScorer(payload)
        self._arenas[segment_id] = arena
        self._records[segment_id] = segment.records()
        self._scorers[segment_id] = scorer
        with self._stats_lock:
            self._segments_opened_count += 1
        return scorer

    def _reference(self, global_position: int) -> ReferenceRecord:
        """Resolve a global row number to its segment's record."""
        segment_id = (
            int(np.searchsorted(self._offsets, global_position, side="right"))
            - 1
        )
        return self._records[segment_id][
            global_position - int(self._offsets[segment_id])
        ]

    def close(self, timeout: float = 10.0) -> None:
        """Release the thread pool and unlink all segment arenas."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._open_lock:
            self._scorers.clear()
            self._records.clear()
            arenas, self._arenas = self._arenas, {}
        for arena in arenas.values():
            arena.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "SegmentedSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def num_references(self) -> int:
        """Total reference rows across all segments."""
        return self.store.num_references

    @property
    def backend_name(self) -> str:
        """Human-readable engine label (feeds logs and search results)."""
        suffix = "+ann" if self.config.ann is not None else ""
        return (
            f"segmented-{self._backend_label}"
            f"x{self.store.num_segments}{suffix}"
        )

    @property
    def executor_kind(self) -> str:
        """The active execution mode: ``thread`` or ``serial``."""
        return "serial" if self._num_workers == 0 else "thread"

    @property
    def arena_nbytes(self) -> int:
        """Shared-memory bytes across the currently opened segments."""
        return sum(arena.nbytes for arena in self._arenas.values())

    @property
    def segments_opened(self) -> int:
        """How many segments this searcher has materialized so far."""
        with self._stats_lock:
            return self._segments_opened_count

    @property
    def segment_batches(self) -> Dict[int, int]:
        """Per-segment count of scored batches (a stats snapshot)."""
        with self._stats_lock:
            return dict(self._segment_batches)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def _score_segments(
        self,
        relevant: List[int],
        query_hvs: np.ndarray,
        query_masses: np.ndarray,
        query_charges: np.ndarray,
        half_width: float,
    ) -> List[Tuple[np.ndarray, ...]]:
        # Open in the caller thread under _open_lock (arena creation
        # must never race); score concurrently.
        scorers = [self._scorer(segment_id) for segment_id in relevant]

        def score(task: Tuple[int, ShardScorer]) -> Tuple[float, Tuple]:
            segment_id, scorer = task
            started = time.perf_counter()
            scored = scorer.score_batch(
                query_hvs, query_masses, query_charges, half_width
            )
            # Scoring threads all bump the per-segment stats; a plain
            # ``dict[k] = dict.get(k) + 1`` would lose increments.
            with self._stats_lock:
                self._segment_batches[segment_id] = (
                    self._segment_batches.get(segment_id, 0) + 1
                )
            return time.perf_counter() - started, scored

        tracer = get_tracer()
        with tracer.span(
            "segment.fanout",
            segments=len(relevant),
            total_segments=self.store.num_segments,
            workers=self._num_workers,
            executor=self.executor_kind,
            queries=len(query_masses),
        ):
            tasks = list(zip(relevant, scorers))
            if self._num_workers == 0 or len(scorers) <= 1:
                timed = [score(task) for task in tasks]
            else:
                pool = self._pool
                if pool is None:
                    with self._open_lock:
                        if self._pool is None:
                            self._pool = ThreadPoolExecutor(
                                max_workers=self._num_workers,
                                thread_name_prefix="segment-score",
                            )
                        pool = self._pool
                timed = list(pool.map(score, tasks))
            if tracer.enabled:
                for segment_id, (wall, _scored) in zip(relevant, timed):
                    tracer.emit(
                        "segment.score",
                        duration=float(wall),
                        thread=f"segment-{segment_id}",
                        segment=int(segment_id),
                        queries=len(query_masses),
                    )
        return [scored for _wall, scored in timed]

    def _run_pass(
        self,
        pairs: Sequence[Tuple[Spectrum, np.ndarray]],
        mode: str,
    ) -> List[Optional[PSM]]:
        """One windowed scoring pass over already-encoded queries."""
        query_hvs = np.stack([hv for _, hv in pairs])
        query_masses = np.array([q.neutral_mass for q, _ in pairs])
        query_charges = np.array(
            [q.precursor_charge for q, _ in pairs], dtype=np.int64
        )
        half_width = (
            self.windows.standard_tolerance_da
            if mode == "standard"
            else self.windows.open_window_da
        )
        # The pruning step: any segment outside this interval holds no
        # row within ±half_width of *any* query in the batch, so it can
        # contribute neither candidates nor counts.
        lo = float(query_masses.min()) - half_width
        hi = float(query_masses.max()) + half_width
        relevant = self.store.segments_for_range(lo, hi)
        if not relevant:
            return [None] * len(pairs)
        per_segment = self._score_segments(
            relevant, query_hvs, query_masses, query_charges, half_width
        )
        if self.ann_stats is not None:
            for scored in per_segment:
                self.ann_stats.record_batch(
                    scored[4], int(scored[0].sum()), int(scored[5][0])
                )
        counts = np.stack([scored[0] for scored in per_segment])
        scores = np.stack([scored[1] for scored in per_segment])
        masses = np.stack([scored[2] for scored in per_segment])
        positions = np.stack([scored[3] for scored in per_segment])
        totals = counts.sum(axis=0)
        # Same exact winner rule as every other engine: max score, ties
        # to lowest reference mass, then lowest (global) library position.
        winner = np.lexsort((positions, masses, -scores), axis=0)[0]

        results: List[Optional[PSM]] = []
        for column, (query, _hv) in enumerate(pairs):
            if totals[column] == 0 or totals[column] < self.config.min_candidates:
                results.append(None)
                continue
            row = int(winner[column])
            reference = self._reference(int(positions[row, column]))
            results.append(
                PSM(
                    query_id=query.identifier,
                    reference_id=reference.identifier,
                    peptide_key=reference.peptide_key(),
                    score=float(scores[row, column]),
                    is_decoy=reference.is_decoy,
                    precursor_mass_difference=query.neutral_mass
                    - reference.neutral_mass,
                    mode=mode,
                    reference_mass=float(reference.neutral_mass),
                    library_position=int(positions[row, column]),
                )
            )
        return results
